//! Quickstart: run a small send-deterministic application under HydEE,
//! inject a failure, and watch containment + exact recovery.
//!
//! Run: `cargo run --example quickstart`

use hydee::{Hydee, HydeeConfig};
use mps_sim::prelude::*;

fn build_app() -> Application {
    // Eight ranks in a ring; every round each rank passes 64 KiB to its
    // right neighbour. Clusters: {0..3} and {4..7}, so the 3->4 and 7->0
    // channels are inter-cluster (logged).
    //
    // Each rank is a lazy `GenProgram`: a two-op body (send right,
    // receive left) whose tag advances per round, repeated 200 times.
    // Nothing is materialised — memory is O(ranks), whatever the horizon.
    let n = 8u32;
    Application::generated_with(n as usize, |me| {
        let right = Rank((me.0 + 1) % n);
        let left = Rank((me.0 + n - 1) % n);
        GenProgram::new(
            vec![
                OpTemplate::IterTag {
                    op: Op::Send {
                        dst: right,
                        bytes: 64 << 10,
                        tag: Tag(0),
                    },
                    stride: 1,
                },
                OpTemplate::IterTag {
                    op: Op::Recv {
                        src: left,
                        tag: Tag(0),
                    },
                    stride: 1,
                },
            ],
            200,
        )
    })
}

fn main() {
    let clusters = ClusterMap::blocks(8, 2);

    // Golden failure-free run.
    let golden = Sim::new(
        build_app(),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters.clone())),
    )
    .run();
    assert!(golden.completed());
    println!("failure-free run:");
    println!("  makespan        : {}", golden.makespan);
    println!(
        "  logged          : {} of {} app bytes ({:.1}%)",
        golden.metrics.logged_bytes_cumulative,
        golden.metrics.app_bytes,
        100.0 * golden.metrics.logged_bytes_cumulative as f64 / golden.metrics.app_bytes as f64
    );

    // Same application, but rank 5 dies mid-run.
    let mut sim = Sim::new(
        build_app(),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters)),
    );
    sim.inject_failure(SimTime::from_ms(2), vec![Rank(5)]);
    let report = sim.run();
    assert!(report.completed());
    println!();
    println!("run with a failure of P5 at t=2ms:");
    println!("  makespan        : {}", report.makespan);
    println!(
        "  rolled back     : {} of 8 ranks (containment: only cluster {{4..7}})",
        report.metrics.ranks_rolled_back
    );
    println!("  replayed msgs   : {}", report.metrics.replayed_messages);
    println!("  suppressed sends: {}", report.metrics.suppressed_sends);
    println!(
        "  oracle          : {} violations, digests {}",
        report.trace.violations.len(),
        if report.digests == golden.digests {
            "IDENTICAL to failure-free run"
        } else {
            "DIVERGED (bug!)"
        }
    );
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.ranks_rolled_back, 4);
}
