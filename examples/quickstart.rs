//! Quickstart: run a small send-deterministic application under HydEE,
//! inject a failure, and watch containment + exact recovery.
//!
//! Run: `cargo run --example quickstart`

use hydee::{Hydee, HydeeConfig};
use mps_sim::prelude::*;

fn build_app() -> Application {
    // Eight ranks in a ring; every round each rank passes 64 KiB to its
    // right neighbour. Clusters: {0..3} and {4..7}, so the 3->4 and 7->0
    // channels are inter-cluster (logged).
    let n = 8u32;
    let mut app = Application::new(n as usize);
    for round in 0..200 {
        let tag = Tag(round % 4);
        for r in 0..n {
            app.rank_mut(Rank(r)).send(Rank((r + 1) % n), 64 << 10, tag);
        }
        for r in 0..n {
            app.rank_mut(Rank(r)).recv(Rank((r + n - 1) % n), tag);
        }
    }
    app
}

fn main() {
    let clusters = ClusterMap::blocks(8, 2);

    // Golden failure-free run.
    let golden = Sim::new(
        build_app(),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters.clone())),
    )
    .run();
    assert!(golden.completed());
    println!("failure-free run:");
    println!("  makespan        : {}", golden.makespan);
    println!(
        "  logged          : {} of {} app bytes ({:.1}%)",
        golden.metrics.logged_bytes_cumulative,
        golden.metrics.app_bytes,
        100.0 * golden.metrics.logged_bytes_cumulative as f64 / golden.metrics.app_bytes as f64
    );

    // Same application, but rank 5 dies mid-run.
    let mut sim = Sim::new(
        build_app(),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters)),
    );
    sim.inject_failure(SimTime::from_ms(2), vec![Rank(5)]);
    let report = sim.run();
    assert!(report.completed());
    println!();
    println!("run with a failure of P5 at t=2ms:");
    println!("  makespan        : {}", report.makespan);
    println!(
        "  rolled back     : {} of 8 ranks (containment: only cluster {{4..7}})",
        report.metrics.ranks_rolled_back
    );
    println!("  replayed msgs   : {}", report.metrics.replayed_messages);
    println!("  suppressed sends: {}", report.metrics.suppressed_sends);
    println!(
        "  oracle          : {} violations, digests {}",
        report.trace.violations.len(),
        if report.digests == golden.digests {
            "IDENTICAL to failure-free run"
        } else {
            "DIVERGED (bug!)"
        }
    );
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.ranks_rolled_back, 4);
}
