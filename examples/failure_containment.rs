//! Failure containment compared across protocols, on the paper's CG
//! skeleton: HydEE (clustered), global coordinated checkpointing, and
//! full message logging — what fraction of the machine does one failure
//! drag down, and at what memory price?
//!
//! Run: `cargo run --release --example failure_containment`

use hydee::{Hydee, HydeeConfig};
use mps_sim::prelude::*;
use protocols::{CoordinatedConfig, GlobalCoordinated};
use workloads::{NasBench, NasConfig};

const N: usize = 64;

fn app() -> Application {
    let cfg = NasConfig {
        n_ranks: N,
        iterations: 15,
        size_scale: 1e-3,
        compute_per_iter: SimDuration::from_us(500),
    };
    NasBench::CG.build(&cfg)
}

fn main() {
    let fail_at = SimTime::from_ms(5);
    let victim = vec![Rank(9)];

    println!("one failure (P9) on the CG skeleton, {N} ranks:");
    println!();

    // HydEE, 8 clusters of 8.
    let mut sim = Sim::new(
        app(),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(ClusterMap::blocks(N, 8)).with_image_bytes(1 << 20)),
    );
    sim.inject_failure(fail_at, victim.clone());
    let hydee_report = sim.run();
    assert!(hydee_report.completed());

    // Global coordinated checkpointing.
    let cfg = CoordinatedConfig {
        image_bytes: 1 << 20,
        ..Default::default()
    };
    let mut sim = Sim::new(app(), SimConfig::default(), GlobalCoordinated::new(cfg));
    sim.inject_failure(fail_at, victim.clone());
    let coord_report = sim.run();
    assert!(coord_report.completed());

    // Full message logging: HydEE machinery, one cluster per rank.
    let mut sim = Sim::new(
        app(),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(ClusterMap::per_rank(N)).with_image_bytes(1 << 20)),
    );
    sim.inject_failure(fail_at, victim);
    let full_report = sim.run();
    assert!(full_report.completed());

    for (name, r) in [
        ("HydEE (8 clusters)", &hydee_report),
        ("coordinated (1 cluster)", &coord_report),
        ("full logging (64 clusters)", &full_report),
    ] {
        println!(
            "  {name:28} rolled back {:>2}/{N} ranks | makespan {} | log peak {:>9} B",
            r.metrics.ranks_rolled_back, r.makespan, r.metrics.logged_bytes_peak,
        );
    }
    println!();
    println!(
        "containment: {} << {} ranks; log memory: {} << {} bytes",
        hydee_report.metrics.ranks_rolled_back,
        coord_report.metrics.ranks_rolled_back,
        hydee_report.metrics.logged_bytes_peak,
        full_report.metrics.logged_bytes_peak,
    );
    assert!(hydee_report.metrics.ranks_rolled_back < coord_report.metrics.ranks_rolled_back);
    assert!(hydee_report.metrics.logged_bytes_peak < full_report.metrics.logged_bytes_peak);
}
