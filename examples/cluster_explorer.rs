//! Cluster explorer: sweep the cluster count for one NAS benchmark and
//! print the rollback-vs-logging trade-off curve the paper's clustering
//! tool navigates (§V-B3).
//!
//! Usage: `cargo run --release --example cluster_explorer [BENCH]`
//! where BENCH is one of BT CG FT LU MG SP (default CG).

use clustering::{partition, ClusteringStats, CommGraph, PartitionConfig};
use workloads::NasBench;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "CG".into());
    let bench = NasBench::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {which}; use one of BT CG FT LU MG SP");
            std::process::exit(2);
        });

    let cfg = bench.paper_config(1.0);
    let app = bench.build(&cfg);
    let graph = CommGraph::from_application(&app);
    println!(
        "{} skeleton, 256 ranks, {:.0} GB total traffic",
        bench.name(),
        app.total_bytes() as f64 / 1e9
    );
    println!();
    println!(
        "{:>9} | {:>10} | {:>8} | {:>11}",
        "clusters", "rollback %", "logged %", "logged GB"
    );
    println!("{}", "-".repeat(48));
    for k in [1usize, 2, 4, 5, 6, 8, 16, 32, 64, 128, 256] {
        let map = partition(&graph, &PartitionConfig::balanced(k, 256));
        let stats = ClusteringStats::evaluate(&app, &map);
        let marker = if k == bench.paper_clusters() {
            "  <- paper's choice"
        } else {
            ""
        };
        println!(
            "{:>9} | {:>9.2}% | {:>7.2}% | {:>11.2}{marker}",
            stats.n_clusters,
            stats.avg_rollback_pct,
            stats.logged_pct(),
            stats.logged_bytes as f64 / 1e9,
        );
    }
    println!();
    println!("fewer clusters -> bigger rollbacks but fewer logged bytes;");
    println!("the paper's tool picks a knee of this curve.");
}
