//! NetPIPE in miniature: print the latency curve of the simulated
//! Myrinet/MX network under native MPICH2 and under HydEE, exposing the
//! piggyback plateaus of the paper's Figure 5.
//!
//! Run: `cargo run --release --example netpipe`

use hydee::{Hydee, HydeeConfig};
use mps_sim::prelude::*;
use workloads::netpipe::{ping_pong, size_ladder};

fn latency_us<P: Protocol>(bytes: u64, protocol: P) -> f64 {
    const ROUNDS: usize = 10;
    let report = Sim::new(ping_pong(ROUNDS, bytes), SimConfig::default(), protocol).run();
    assert!(report.completed());
    report.makespan.as_us_f64() / (2.0 * ROUNDS as f64)
}

fn main() {
    println!(
        "{:>9} | {:>10} | {:>10} | {:>7}",
        "bytes", "native us", "hydee us", "delta"
    );
    println!("{}", "-".repeat(46));
    for bytes in size_ladder(64 << 10) {
        let native = latency_us(bytes, NullProtocol);
        let hydee = latency_us(bytes, Hydee::new(HydeeConfig::new(ClusterMap::per_rank(2))));
        let delta = 100.0 * (hydee - native) / native;
        let bar = "#".repeat((delta / 2.0).round().max(0.0) as usize);
        println!("{bytes:>9} | {native:>10.2} | {hydee:>10.2} | {delta:>6.1}% {bar}");
    }
    println!();
    println!("The spikes sit just below the 32 B and 1 KiB MX plateau edges, where");
    println!("the 16 piggybacked bytes push the wire message over the boundary.");
}
