//! Recovery control-plane perturbation (DESIGN.md §2.8): the
//! `perturb_seed` tie-break covers *recovery* control traffic, not just
//! app deliveries. During a HydEE recovery the orchestrator floods
//! same-timestamp control arrivals — rollback orders, suppression
//! notices, replayed log entries, restart completions — and a cascade
//! landing mid-recovery races a second wave against the first. With a
//! seed set, the ordering of every same-time control tie is permuted
//! (classes survive: app still sorts before control at one instant);
//! nothing observable may move. Digests, makespan, the containment
//! integers, checkpoint counts and the replay/suppression totals must
//! be bit-for-bit invariant across every seed, or the recovery path
//! depends on scheduler interleaving — exactly the bug class the
//! content-derived keyspace exists to rule out.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{
    Application, Cascade, ClusterMap, FailureEvent, FixedSchedule, Rank, RunReport, Sim, SimConfig,
    Tag,
};
use proptest::prelude::*;

const N: u32 = 12;

/// Hard cap standing in for the bounded-step assertion (cf.
/// `cascade_stress.rs`): a livelocked recovery blows the cap and fails
/// the completion assertion rather than hanging the suite.
const EVENT_CAP: u64 = 20_000_000;

fn ring(rounds: usize) -> Application {
    let mut app = Application::new(N as usize);
    for round in 0..rounds {
        let tag = Tag((round % 3) as u32);
        for r in 0..N {
            app.rank_mut(Rank(r)).send(Rank((r + 1) % N), 2048, tag);
        }
        for r in 0..N {
            app.rank_mut(Rank(r)).recv(Rank((r + N - 1) % N), tag);
        }
    }
    app
}

fn config() -> HydeeConfig {
    let mut cfg = HydeeConfig::new(ClusterMap::blocks(N as usize, 4)).with_image_bytes(1 << 18);
    cfg.first_checkpoint = SimTime::from_us(300);
    cfg.checkpoint_stagger = SimDuration::from_us(100);
    cfg.restart_latency = SimDuration::from_us(100);
    cfg
}

fn sim_config(perturb_seed: Option<u64>) -> SimConfig {
    SimConfig {
        max_events: EVENT_CAP,
        perturb_seed,
        ..Default::default()
    }
}

fn run(rounds: usize, failures: &[FailureEvent], perturb_seed: Option<u64>) -> RunReport {
    let mut sim = Sim::new(ring(rounds), sim_config(perturb_seed), Hydee::new(config()));
    sim.set_failure_model(Box::new(FixedSchedule::new(failures.to_vec())));
    sim.run()
}

/// Everything a perturbed recovery is allowed to differ in: nothing.
fn assert_identical(name: &str, base: &RunReport, perturbed: &RunReport) {
    assert!(
        base.completed() && perturbed.completed(),
        "{name}: base {:?} / perturbed {:?}",
        base.status,
        perturbed.status
    );
    assert!(
        perturbed.trace.is_consistent(),
        "{name}: oracle violations {:?}",
        perturbed.trace.violations
    );
    assert_eq!(base.digests, perturbed.digests, "{name}: digests moved");
    assert_eq!(base.makespan, perturbed.makespan, "{name}: makespan moved");
    let (b, p) = (&base.metrics, &perturbed.metrics);
    assert_eq!(b.failures, p.failures, "{name}");
    assert_eq!(b.failed_ranks, p.failed_ranks, "{name}");
    assert_eq!(b.ranks_rolled_back, p.ranks_rolled_back, "{name}");
    assert_eq!(b.checkpoints, p.checkpoints, "{name}");
    assert_eq!(b.replayed_messages, p.replayed_messages, "{name}");
    assert_eq!(b.suppressed_sends, p.suppressed_sends, "{name}");
    assert_eq!(b.lost_work, p.lost_work, "{name}");
    assert_eq!(b.recovery_time, p.recovery_time, "{name}");
    assert_eq!(
        base.inbox_leftover, perturbed.inbox_leftover,
        "{name}: duplicate deliveries"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// A two-failure cascade at a random offset: the second recovery's
    /// control wave races the first's, and the perturbation permutes
    /// every same-time tie between them.
    #[test]
    fn cascading_recovery_is_invariant_under_perturbation(
        t1_us in 250u64..450,
        delta_us in 1u64..150,
        r1 in 0u32..N,
        r2 in 0u32..N,
        seed in any::<u64>(),
    ) {
        let failures = [
            FailureEvent::at_us(t1_us, vec![Rank(r1)]),
            FailureEvent::at_us(t1_us + delta_us, vec![Rank(r2)]),
        ];
        let base = run(90, &failures, None);
        let perturbed = run(90, &failures, Some(seed));
        assert_identical(
            &format!("cascade @{t1_us}+{delta_us}us r{r1}/r{r2} seed={seed}"),
            &base,
            &perturbed,
        );
    }

    /// The stochastic `Cascade` model end-to-end: follow-up failures at
    /// model-chosen times, three perturbation seeds against one base.
    #[test]
    fn cascade_model_recovery_is_invariant_across_seeds(
        fail_seed in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 3),
    ) {
        let drive = |perturb: Option<u64>| {
            let base = FixedSchedule::new(vec![FailureEvent::at_us(300, vec![Rank(2)])]);
            let model = Cascade::new(
                Box::new(base),
                N as usize,
                SimDuration::from_us(120),
                1.0,
                fail_seed,
            )
            .with_max_chain(2);
            let mut sim = Sim::new(ring(90), sim_config(perturb), Hydee::new(config()));
            sim.set_failure_model(Box::new(model));
            sim.run()
        };
        let base = drive(None);
        for seed in seeds {
            let perturbed = drive(Some(seed));
            assert_identical(&format!("cascade model seed={seed}"), &base, &perturbed);
        }
    }
}
