//! Recovery stress under cascading failures (ISSUE 4 satellite 3):
//! a second failure striking while HydEE is mid-recovery must abort and
//! restart the orchestration, complete the run, contain the rollback to
//! the affected clusters, and never deadlock.
//!
//! The offset sweep drives the second failure across a dense range of
//! delays after the first, covering interleavings from
//! "restore-in-progress" through "reports half-filed" to
//! "recovery-finished-but-still-suppressing" — each a different abort
//! point for the re-entrant recovery path. The bounded-step guarantee is
//! asserted through a hard engine event cap: a livelocked recovery
//! (rollback ping-pong) would blow the cap and fail the completion
//! assertion rather than hang the suite.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{
    Application, Cascade, ClusterMap, FailureEvent, FixedSchedule, Rank, RunReport, Sim, SimConfig,
    Tag,
};

const N: u32 = 12;
const CLUSTER_SIZE: u64 = 3; // blocks(12, 4)

/// Hard cap standing in for the bounded-step assertion: well above any
/// legitimate run (clean runs here take ~1e5 events), far below forever.
const EVENT_CAP: u64 = 20_000_000;

fn ring(rounds: usize) -> Application {
    let mut app = Application::new(N as usize);
    for round in 0..rounds {
        let tag = Tag((round % 3) as u32);
        for r in 0..N {
            app.rank_mut(Rank(r)).send(Rank((r + 1) % N), 2048, tag);
        }
        for r in 0..N {
            app.rank_mut(Rank(r)).recv(Rank((r + N - 1) % N), tag);
        }
    }
    app
}

fn config() -> HydeeConfig {
    let mut cfg = HydeeConfig::new(ClusterMap::blocks(N as usize, 4)).with_image_bytes(1 << 18);
    cfg.first_checkpoint = SimTime::from_us(300);
    cfg.checkpoint_stagger = SimDuration::from_us(100);
    cfg.restart_latency = SimDuration::from_us(100);
    cfg
}

fn sim_config() -> SimConfig {
    SimConfig {
        max_events: EVENT_CAP,
        ..Default::default()
    }
}

fn run(rounds: usize, failures: &[FailureEvent]) -> RunReport {
    let mut sim = Sim::new(ring(rounds), sim_config(), Hydee::new(config()));
    sim.set_failure_model(Box::new(FixedSchedule::new(failures.to_vec())));
    sim.run()
}

fn assert_recovered(name: &str, golden: &RunReport, report: &RunReport) {
    assert!(
        report.completed(),
        "{name}: did not complete (bounded-step cap or deadlock): {:?}",
        report.status
    );
    assert!(
        report.trace.is_consistent(),
        "{name}: oracle violations {:?}",
        report.trace.violations
    );
    assert_eq!(
        report.digests, golden.digests,
        "{name}: recovered state diverged from the failure-free run"
    );
    assert!(
        report.inbox_leftover.iter().all(|&l| l == 0),
        "{name}: duplicate deliveries: {:?}",
        report.inbox_leftover
    );
}

/// Second failure in a *different* cluster, swept across offsets that
/// land before, during, and after the first failure's recovery.
#[test]
fn second_failure_mid_recovery_other_cluster() {
    // 300 rounds -> ~1.6 ms clean makespan: every offset below lands
    // well inside the run.
    let golden = run(300, &[]);
    assert!(golden.completed());
    for delta_us in [1u64, 3, 7, 15, 25, 40, 60, 90, 130, 200, 350, 700] {
        let name = format!("cascade +{delta_us}us");
        let report = run(
            300,
            &[
                FailureEvent::at_us(300, vec![Rank(0)]),
                FailureEvent::at_us(300 + delta_us, vec![Rank(6)]),
            ],
        );
        assert_recovered(&name, &golden, &report);
        assert_eq!(report.metrics.failures, 2, "{name}");
        // Containment: each failure rolls back at most the union of the
        // two affected clusters (never the other two clusters).
        assert!(
            (2 * CLUSTER_SIZE..=3 * CLUSTER_SIZE).contains(&report.metrics.ranks_rolled_back),
            "{name}: rolled {} ranks, expected within [{}, {}]",
            report.metrics.ranks_rolled_back,
            2 * CLUSTER_SIZE,
            3 * CLUSTER_SIZE
        );
        assert!(report.metrics.lost_work > SimDuration::ZERO, "{name}");
    }
}

/// Second failure hitting the *same* cluster that is already rolling
/// back (repeated crash of a restarting node).
#[test]
fn second_failure_mid_recovery_same_cluster() {
    let golden = run(90, &[]);
    for delta_us in [1u64, 10, 50, 150, 400] {
        let name = format!("same-cluster +{delta_us}us");
        let report = run(
            90,
            &[
                FailureEvent::at_us(300, vec![Rank(1)]),
                FailureEvent::at_us(300 + delta_us, vec![Rank(2)]),
            ],
        );
        assert_recovered(&name, &golden, &report);
        // Both failures hit cluster {0,1,2}: it rolls back once per
        // failure, and only it.
        assert_eq!(report.metrics.failures, 2, "{name}");
        assert_eq!(
            report.metrics.ranks_rolled_back,
            2 * CLUSTER_SIZE,
            "{name}: containment violated"
        );
    }
}

/// Triple cascade: a third failure lands while the *second* recovery is
/// being orchestrated.
#[test]
fn triple_cascade_across_three_clusters() {
    let golden = run(90, &[]);
    let report = run(
        90,
        &[
            FailureEvent::at_us(300, vec![Rank(0)]),
            FailureEvent::at_us(330, vec![Rank(4)]),
            FailureEvent::at_us(360, vec![Rank(9)]),
        ],
    );
    assert_recovered("triple cascade", &golden, &report);
    assert_eq!(report.metrics.failures, 3);
    // Worst case: 1 + 2 + 3 clusters across the three recoveries.
    assert!(report.metrics.ranks_rolled_back <= 6 * CLUSTER_SIZE);
}

/// The `Cascade` failure model end-to-end: a fixed primary with
/// guaranteed follow-ups inside a window comparable to the recovery
/// span, driven twice for determinism.
#[test]
fn cascade_model_follow_ups_land_mid_recovery() {
    let golden = run(90, &[]);
    let drive = || {
        let base = FixedSchedule::new(vec![FailureEvent::at_us(300, vec![Rank(2)])]);
        let model = Cascade::new(
            Box::new(base),
            N as usize,
            SimDuration::from_us(120),
            1.0, // every failure spawns a follow-up...
            42,
        )
        .with_max_chain(2); // ...to depth 2: three failures total
        let mut sim = Sim::new(ring(90), sim_config(), Hydee::new(config()));
        sim.set_failure_model(Box::new(model));
        sim.run()
    };
    let report = drive();
    assert_recovered("cascade model", &golden, &report);
    assert_eq!(report.metrics.failures, 3);
    let again = drive();
    assert_eq!(report.digests, again.digests, "cascade model determinism");
    assert_eq!(report.metrics.events, again.metrics.events);
}

/// Cascades with periodic checkpoints: later checkpoints move the
/// restore point while failures keep arriving.
#[test]
fn cascade_with_periodic_checkpoints() {
    let mut cfg = config();
    cfg = cfg.with_checkpoints(SimDuration::from_ms(2));
    let golden = {
        let sim = Sim::new(ring(400), sim_config(), Hydee::new(cfg.clone()));
        sim.run()
    };
    assert!(golden.completed());
    // Clean makespan is ~3.6 ms; both injections stay inside it.
    for (t1_us, delta_us) in [(2500u64, 30u64), (2700, 80), (3000, 400)] {
        let name = format!("ckpt cascade @{t1_us}+{delta_us}us");
        let mut sim = Sim::new(ring(400), sim_config(), Hydee::new(cfg.clone()));
        sim.set_failure_model(Box::new(FixedSchedule::new(vec![
            FailureEvent::at_us(t1_us, vec![Rank(3)]),
            FailureEvent::at_us(t1_us + delta_us, vec![Rank(10)]),
        ])));
        let report = sim.run();
        assert_recovered(&name, &golden, &report);
        assert_eq!(report.metrics.failures, 2, "{name}");
    }
}
