//! Property tests on HydEE's core data structures: the RPP table, the
//! sender log, and the recovery process's phase-release engine.

use hydee::{LogEntry, RecoveryProcess, Rpp, SenderLog};
use mps_sim::{Rank, Tag};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #[test]
    fn rpp_orphans_partition_on_rollback_date(
        dates in prop::collection::btree_set(1u64..10_000, 0..100),
        cut in 0u64..10_000,
    ) {
        let mut rpp = Rpp::new();
        for &d in &dates {
            rpp.record(Rank(1), d, d / 3 + 1);
        }
        let orphans = rpp.orphan_phases(Rank(1), cut);
        let expected = dates.iter().filter(|&&d| d > cut).count();
        prop_assert_eq!(orphans.len(), expected);
        if let Some(&max) = dates.iter().max() {
            prop_assert_eq!(rpp.maxdate(Rank(1)), max);
        }
    }

    #[test]
    fn rpp_prune_then_orphans_consistent(
        dates in prop::collection::btree_set(1u64..1_000, 1..60),
        prune_below in 0u64..1_000,
    ) {
        let mut rpp = Rpp::new();
        for &d in &dates {
            rpp.record(Rank(0), d, 1);
        }
        rpp.prune(Rank(0), prune_below);
        // Remaining entries are exactly dates >= prune_below.
        let remaining = rpp.orphan_phases(Rank(0), 0).len();
        let expected = dates.iter().filter(|&&d| d >= prune_below).count();
        prop_assert_eq!(remaining, expected);
    }

    #[test]
    fn log_replay_and_prune_are_complementary(
        dates in prop::collection::btree_set(1u64..10_000, 0..80),
        cut in 0u64..10_000,
    ) {
        let mut log = SenderLog::new();
        for &d in &dates {
            log.append(LogEntry {
                date: d,
                phase: 1,
                dst: Rank(2),
                tag: Tag(0),
                bytes: 10,
                payload: d,
                channel_seq: d,
            });
        }
        let replay: BTreeSet<u64> =
            log.replay_set(Rank(2), cut).iter().map(|e| e.date).collect();
        let expected_replay: BTreeSet<u64> =
            dates.iter().copied().filter(|&d| d > cut).collect();
        prop_assert_eq!(&replay, &expected_replay);
        // Pruning the complement leaves exactly the replay set.
        let (pruned_msgs, pruned_bytes) = log.prune(Rank(2), cut);
        prop_assert_eq!(pruned_msgs as usize, dates.len() - expected_replay.len());
        prop_assert_eq!(pruned_bytes, 10 * pruned_msgs);
        prop_assert_eq!(log.messages() as usize, expected_replay.len());
    }

    #[test]
    fn recovery_process_always_drains(
        own_phases in prop::collection::vec(1u64..20, 1..8),
        log_phases in prop::collection::vec(prop::collection::vec(1u64..20, 0..5), 1..8),
        orphan_phases in prop::collection::vec(prop::collection::vec(1u64..20, 0..5), 1..8),
    ) {
        // However reports arrive, once every reported orphan is notified
        // the RP must have released everything (deadlock-freedom at the
        // bookkeeping level — Theorem 2's engine).
        let n = own_phases.len();
        let log_phases: Vec<_> = (0..n)
            .map(|i| log_phases.get(i).cloned().unwrap_or_default())
            .collect();
        let orphan_phases: Vec<_> = (0..n)
            .map(|i| orphan_phases.get(i).cloned().unwrap_or_default())
            .collect();
        let mut rp = RecoveryProcess::new(n, 1);
        let mut notices = Vec::new();
        for (i, &p) in own_phases.iter().enumerate() {
            notices.extend(rp.on_own_phase(Rank(i as u32), p));
            notices.extend(rp.on_log_report(Rank(i as u32), &log_phases[i]));
            notices.extend(rp.on_orphan_report(&orphan_phases[i]));
        }
        prop_assert!(rp.reports_complete());
        // Feed back every orphan notification, lowest phases first (the
        // suppressors are released in phase order).
        let mut all_orphans: Vec<u64> =
            orphan_phases.iter().flatten().copied().collect();
        all_orphans.sort_unstable();
        for p in all_orphans {
            notices.extend(rp.on_orphan_notification(p));
        }
        prop_assert!(rp.done(), "outstanding: {}", rp.outstanding_orphans());
        // Every process got exactly one NotifySendMsg.
        let sendmsg_count = notices
            .iter()
            .filter(|n| matches!(n.ctl, hydee::HydeeCtl::NotifySendMsg { .. }))
            .count();
        prop_assert_eq!(sendmsg_count, n);
        // Log notices never exceed one per (process, phase) pair.
        let mut seen = BTreeSet::new();
        for notice in &notices {
            if let hydee::HydeeCtl::NotifySendLog { phase, .. } = notice.ctl {
                prop_assert!(seen.insert((notice.to, phase)), "duplicate log release");
            }
        }
    }

    #[test]
    fn recovery_process_releases_in_phase_order(
        orphans in prop::collection::vec(1u64..10, 1..6),
    ) {
        // One process per orphan phase, reporting that phase as its own:
        // releases must come lowest-phase-first as orphans clear.
        let mut sorted = orphans.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut rp = RecoveryProcess::new(n, 1);
        let mut released: Vec<u64> = Vec::new();
        let mut notices = Vec::new();
        for (i, &p) in sorted.iter().enumerate() {
            notices.extend(rp.on_own_phase(Rank(i as u32), p));
            notices.extend(rp.on_log_report(Rank(i as u32), &[]));
        }
        for (i, &p) in sorted.iter().enumerate() {
            let _ = i;
            notices.extend(rp.on_orphan_report(&[p]));
        }
        for notice in notices.drain(..) {
            if let hydee::HydeeCtl::NotifySendMsg { phase, .. } = notice.ctl {
                released.push(phase);
            }
        }
        for &p in &sorted {
            for notice in rp.on_orphan_notification(p) {
                if let hydee::HydeeCtl::NotifySendMsg { phase, .. } = notice.ctl {
                    released.push(phase);
                }
            }
        }
        prop_assert!(rp.done());
        let mut sorted_releases = released.clone();
        sorted_releases.sort_unstable();
        prop_assert_eq!(released, sorted_releases, "releases out of phase order");
    }
}
