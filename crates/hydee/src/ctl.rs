//! HydEE's control messages.
//!
//! These are the protocol-level messages of Algorithms 2–4 plus the
//! garbage-collection acknowledgement of §III-E. Each variant knows its
//! wire size so the engine prices it like real traffic.
//!
//! ### Date domains (a pseudo-code ambiguity resolved)
//!
//! Every process counts its own events (`date`). The paper's pseudo-code
//! overloads "RollbackDate" for two quantities that live in *different*
//! processes' date domains. We carry both explicitly:
//!
//! * `Rollback.own_date` — the restarted process's restored date, used by
//!   peers to find **orphans** (entries in their RPP beyond that date);
//! * `Rollback.maxdate_from_you` — the restored `RPP[peer].maxdate`, i.e.
//!   the last message *of the peer's* the restored state still has, used
//!   by the peer to select **logged messages to replay** (sender dates
//!   strictly beyond it).
//!
//! Symmetrically, `LastDate.maxdate_from_you` is in the *restarted*
//! process's date domain and bounds its re-executed sends (suppression).

use mps_sim::Rank;
use serde::{Deserialize, Serialize};

/// Control message payloads.
///
/// Every recovery-transient message carries the **recovery incarnation**
/// (`epoch`) it belongs to: a failure arriving while a recovery is being
/// orchestrated aborts that recovery and starts a fresh incarnation, and
/// any message of an aborted incarnation still in flight must be
/// discarded on arrival, never fed to the new recovery's bookkeeping.
/// The epoch is simulator bookkeeping a real implementation would fold
/// into the existing message header, so it does not contribute to
/// [`HydeeCtl::wire_bytes`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HydeeCtl {
    /// Restarted process -> every process outside its cluster
    /// (Algorithm 2, line 6).
    Rollback {
        epoch: u64,
        /// Date the sender restarted from (sender's domain).
        own_date: u64,
        /// Restored `RPP[recipient].maxdate` (recipient's domain).
        maxdate_from_you: u64,
    },
    /// Answer to `Rollback` (Algorithm 3, line 9): last date the answerer
    /// received from the restarted process (restarted process's domain).
    LastDate { epoch: u64, maxdate_from_you: u64 },
    /// Process -> recovery process: phases of logged messages it will
    /// replay (Algorithm 3, line 15).
    LogReport { epoch: u64, phases: Vec<u64> },
    /// Process -> recovery process: phases of the orphan messages it
    /// holds (Algorithm 3, line 16).
    OrphanReport { epoch: u64, phases: Vec<u64> },
    /// Process -> recovery process: its current (or restored) phase
    /// (Algorithm 2 line 7 / Algorithm 3 line 17).
    OwnPhase { epoch: u64, phase: u64 },
    /// Restarted process -> recovery process: a send was suppressed as an
    /// orphan re-emission (Algorithm 2, line 15).
    OrphanNotification { epoch: u64, phase: u64 },
    /// Recovery process -> process: replay your logged messages with phase
    /// at most `phase` (Algorithm 4, line 19).
    NotifySendLog { epoch: u64, phase: u64 },
    /// Recovery process -> process: you may start sending (Algorithm 4,
    /// line 23).
    NotifySendMsg { epoch: u64, phase: u64 },
    /// Garbage collection (§III-E): receiver checkpointed; sender may
    /// discard logged messages up to `your_maxdate` (sender's domain) and
    /// RPP entries for this channel below `my_ckpt_date` (acker's domain).
    CkptAck {
        your_maxdate: u64,
        my_ckpt_date: u64,
    },
}

impl HydeeCtl {
    /// The recovery incarnation this message belongs to; `None` for
    /// failure-free traffic (`CkptAck`), which is never epoch-filtered.
    pub fn epoch(&self) -> Option<u64> {
        match self {
            HydeeCtl::Rollback { epoch, .. }
            | HydeeCtl::LastDate { epoch, .. }
            | HydeeCtl::LogReport { epoch, .. }
            | HydeeCtl::OrphanReport { epoch, .. }
            | HydeeCtl::OwnPhase { epoch, .. }
            | HydeeCtl::OrphanNotification { epoch, .. }
            | HydeeCtl::NotifySendLog { epoch, .. }
            | HydeeCtl::NotifySendMsg { epoch, .. } => Some(*epoch),
            HydeeCtl::CkptAck { .. } => None,
        }
    }

    /// Approximate wire size in bytes for cost accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            HydeeCtl::Rollback { .. } => 24,
            HydeeCtl::LastDate { .. } => 16,
            HydeeCtl::LogReport { phases, .. } | HydeeCtl::OrphanReport { phases, .. } => {
                16 + 8 * phases.len() as u64
            }
            HydeeCtl::OwnPhase { .. } => 16,
            HydeeCtl::OrphanNotification { .. } => 16,
            HydeeCtl::NotifySendLog { .. } => 16,
            HydeeCtl::NotifySendMsg { .. } => 16,
            HydeeCtl::CkptAck { .. } => 24,
        }
    }
}

/// The auxiliary endpoint id of the recovery process.
pub const RECOVERY_PROCESS: mps_sim::Endpoint = mps_sim::Endpoint::Aux(0);

/// A notification the recovery process wants delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpNotice {
    pub to: Rank,
    pub ctl: HydeeCtl,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_report_size() {
        let small = HydeeCtl::LogReport {
            epoch: 1,
            phases: vec![],
        };
        let big = HydeeCtl::LogReport {
            epoch: 1,
            phases: vec![1; 100],
        };
        assert_eq!(small.wire_bytes(), 16);
        assert_eq!(big.wire_bytes(), 816);
    }

    #[test]
    fn fixed_size_variants() {
        assert_eq!(
            HydeeCtl::Rollback {
                epoch: 1,
                own_date: 0,
                maxdate_from_you: 0
            }
            .wire_bytes(),
            24
        );
        assert_eq!(
            HydeeCtl::NotifySendMsg { epoch: 1, phase: 3 }.wire_bytes(),
            16
        );
    }
}
