//! Sender-based message log — Algorithm 1, lines 7–8.
//!
//! Every inter-cluster message is copied into its sender's local memory
//! (the simulated payload identity plus metadata; the `memcpy` cost is
//! charged by the protocol at send time). The log supports:
//!
//! * replay selection after a peer's rollback: entries destined to the
//!   peer with sender date beyond what the peer's restored state has
//!   (Algorithm 3, lines 10–12);
//! * garbage collection on checkpoint acknowledgements (§III-E).
//!
//! Logs are part of the process checkpoint (Algorithm 1, line 21): the
//! structure is `Clone` and a rollback replaces it with the checkpointed
//! copy.

use mps_sim::{Message, Rank, Tag};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One logged message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Sender's date at the send (Algorithm 1 line 8).
    pub date: u64,
    /// Sender's phase at the send.
    pub phase: u64,
    pub dst: Rank,
    pub tag: Tag,
    pub bytes: u64,
    pub payload: u64,
    pub channel_seq: u64,
}

impl LogEntry {
    /// Reconstruct the on-wire message for replay.
    pub fn to_message(&self, src: Rank) -> Message {
        Message {
            src,
            dst: self.dst,
            tag: self.tag,
            bytes: self.bytes,
            payload: self.payload,
            channel_seq: self.channel_seq,
            meta: mps_sim::PbMeta {
                date: self.date,
                phase: self.phase,
            },
            replayed: true,
        }
    }
}

/// Sender-side log of one process, organised per destination.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SenderLog {
    by_dst: BTreeMap<Rank, Vec<LogEntry>>,
    total_bytes: u64,
    total_messages: u64,
}

impl SenderLog {
    pub fn new() -> Self {
        SenderLog::default()
    }

    /// Append a logged message. Entries per destination arrive in
    /// increasing date order (sends are sequential on a process).
    pub fn append(&mut self, entry: LogEntry) {
        debug_assert!(
            self.by_dst
                .get(&entry.dst)
                .and_then(|v| v.last())
                .map(|last| last.date < entry.date)
                .unwrap_or(true),
            "log dates must increase per destination"
        );
        self.total_bytes += entry.bytes;
        self.total_messages += 1;
        self.by_dst.entry(entry.dst).or_default().push(entry);
    }

    /// Entries destined to `dst` with sender date strictly greater than
    /// `have_up_to` (the peer's restored `maxdate` for this channel), in
    /// date order — the replay set of Algorithm 3.
    pub fn replay_set(&self, dst: Rank, have_up_to: u64) -> Vec<LogEntry> {
        self.by_dst
            .get(&dst)
            .map(|v| {
                let start = v.partition_point(|e| e.date <= have_up_to);
                v[start..].to_vec()
            })
            .unwrap_or_default()
    }

    /// Garbage-collect entries destined to `dst` with sender date at or
    /// below `acked_up_to`. Returns `(messages, bytes)` reclaimed.
    pub fn prune(&mut self, dst: Rank, acked_up_to: u64) -> (u64, u64) {
        let Some(v) = self.by_dst.get_mut(&dst) else {
            return (0, 0);
        };
        let cut = v.partition_point(|e| e.date <= acked_up_to);
        let (msgs, bytes) = v[..cut]
            .iter()
            .fold((0u64, 0u64), |(m, b), e| (m + 1, b + e.bytes));
        v.drain(..cut);
        self.total_messages -= msgs;
        self.total_bytes -= bytes;
        (msgs, bytes)
    }

    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }

    pub fn messages(&self) -> u64 {
        self.total_messages
    }

    pub fn is_empty(&self) -> bool {
        self.total_messages == 0
    }

    /// Iterate all entries (destination order, then date order).
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.by_dst.values().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dst: u32, date: u64, phase: u64, bytes: u64) -> LogEntry {
        LogEntry {
            date,
            phase,
            dst: Rank(dst),
            tag: Tag(0),
            bytes,
            payload: date * 1000,
            channel_seq: date,
        }
    }

    #[test]
    fn append_accumulates_totals() {
        let mut log = SenderLog::new();
        log.append(entry(1, 1, 1, 100));
        log.append(entry(2, 2, 1, 50));
        log.append(entry(1, 3, 2, 25));
        assert_eq!(log.bytes(), 175);
        assert_eq!(log.messages(), 3);
        assert_eq!(log.iter().count(), 3);
    }

    #[test]
    fn replay_set_is_strictly_after() {
        let mut log = SenderLog::new();
        for d in [2u64, 5, 9] {
            log.append(entry(1, d, 1, 10));
        }
        let r = log.replay_set(Rank(1), 5);
        assert_eq!(r.iter().map(|e| e.date).collect::<Vec<_>>(), vec![9]);
        let all = log.replay_set(Rank(1), 0);
        assert_eq!(all.len(), 3);
        assert!(log.replay_set(Rank(1), 9).is_empty());
        assert!(log.replay_set(Rank(7), 0).is_empty());
    }

    #[test]
    fn prune_reclaims() {
        let mut log = SenderLog::new();
        for d in [2u64, 5, 9] {
            log.append(entry(1, d, 1, 10));
        }
        log.append(entry(2, 3, 1, 40));
        let (m, b) = log.prune(Rank(1), 5);
        assert_eq!((m, b), (2, 20));
        assert_eq!(log.messages(), 2);
        assert_eq!(log.bytes(), 50);
        // channel 2 untouched
        assert_eq!(log.replay_set(Rank(2), 0).len(), 1);
        assert_eq!(log.prune(Rank(9), 100), (0, 0));
    }

    #[test]
    fn to_message_restores_identity() {
        let e = entry(4, 7, 3, 64);
        let m = e.to_message(Rank(2));
        assert_eq!(m.src, Rank(2));
        assert_eq!(m.dst, Rank(4));
        assert_eq!(m.meta.date, 7);
        assert_eq!(m.meta.phase, 3);
        assert!(m.replayed);
        assert_eq!(m.channel_seq, 7);
    }

    #[test]
    fn clone_is_snapshot() {
        let mut log = SenderLog::new();
        log.append(entry(1, 1, 1, 10));
        let snap = log.clone();
        log.append(entry(1, 2, 1, 10));
        assert_eq!(snap.messages(), 1);
        assert_eq!(log.messages(), 2);
    }
}
