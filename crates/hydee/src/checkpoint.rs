//! Cluster-coordinated checkpoints.
//!
//! A checkpoint of cluster `c` is a consistent cut of its members: each
//! member's execution snapshot (engine state) and protocol state
//! (Algorithm 1 line 21: image, RPP, Logs, Phase, Date) plus the
//! Chandy-Lamport channel state — intra-cluster messages in flight at the
//! cut, which are re-injected on rollback.
//!
//! Coordinated checkpointing guarantees the cut is consistent *within* the
//! cluster; inter-cluster channels are not captured — that is exactly what
//! sender-based logging covers.

use crate::state::HydeeState;
use det_sim::SimTime;
use mps_sim::{InFlightMsg, Rank, RankSnapshot};
use std::collections::BTreeMap;

/// One cluster's saved state.
#[derive(Debug)]
pub struct ClusterCheckpoint {
    pub taken_at: SimTime,
    /// Engine snapshot per member.
    pub snaps: BTreeMap<Rank, RankSnapshot>,
    /// Protocol state per member (persistent fields only).
    pub states: BTreeMap<Rank, HydeeState>,
    /// Intra-cluster channel state at the cut.
    pub inflight: Vec<InFlightMsg>,
    /// Total bytes written to stable storage for this checkpoint.
    pub bytes: u64,
}

impl ClusterCheckpoint {
    /// Bytes attributable to one member (uniform split, used for read
    /// costing at restart).
    pub fn bytes_per_member(&self) -> u64 {
        let n = self.snaps.len().max(1) as u64;
        self.bytes / n
    }
}
