//! Cluster-coordinated checkpoints.
//!
//! A checkpoint of cluster `c` is a consistent cut of its members: each
//! member's execution snapshot (engine state) and protocol state
//! (Algorithm 1 line 21: image, RPP, Logs, Phase, Date) plus the
//! Chandy-Lamport channel state — intra-cluster messages in flight at the
//! cut, which are re-injected on rollback.
//!
//! Coordinated checkpointing guarantees the cut is consistent *within* the
//! cluster; inter-cluster channels are not captured — that is exactly what
//! sender-based logging covers.

use crate::state::HydeeState;
use det_sim::SimTime;
use mps_sim::{InFlightMsg, Rank, RankSnapshot};
use std::collections::BTreeMap;

/// One cluster's saved state.
#[derive(Debug)]
pub struct ClusterCheckpoint {
    pub taken_at: SimTime,
    /// Engine snapshot per member.
    pub snaps: BTreeMap<Rank, RankSnapshot>,
    /// Protocol state per member (persistent fields only).
    pub states: BTreeMap<Rank, HydeeState>,
    /// Intra-cluster channel state at the cut.
    pub inflight: Vec<InFlightMsg>,
    /// Total bytes written to stable storage for this checkpoint.
    pub bytes: u64,
}

impl ClusterCheckpoint {
    /// Bytes attributable to the `idx`-th member (members ordered by
    /// rank): a uniform split with the remainder spread one byte each
    /// over the first `bytes % n` members, so the shares always sum to
    /// exactly [`ClusterCheckpoint::bytes`] (conservation-tested). The
    /// old truncating `bytes / n` under-counted the checkpoint by up to
    /// `n - 1` bytes when summed back.
    ///
    /// Not on the pricing path: `net_model::StorageLedger` prices
    /// checkpoint writes and restart reads by the *batch total*, which
    /// is what eliminated the under-count. This is the canonical
    /// per-member attribution for any consumer that does need a split
    /// (instrumentation, per-member accounting).
    pub fn member_share(&self, idx: usize) -> u64 {
        split_share(self.bytes, self.snaps.len(), idx)
    }
}

/// The share arithmetic of [`ClusterCheckpoint::member_share`]: uniform
/// split, remainder spread one byte each over the first `bytes % n`
/// members, so shares conserve the total.
pub fn split_share(bytes: u64, n_members: usize, idx: usize) -> u64 {
    let n = n_members.max(1) as u64;
    bytes / n + u64::from((idx as u64) < bytes % n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_conserve_total() {
        for n in [1usize, 2, 3, 7, 16, 61] {
            for bytes in [0u64, 1, 16, 1_000_003, (64 << 20) + 17] {
                let shares: Vec<u64> = (0..n).map(|i| split_share(bytes, n, i)).collect();
                assert_eq!(
                    shares.iter().sum::<u64>(),
                    bytes,
                    "n={n} bytes={bytes}: shares must conserve the total"
                );
                let spread = shares.iter().max().unwrap() - shares.iter().min().unwrap();
                assert!(
                    spread <= 1,
                    "n={n} bytes={bytes}: shares as even as possible"
                );
                // Regression: the old truncating `bytes / n` under-counted
                // by the full remainder when summed back.
                assert!(bytes - (bytes / n as u64) * n as u64 <= (n - 1) as u64);
            }
        }
    }
}
