//! Per-process protocol state.
//!
//! The persistent part (date, phase, RPP, sender log, GC bookkeeping) is
//! exactly what Algorithm 1 line 21 saves with the checkpoint; the
//! recovery-transient part exists only between a failure and the end of
//! recovery and is never checkpointed.

use crate::log::SenderLog;
use crate::rpp::Rpp;
use mps_sim::Rank;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Role of a process in the current recovery (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryRole {
    #[default]
    None,
    /// Member of a rolled-back cluster (runs Algorithm 2 + the
    /// Algorithm 3 duties toward *other* rolled clusters).
    Rolled,
    /// Not rolled back (runs Algorithm 3).
    Survivor,
}

/// Protocol state of one process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HydeeState {
    // ---- persistent (checkpointed) ----
    /// Event date: incremented on every send and every delivery
    /// (Algorithm 1 lines 6 and 17).
    pub date: u64,
    /// Current phase (phases start at 1 in the paper's example).
    pub phase: u64,
    pub rpp: Rpp,
    pub log: SenderLog,
    /// Own date at the last checkpoint (GC: peers may prune RPP entries
    /// for this channel below it).
    pub ckpt_date: u64,
    /// `rpp.maxdate` per channel at the last checkpoint (GC: tells each
    /// sender how far its log is covered by our checkpoint).
    pub ckpt_maxdates: BTreeMap<Rank, u64>,
    /// External peers that still owe a CkptAck for the current checkpoint
    /// epoch (ack rides on the first delivery from each).
    pub ack_pending: BTreeSet<Rank>,

    // ---- recovery-transient (never checkpointed) ----
    pub role: RecoveryRole,
    /// Suppression horizon per external peer: last date of ours the peer
    /// has received (`LastDate` answers). `None` until answered.
    pub orphan_date: BTreeMap<Rank, u64>,
    /// Peers whose `LastDate` we still await before our first send.
    pub waiting_lastdate: BTreeSet<Rank>,
    /// Rolled-back peers (outside our cluster) whose `Rollback` we await
    /// before compiling reports.
    pub waiting_rollback: BTreeSet<Rank>,
    /// Rollback info received: peer -> (own_date, maxdate_from_you).
    pub rollback_info: BTreeMap<Rank, (u64, u64)>,
    /// `NotifySendMsg` received.
    pub notify_recv: bool,
    /// Logged entries selected for replay, pending `NotifySendLog`,
    /// date-ascending.
    pub resent_logs: Vec<crate::log::LogEntry>,
    /// Rolled process still inside the suppression window (Algorithm 2
    /// line 21: switches back to failure-free once its date passes every
    /// orphan horizon).
    pub suppressing: bool,
}

impl HydeeState {
    pub fn new() -> Self {
        HydeeState {
            phase: 1,
            ..Default::default()
        }
    }

    /// The state as saved in a checkpoint: persistent fields only,
    /// transient recovery fields reset.
    pub fn checkpoint_view(&self) -> HydeeState {
        HydeeState {
            date: self.date,
            phase: self.phase,
            rpp: self.rpp.clone(),
            log: self.log.clone(),
            ckpt_date: self.ckpt_date,
            ckpt_maxdates: self.ckpt_maxdates.clone(),
            ack_pending: self.ack_pending.clone(),
            ..HydeeState::new()
        }
    }

    /// Has this rolled-back process passed every orphan horizon (so its
    /// sends can no longer be orphan re-emissions)?
    pub fn past_all_orphans(&self) -> bool {
        self.orphan_date.values().all(|&od| self.date > od)
    }

    /// Bytes this state contributes to a checkpoint (metadata + logs).
    pub fn checkpoint_bytes(&self) -> u64 {
        64 + self.log.bytes() + 16 * self.rpp.len() as u64
    }

    /// Test/instrumentation probe: number of RPP entries currently held.
    pub fn delivered_probe(&self) -> usize {
        self.rpp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_state_starts_in_phase_one() {
        let st = HydeeState::new();
        assert_eq!(st.phase, 1);
        assert_eq!(st.date, 0);
        assert_eq!(st.role, RecoveryRole::None);
    }

    #[test]
    fn checkpoint_view_clears_transients() {
        let mut st = HydeeState::new();
        st.date = 10;
        st.phase = 3;
        st.notify_recv = true;
        st.suppressing = true;
        st.waiting_lastdate.insert(Rank(1));
        st.orphan_date.insert(Rank(1), 5);
        let v = st.checkpoint_view();
        assert_eq!(v.date, 10);
        assert_eq!(v.phase, 3);
        assert!(!v.notify_recv);
        assert!(!v.suppressing);
        assert!(v.waiting_lastdate.is_empty());
        assert!(v.orphan_date.is_empty());
        assert_eq!(v.role, RecoveryRole::None);
    }

    #[test]
    fn past_all_orphans_logic() {
        let mut st = HydeeState::new();
        assert!(st.past_all_orphans(), "no horizons => trivially past");
        st.orphan_date.insert(Rank(1), 5);
        st.orphan_date.insert(Rank(2), 8);
        st.date = 8;
        assert!(!st.past_all_orphans());
        st.date = 9;
        assert!(st.past_all_orphans());
    }
}
