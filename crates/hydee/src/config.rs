//! HydEE protocol configuration.

use det_sim::{SimDuration, SimTime};
use mps_sim::{CheckpointPolicyConfig, ClusterMap};
use net_model::{MemcpyModel, PiggybackPolicy, StableStorage};

/// Configuration of a HydEE instance.
#[derive(Debug, Clone)]
pub struct HydeeConfig {
    /// Process clustering (coordinated checkpointing inside, logging
    /// between).
    pub clusters: ClusterMap,
    /// How `(date, phase)` rides on application messages.
    pub piggyback: PiggybackPolicy,
    /// Cost model for the sender-based log copy.
    pub memcpy: MemcpyModel,
    /// Stable storage for checkpoints.
    pub storage: StableStorage,
    /// Interval between cluster checkpoints; `None` disables periodic
    /// checkpointing (failure-free overhead runs) — the implicit initial
    /// checkpoint at t=0 is always taken. Sugar for a
    /// [`CheckpointPolicyConfig::Periodic`] policy; ignored when
    /// [`HydeeConfig::checkpoint_policy`] is set.
    pub checkpoint_interval: Option<SimDuration>,
    /// Checkpoint-scheduling policy (DESIGN.md §2.4). `None`: derive
    /// from `checkpoint_interval` (the historical sugar).
    pub checkpoint_policy: Option<CheckpointPolicyConfig>,
    /// Offset between consecutive clusters' checkpoint schedules
    /// (staggering avoids the coordinated-checkpointing I/O burst, §VI).
    pub checkpoint_stagger: SimDuration,
    /// First checkpoint time (then every `checkpoint_interval`).
    pub first_checkpoint: SimTime,
    /// Garbage-collect logs/RPP on checkpoint acknowledgements (§III-E).
    pub gc: bool,
    /// Per-rank process image size written at each checkpoint (the
    /// application memory footprint stand-in).
    pub image_bytes: u64,
    /// Fixed restart latency (process respawn) added to checkpoint read
    /// time at rollback.
    pub restart_latency: SimDuration,
}

impl HydeeConfig {
    /// Defaults tuned for the paper's setting: no periodic checkpoints
    /// (failure-free measurement mode), GC on, 64 MiB images.
    pub fn new(clusters: ClusterMap) -> Self {
        HydeeConfig {
            clusters,
            piggyback: PiggybackPolicy::default(),
            memcpy: MemcpyModel::default(),
            storage: StableStorage::default(),
            checkpoint_interval: None,
            checkpoint_policy: None,
            checkpoint_stagger: SimDuration::from_ms(50),
            first_checkpoint: SimTime::from_ms(100),
            gc: true,
            image_bytes: 64 << 20,
            restart_latency: SimDuration::from_ms(10),
        }
    }

    /// Enable periodic checkpointing every `interval`.
    pub fn with_checkpoints(mut self, interval: SimDuration) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Schedule checkpoints with an explicit policy (overrides the
    /// `checkpoint_interval` sugar).
    pub fn with_policy(mut self, policy: CheckpointPolicyConfig) -> Self {
        self.checkpoint_policy = Some(policy);
        self
    }

    /// The effective policy: `checkpoint_policy` if set, otherwise the
    /// `checkpoint_interval` sugar ([`CheckpointPolicyConfig::Periodic`]
    /// with this config's `first_checkpoint`/`checkpoint_stagger`, or
    /// `Disabled` when the interval is `None`).
    pub fn resolved_policy(&self) -> CheckpointPolicyConfig {
        self.checkpoint_policy
            .unwrap_or(match self.checkpoint_interval {
                Some(interval) => CheckpointPolicyConfig::Periodic {
                    interval,
                    first: None,
                    stagger: None,
                },
                None => CheckpointPolicyConfig::Disabled,
            })
    }

    /// Override the per-rank image size.
    pub fn with_image_bytes(mut self, bytes: u64) -> Self {
        self.image_bytes = bytes;
        self
    }

    /// Disable garbage collection (for log-growth experiments).
    pub fn without_gc(mut self) -> Self {
        self.gc = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_sugar_resolves_to_periodic() {
        let cfg = HydeeConfig::new(ClusterMap::blocks(4, 2));
        assert_eq!(cfg.resolved_policy(), CheckpointPolicyConfig::Disabled);
        let cfg = cfg.with_checkpoints(SimDuration::from_ms(40));
        assert_eq!(
            cfg.resolved_policy(),
            CheckpointPolicyConfig::Periodic {
                interval: SimDuration::from_ms(40),
                first: None,
                stagger: None,
            }
        );
        // An explicit policy wins over the sugar.
        let cfg = cfg.with_policy(CheckpointPolicyConfig::YoungDaly {
            first: None,
            stagger: None,
        });
        assert!(matches!(
            cfg.resolved_policy(),
            CheckpointPolicyConfig::YoungDaly { .. }
        ));
    }

    #[test]
    fn builder_chains() {
        let cfg = HydeeConfig::new(ClusterMap::blocks(8, 2))
            .with_checkpoints(SimDuration::from_ms(500))
            .with_image_bytes(1 << 20)
            .without_gc();
        assert_eq!(cfg.checkpoint_interval, Some(SimDuration::from_ms(500)));
        assert_eq!(cfg.image_bytes, 1 << 20);
        assert!(!cfg.gc);
        assert_eq!(cfg.clusters.n_clusters(), 2);
    }
}
