//! The recovery process — Algorithm 4.
//!
//! A transient entity launched at failure time. It gathers three reports
//! from every alive process (`OwnPhase`, `LogReport`, `OrphanReport`),
//! tracks the number of outstanding orphan messages per phase, and
//! releases `NotifySendLog` / `NotifySendMsg` notifications *in phase
//! order*: a phase is released once no strictly lower phase has
//! outstanding orphans. Each `OrphanNotification` (a suppressed orphan
//! re-emission) decrements its phase's count and may unlock further
//! phases.
//!
//! Within one release sweep `NotifySendLog` notices precede
//! `NotifySendMsg` notices (Algorithm 4 runs lines 17–20 before 21–23);
//! combined with channel FIFO this guarantees a survivor replays its logs
//! before its own new sends reach the same destination.

use crate::ctl::{HydeeCtl, RpNotice};
use mps_sim::Rank;
use std::collections::BTreeMap;

/// State of the recovery process.
#[derive(Debug, Clone)]
pub struct RecoveryProcess {
    n_alive: usize,
    /// Recovery incarnation stamped onto every notice this process
    /// emits, so notices of an aborted recovery can be recognised and
    /// dropped by their receivers (see `ctl.rs`).
    epoch: u64,
    got_own: usize,
    got_log: usize,
    got_orphan: usize,
    /// Outstanding orphan count per phase (`NbOrphanPhase`).
    orphans: BTreeMap<u64, u64>,
    /// Processes waiting for their send release, per reported phase
    /// (`ProcessPhases`).
    process_phase: BTreeMap<u64, Vec<Rank>>,
    /// Processes holding logged messages to replay, per phase
    /// (`MsgLPhase`).
    log_phase: BTreeMap<u64, Vec<Rank>>,
}

impl RecoveryProcess {
    /// `n_alive`: number of processes that will send each report kind.
    /// `epoch`: the recovery incarnation this process orchestrates.
    pub fn new(n_alive: usize, epoch: u64) -> Self {
        RecoveryProcess {
            n_alive,
            epoch,
            got_own: 0,
            got_log: 0,
            got_orphan: 0,
            orphans: BTreeMap::new(),
            process_phase: BTreeMap::new(),
            log_phase: BTreeMap::new(),
        }
    }

    /// All three report kinds received from everyone?
    pub fn reports_complete(&self) -> bool {
        self.got_own == self.n_alive
            && self.got_log == self.n_alive
            && self.got_orphan == self.n_alive
    }

    /// Recovery orchestration finished: everything released, no orphans
    /// outstanding.
    pub fn done(&self) -> bool {
        self.reports_complete()
            && self.orphans.values().all(|&c| c == 0)
            && self.process_phase.is_empty()
            && self.log_phase.is_empty()
    }

    /// Total outstanding orphan count (diagnostics).
    pub fn outstanding_orphans(&self) -> u64 {
        self.orphans.values().sum()
    }

    pub fn on_own_phase(&mut self, from: Rank, phase: u64) -> Vec<RpNotice> {
        self.process_phase.entry(phase).or_default().push(from);
        self.got_own += 1;
        self.sweep_if_ready()
    }

    pub fn on_log_report(&mut self, from: Rank, phases: &[u64]) -> Vec<RpNotice> {
        for &p in phases {
            let v = self.log_phase.entry(p).or_default();
            if !v.contains(&from) {
                v.push(from);
            }
        }
        self.got_log += 1;
        self.sweep_if_ready()
    }

    pub fn on_orphan_report(&mut self, phases: &[u64]) -> Vec<RpNotice> {
        for &p in phases {
            *self.orphans.entry(p).or_insert(0) += 1;
        }
        self.got_orphan += 1;
        self.sweep_if_ready()
    }

    /// A suppressed orphan re-emission occurred in `phase`
    /// (Algorithm 4, lines 12–15).
    pub fn on_orphan_notification(&mut self, phase: u64) -> Vec<RpNotice> {
        let c = self
            .orphans
            .get_mut(&phase)
            .unwrap_or_else(|| panic!("orphan notification for unreported phase {phase}"));
        assert!(
            *c > 0,
            "more orphan notifications than orphans in phase {phase}"
        );
        *c -= 1;
        if *c == 0 {
            self.sweep_if_ready()
        } else {
            Vec::new()
        }
    }

    fn sweep_if_ready(&mut self) -> Vec<RpNotice> {
        if !self.reports_complete() {
            return Vec::new();
        }
        self.sweep()
    }

    /// `NotifyPhase` (Algorithm 4, lines 16–24): release every phase not
    /// blocked by a strictly lower phase with outstanding orphans.
    fn sweep(&mut self) -> Vec<RpNotice> {
        let min_blocked = self.orphans.iter().find(|(_, &c)| c > 0).map(|(&p, _)| p);
        let releasable = |phase: u64| match min_blocked {
            None => true,
            Some(b) => phase <= b,
        };
        let mut out = Vec::new();
        // Logs first (lines 17-20), then send releases (lines 21-23).
        let log_release: Vec<u64> = self
            .log_phase
            .keys()
            .copied()
            .filter(|&p| releasable(p))
            .collect();
        for p in log_release {
            for rank in self.log_phase.remove(&p).unwrap() {
                out.push(RpNotice {
                    to: rank,
                    ctl: HydeeCtl::NotifySendLog {
                        epoch: self.epoch,
                        phase: p,
                    },
                });
            }
        }
        let msg_release: Vec<u64> = self
            .process_phase
            .keys()
            .copied()
            .filter(|&p| releasable(p))
            .collect();
        for p in msg_release {
            for rank in self.process_phase.remove(&p).unwrap() {
                out.push(RpNotice {
                    to: rank,
                    ctl: HydeeCtl::NotifySendMsg {
                        epoch: self.epoch,
                        phase: p,
                    },
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(notices: &[RpNotice]) -> Vec<(u32, &'static str, u64)> {
        notices
            .iter()
            .map(|n| match n.ctl {
                HydeeCtl::NotifySendLog { phase, .. } => (n.to.0, "log", phase),
                HydeeCtl::NotifySendMsg { phase, .. } => (n.to.0, "msg", phase),
                _ => panic!("unexpected notice"),
            })
            .collect()
    }

    #[test]
    fn no_orphans_releases_everything_at_once() {
        let mut rp = RecoveryProcess::new(2, 1);
        assert!(rp.on_own_phase(Rank(0), 1).is_empty());
        assert!(rp.on_log_report(Rank(0), &[1]).is_empty());
        assert!(rp.on_orphan_report(&[]).is_empty());
        assert!(rp.on_own_phase(Rank(1), 2).is_empty());
        assert!(rp.on_log_report(Rank(1), &[]).is_empty());
        let notices = rp.on_orphan_report(&[]);
        assert_eq!(
            kinds(&notices),
            vec![(0, "log", 1), (0, "msg", 1), (1, "msg", 2)]
        );
        assert!(rp.done());
    }

    #[test]
    fn orphans_block_higher_phases() {
        let mut rp = RecoveryProcess::new(2, 1);
        rp.on_own_phase(Rank(0), 1); // the orphan's eventual re-emitter
        rp.on_own_phase(Rank(1), 3);
        rp.on_log_report(Rank(0), &[]);
        rp.on_log_report(Rank(1), &[3]);
        rp.on_orphan_report(&[2]); // one orphan in phase 2
        let notices = rp.on_orphan_report(&[]);
        // Phase 1 <= 2 releases; phase 3 > 2 blocked (both log and msg).
        assert_eq!(kinds(&notices), vec![(0, "msg", 1)]);
        assert!(!rp.done());
        assert_eq!(rp.outstanding_orphans(), 1);
        // The suppressed orphan arrives; everything unblocks.
        let notices = rp.on_orphan_notification(2);
        assert_eq!(kinds(&notices), vec![(1, "log", 3), (1, "msg", 3)]);
        assert!(rp.done());
    }

    #[test]
    fn phase_equal_to_min_orphan_is_released() {
        // Orphans in phase p do not block processes AT phase p — only
        // strictly lower phases block (Lemma 3 is strict).
        let mut rp = RecoveryProcess::new(1, 1);
        rp.on_own_phase(Rank(0), 2);
        rp.on_log_report(Rank(0), &[]);
        let notices = rp.on_orphan_report(&[2]);
        assert_eq!(kinds(&notices), vec![(0, "msg", 2)]);
    }

    #[test]
    fn multiple_orphans_same_phase_all_required() {
        let mut rp = RecoveryProcess::new(1, 1);
        rp.on_own_phase(Rank(0), 5);
        rp.on_log_report(Rank(0), &[]);
        rp.on_orphan_report(&[2, 2, 2]);
        assert!(rp.on_orphan_notification(2).is_empty());
        assert!(rp.on_orphan_notification(2).is_empty());
        let notices = rp.on_orphan_notification(2);
        assert_eq!(kinds(&notices), vec![(0, "msg", 5)]);
        assert!(rp.done());
    }

    #[test]
    fn staged_release_across_phases() {
        let mut rp = RecoveryProcess::new(1, 1);
        rp.on_own_phase(Rank(0), 9);
        rp.on_log_report(Rank(0), &[2, 5, 9]);
        rp.on_orphan_report(&[3, 6]);
        // After reports: min blocked = 3 -> log phase 2 and 3? phase 2 <= 3 ok.
        // log phases released: 2 (and none above 3).
        // Then clearing 3 releases 5; clearing 6 releases 9 and the process.
        let n1 = rp.on_orphan_notification(3);
        assert_eq!(kinds(&n1), vec![(0, "log", 5)]);
        let n2 = rp.on_orphan_notification(6);
        assert_eq!(kinds(&n2), vec![(0, "log", 9), (0, "msg", 9)]);
        assert!(rp.done());
    }

    #[test]
    #[should_panic(expected = "unreported phase")]
    fn notification_for_unknown_phase_panics() {
        let mut rp = RecoveryProcess::new(0, 1);
        rp.on_orphan_notification(7);
    }

    #[test]
    fn logs_precede_sends_within_a_sweep() {
        let mut rp = RecoveryProcess::new(1, 1);
        rp.on_own_phase(Rank(0), 1);
        rp.on_log_report(Rank(0), &[1]);
        let notices = rp.on_orphan_report(&[]);
        assert_eq!(kinds(&notices)[0].1, "log");
        assert_eq!(kinds(&notices)[1].1, "msg");
    }
}
