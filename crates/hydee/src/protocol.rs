//! The HydEE protocol (Algorithms 1–4 of the paper).
//!
//! * **Failure free** (Algorithm 1): every send increments the sender's
//!   date and carries `(date, phase)`; inter-cluster sends are logged in
//!   sender memory; deliveries update the phase (`max(phase, m.phase)`
//!   intra-cluster, `max(phase, m.phase + 1)` inter-cluster), record the
//!   RPP entry, and increment the date. Clusters checkpoint in a
//!   coordinated way, saving `(image, RPP, Logs, Phase, Date)`.
//!
//! * **Failure** (Algorithms 2–4): the failed process's whole cluster
//!   restores its last checkpoint; restarted processes notify everyone
//!   outside their cluster (`Rollback`), peers answer `LastDate` and
//!   report logged-message phases, orphan phases, and their own phase to a
//!   freshly launched *recovery process*, which releases log replays and
//!   first sends in phase order. Re-executed sends that the receiver
//!   already has are **suppressed** and acknowledged to the recovery
//!   process — send-determinism guarantees the suppressed message is
//!   byte-identical to the original (the engine's trace oracle verifies
//!   exactly that).
//!
//! Multi-cluster (concurrent) failures are handled symmetrically: rolled
//! processes also run the survivor duties toward *other* rolled clusters,
//! answering `LastDate` and replaying logs from their restored state.

use crate::checkpoint::ClusterCheckpoint;
use crate::config::HydeeConfig;
use crate::ctl::{HydeeCtl, RpNotice, RECOVERY_PROCESS};
use crate::log::LogEntry;
use crate::recovery::RecoveryProcess;
use crate::state::{HydeeState, RecoveryRole};
use det_sim::{SimDuration, SimTime};
use mps_sim::{
    CheckpointPolicy, Ctx, Endpoint, Message, PbMeta, PolicyObs, Protocol, Rank, SendAction,
    SendDirective, SendInfo,
};
use net_model::StorageLedger;
use std::collections::BTreeSet;

/// The HydEE rollback-recovery protocol.
pub struct Hydee {
    cfg: HydeeConfig,
    states: Vec<HydeeState>,
    checkpoints: Vec<Option<ClusterCheckpoint>>,
    rp: Option<RecoveryProcess>,
    recovering: bool,
    recovery_started: SimTime,
    /// Recovery incarnation counter: bumped on every failure. Control
    /// messages of earlier incarnations still in flight are discarded on
    /// arrival (see `ctl.rs`).
    recovery_epoch: u64,
    /// Clusters rolled back by the recovery currently being orchestrated
    /// (empty when no recovery is active). A failure arriving mid-recovery
    /// re-rolls these together with the newly hit clusters.
    active_rolled: BTreeSet<u32>,
    /// When each cluster last rolled back (`ZERO` = never). Lost-work
    /// accounting is *incremental*: a re-roll discards only the work
    /// redone since the previous rollback, not the whole
    /// checkpoint-to-now span again.
    last_rolled_at: Vec<SimTime>,
    /// When each active rolled cluster finished its checkpoint restore —
    /// the boundary between its rollback and replay telemetry spans.
    rollback_end: Vec<SimTime>,
    /// Checkpoint scheduler (DESIGN.md §2.4); `None` = no periodic
    /// checkpoints beyond the implicit t=0 one.
    policy: Option<Box<dyn CheckpointPolicy>>,
    /// Cached `policy.reactive()`: gates the per-send policy consult so
    /// non-reactive policies cost nothing on the hot path.
    policy_reactive: bool,
    /// Dynamic storage-contention ledger: every checkpoint write and
    /// restart read is priced by what actually overlaps it in virtual
    /// time, replacing the static `concurrent_writers` divisor. Shared
    /// across shards in a sharded run (DESIGN.md §2.8) — checkpoints on
    /// different shards overlapping in virtual time must contend exactly
    /// as they do serially; mutation order stays deterministic because
    /// only timers touch the ledger and the parallel coordinator executes
    /// timers globally sequenced.
    ledger: std::sync::Arc<std::sync::Mutex<StorageLedger>>,
    /// Clusters this protocol instance schedules checkpoints for — `None`
    /// serially (all of them), the shard's cluster set in a sharded run.
    /// Per-cluster policy state only ever observes its own cluster, so
    /// per-shard policy copies over disjoint owned sets are equivalent to
    /// the serial single policy.
    owned: Option<Vec<u32>>,
    /// Fire time of each cluster's armed checkpoint timer (`None`: no
    /// timer outstanding — at most one per cluster).
    armed: Vec<Option<SimTime>>,
    /// Clusters whose due checkpoint was deferred by an active
    /// recovery; they fire when the recovery completes.
    deferred: BTreeSet<u32>,
    /// Measured duration of each cluster's last checkpoint.
    last_ckpt_cost: Vec<SimDuration>,
    /// Completed checkpoints per cluster (excluding the implicit t=0).
    ckpts_taken: Vec<u64>,
    /// Cluster sender-log bytes at its last checkpoint (baseline for
    /// the LogPressure growth observation).
    log_bytes_at_ckpt: Vec<u64>,
}

impl Hydee {
    pub fn new(cfg: HydeeConfig) -> Self {
        let policy = cfg
            .resolved_policy()
            .build(cfg.first_checkpoint, cfg.checkpoint_stagger);
        Self::with_policy(cfg, policy)
    }

    /// Construct with an explicit (possibly hand-built) policy object,
    /// bypassing [`HydeeConfig::resolved_policy`].
    pub fn with_policy(cfg: HydeeConfig, policy: Option<Box<dyn CheckpointPolicy>>) -> Self {
        let ledger = std::sync::Arc::new(std::sync::Mutex::new(StorageLedger::new(cfg.storage)));
        Self::build(cfg, policy, ledger, None)
    }

    /// Route this instance's storage ledger through an interconnect
    /// drain path (DESIGN.md §2.9): checkpoint writes and restart reads
    /// pay the topology's widest link class on their way to the storage
    /// tier. The `(ZERO, 0)` flat surcharge is a no-op, keeping legacy
    /// pricing bit-for-bit. Call before the run starts (the factory
    /// does), never mid-run.
    pub fn set_drain_surcharge(&mut self, latency: SimDuration, ps_per_byte: u64) {
        let mut ledger = self.ledger.lock().unwrap();
        *ledger = ledger.with_drain_surcharge(latency, ps_per_byte);
    }

    /// Construct one shard's protocol instance for a sharded run: `ledger`
    /// is shared by every shard, `owned` is the cluster set this shard
    /// simulates (it captures the t=0 checkpoint and schedules checkpoint
    /// timers only for those).
    pub fn sharded(
        cfg: HydeeConfig,
        ledger: std::sync::Arc<std::sync::Mutex<StorageLedger>>,
        owned: Vec<u32>,
    ) -> Self {
        let policy = cfg
            .resolved_policy()
            .build(cfg.first_checkpoint, cfg.checkpoint_stagger);
        Self::build(cfg, policy, ledger, Some(owned))
    }

    fn build(
        cfg: HydeeConfig,
        policy: Option<Box<dyn CheckpointPolicy>>,
        ledger: std::sync::Arc<std::sync::Mutex<StorageLedger>>,
        owned: Option<Vec<u32>>,
    ) -> Self {
        let n = cfg.clusters.n_ranks();
        let n_clusters = cfg.clusters.n_clusters();
        Hydee {
            cfg,
            states: (0..n).map(|_| HydeeState::new()).collect(),
            checkpoints: (0..n_clusters).map(|_| None).collect(),
            rp: None,
            recovering: false,
            recovery_started: SimTime::ZERO,
            recovery_epoch: 0,
            active_rolled: BTreeSet::new(),
            last_rolled_at: vec![SimTime::ZERO; n_clusters],
            rollback_end: vec![SimTime::ZERO; n_clusters],
            policy_reactive: policy.as_deref().is_some_and(|p| p.reactive()),
            policy,
            ledger,
            owned,
            armed: vec![None; n_clusters],
            deferred: BTreeSet::new(),
            last_ckpt_cost: vec![SimDuration::ZERO; n_clusters],
            ckpts_taken: vec![0; n_clusters],
            log_bytes_at_ckpt: vec![0; n_clusters],
        }
    }

    /// Is a recovery currently being orchestrated?
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Protocol state of one rank (for tests and instrumentation).
    pub fn state(&self, r: Rank) -> &HydeeState {
        &self.states[r.idx()]
    }

    pub fn config(&self) -> &HydeeConfig {
        &self.cfg
    }

    fn cluster_of(&self, r: Rank) -> u32 {
        self.cfg.clusters.cluster_of(r)
    }

    /// Does this instance schedule checkpoints for cluster `c`?
    fn owns_cluster(&self, c: u32) -> bool {
        match &self.owned {
            None => true,
            Some(owned) => owned.contains(&c),
        }
    }

    /// Capture a consistent cut of cluster `c` (engine snapshots, protocol
    /// states, intra-cluster channel state). Does not charge time.
    fn capture_cluster(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, c: u32) -> ClusterCheckpoint {
        let members: Vec<Rank> = self.cfg.clusters.members(c).to_vec();
        let inflight = ctx.capture_inflight_within(&members);
        let mut snaps = std::collections::BTreeMap::new();
        let mut states = std::collections::BTreeMap::new();
        let mut bytes = 0u64;
        for &r in &members {
            let mut snap = ctx.capture_rank(r);
            // Inter-cluster channel state is NOT part of a cluster
            // checkpoint: sender-based logs cover it (see
            // RankSnapshot::retain_messages).
            snap.retain_messages(|m| self.cfg.clusters.same_cluster(m.src, m.dst));
            let st = &mut self.states[r.idx()];
            // GC epoch bookkeeping: remember what this checkpoint covers
            // and arm the acknowledgement-on-first-delivery markers.
            st.ckpt_date = st.date;
            st.ckpt_maxdates = st.rpp.sources().map(|s| (s, st.rpp.maxdate(s))).collect();
            st.ack_pending = st
                .rpp
                .sources()
                .filter(|&s| self.cfg.clusters.cluster_of(s) != c)
                .collect();
            bytes += self.cfg.image_bytes + st.checkpoint_bytes() + snap.image_bytes();
            states.insert(r, st.checkpoint_view());
            snaps.insert(r, snap);
        }
        ClusterCheckpoint {
            taken_at: ctx.now(),
            snaps,
            states,
            inflight,
            bytes,
        }
    }

    /// Sender-log bytes currently held by cluster `c`'s members.
    fn cluster_log_bytes(&self, c: u32) -> u64 {
        self.cfg
            .clusters
            .members(c)
            .iter()
            .map(|&r| self.states[r.idx()].log.bytes())
            .sum()
    }

    /// Observations for a policy consult about cluster `c`.
    fn obs_for(&self, ctx: &Ctx<'_, HydeeCtl>, c: u32) -> PolicyObs {
        let ci = c as usize;
        let members = self.cfg.clusters.members(c).len() as u64;
        PolicyObs {
            checkpoints_taken: self.ckpts_taken[ci],
            last_cost: self.last_ckpt_cost[ci],
            // Closed-form estimate until a measurement exists: the
            // cluster's images at uncontended aggregate bandwidth.
            est_cost: self
                .cfg
                .storage
                .write_time(members.saturating_mul(self.cfg.image_bytes), 1),
            // Containment scales the failure domain: a cluster's
            // checkpoint only insures against failures that roll *this
            // cluster* back, and with uniform victims those arrive
            // `n_clusters` times more rarely than machine failures.
            // (Global coordinated checkpointing has n_clusters = 1 and
            // sees the raw machine MTBF — the §VI asymmetry, surfaced
            // through the same policy interface.)
            mtbf: ctx.failure_mtbf().map(|m| {
                // Saturating: rare-failure models can report MTBFs near
                // the u64-picosecond ceiling, and a wrapped product
                // would read as a near-zero MTBF (continuous
                // checkpointing) instead of "practically never".
                SimDuration::from_ps(
                    m.as_ps()
                        .saturating_mul(self.cfg.clusters.n_clusters().max(1) as u64),
                )
            }),
            log_bytes_since_ckpt: self
                .cluster_log_bytes(c)
                .saturating_sub(self.log_bytes_at_ckpt[ci]),
        }
    }

    /// Ask the policy when cluster `c` should next checkpoint, as of
    /// `now`, and arm a timer. At most one timer is outstanding per
    /// cluster; a consult while one is armed is a no-op.
    fn consult_policy(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, c: u32, now: SimTime) {
        if self.armed[c as usize].is_some() {
            return;
        }
        let obs = self.obs_for(ctx, c);
        let Some(policy) = self.policy.as_mut() else {
            return;
        };
        if let Some(at) = policy.next_for(c, now, &obs) {
            let at = at.max(ctx.now());
            self.armed[c as usize] = Some(at);
            ctx.set_timer(at, c as u64);
        }
    }

    /// Coordinated checkpoint of cluster `c` with full cost accounting.
    fn do_checkpoint(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, c: u32) {
        let ckpt = self.capture_cluster(ctx, c);
        let members: Vec<Rank> = self.cfg.clusters.members(c).to_vec();
        let n_members = members.len() as u64;
        // Cluster-internal coordination: one small-message round per tree
        // level, down and up.
        let levels = (usize::BITS - (members.len().max(1) - 1).leading_zeros()) as u64;
        let coord = ctx.wire_cost(32).one_way() * (2 * levels.max(1));
        // The cluster's members share the aggregate pipe as one batch;
        // checkpoints of *other* clusters overlapping this one in
        // virtual time queue it (the §VI I/O-burst pricing).
        let write = self
            .ledger
            .lock()
            .unwrap()
            .write_batch(ctx.now(), ckpt.bytes);
        let cost = coord + write.total();
        for &r in &members {
            ctx.charge(r, cost);
        }
        let now = ctx.now();
        if let Some(rec) = ctx.recorder() {
            rec.on_storage(
                mps_sim::StorageDir::Write,
                now,
                write.queued,
                write.service,
                ckpt.bytes,
            );
            rec.on_checkpoint(c, now, now + cost, ckpt.bytes);
        }
        ctx.metrics().checkpoints += n_members;
        ctx.metrics().checkpoint_bytes += ckpt.bytes;
        ctx.metrics().checkpoint_time += cost * n_members;
        let ci = c as usize;
        self.last_ckpt_cost[ci] = cost;
        self.ckpts_taken[ci] += 1;
        self.log_bytes_at_ckpt[ci] = self.cluster_log_bytes(c);
        self.checkpoints[ci] = Some(ckpt);
    }

    /// Send every notice the recovery process produced, then finish
    /// recovery if its bookkeeping completed.
    fn dispatch_rp(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, notices: Vec<RpNotice>) {
        for n in notices {
            let bytes = n.ctl.wire_bytes();
            ctx.send_ctl(RECOVERY_PROCESS, Endpoint::Rank(n.to), bytes, n.ctl);
        }
        if self.rp.as_ref().is_some_and(|rp| rp.done()) {
            self.rp = None;
            self.recovering = false;
            let now = ctx.now();
            if ctx.recorder().is_some() {
                for &c in &self.active_rolled {
                    let restored = self.rollback_end[c as usize];
                    if let Some(rec) = ctx.recorder() {
                        rec.on_recovery_phase(c, mps_sim::RecoveryPhase::Replay, restored, now);
                        rec.on_recovery_phase(c, mps_sim::RecoveryPhase::Complete, now, now);
                    }
                }
            }
            self.active_rolled.clear();
            let span = now.since(self.recovery_started);
            ctx.metrics().recovery_time += span;
            // Checkpoints that fell due during the recovery fire now,
            // anchored at its completion — not one blind interval past
            // the deferral point, which silently stretched the
            // effective interval (the policy then reschedules from the
            // executed checkpoint as usual).
            let due = std::mem::take(&mut self.deferred);
            for c in due {
                if self.armed[c as usize].is_none() {
                    self.armed[c as usize] = Some(ctx.now());
                    ctx.set_timer(ctx.now(), c as u64);
                }
            }
        }
    }

    /// All rollback notifications this process was waiting for have
    /// arrived: answer each restarted peer, select log replays, and report
    /// to the recovery process (Algorithm 3, lines 8–17).
    fn compile_reports(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, me: Rank) {
        let info: Vec<(Rank, u64, u64)> = self.states[me.idx()]
            .rollback_info
            .iter()
            .map(|(&k, &(own_date, maxdate))| (k, own_date, maxdate))
            .collect();
        let mut log_phases = Vec::new();
        let mut orphan_phases = Vec::new();
        let mut resent: Vec<LogEntry> = Vec::new();
        let mut lastdate: Vec<(Rank, u64)> = Vec::new();
        {
            let st = &self.states[me.idx()];
            for &(k, own_date, maxdate_from_me) in &info {
                let replay = st.log.replay_set(k, maxdate_from_me);
                log_phases.extend(replay.iter().map(|e| e.phase));
                resent.extend(replay);
                orphan_phases.extend(st.rpp.orphan_phases(k, own_date));
                // Messages from k that arrived but are still buffered count
                // as received (library-level reception): they raise our
                // LastDate horizon and, past k's restored date, they are
                // orphans k will suppress.
                let pending = ctx.pending_meta_from(me, k);
                let mut max_received = st.rpp.maxdate(k);
                for meta in pending {
                    max_received = max_received.max(meta.date);
                    if meta.date > own_date {
                        orphan_phases.push(meta.phase);
                    }
                }
                lastdate.push((k, max_received));
            }
        }
        resent.sort_by_key(|e| e.date);
        self.states[me.idx()].resent_logs = resent;
        let from = Endpoint::Rank(me);
        let epoch = self.recovery_epoch;
        for (k, max_received) in lastdate {
            let answer = HydeeCtl::LastDate {
                epoch,
                maxdate_from_you: max_received,
            };
            let bytes = answer.wire_bytes();
            ctx.send_ctl(from, Endpoint::Rank(k), bytes, answer);
        }
        for ctl in [
            HydeeCtl::LogReport {
                epoch,
                phases: log_phases,
            },
            HydeeCtl::OrphanReport {
                epoch,
                phases: orphan_phases,
            },
            HydeeCtl::OwnPhase {
                epoch,
                phase: self.states[me.idx()].phase,
            },
        ] {
            let bytes = ctl.wire_bytes();
            ctx.send_ctl(from, RECOVERY_PROCESS, bytes, ctl);
        }
    }

    /// Open the send gate if this process has everything it needs
    /// (Algorithm 2 line 8 / Algorithm 3 line 18).
    fn try_open_gate(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, me: Rank) {
        let st = &self.states[me.idx()];
        let ready = match st.role {
            RecoveryRole::Rolled => st.notify_recv && st.waiting_lastdate.is_empty(),
            RecoveryRole::Survivor => st.notify_recv,
            RecoveryRole::None => return,
        };
        if ready {
            let st = &mut self.states[me.idx()];
            if st.role == RecoveryRole::Survivor {
                st.role = RecoveryRole::None;
            }
            st.notify_recv = false;
            ctx.gate(me, false);
        }
    }
}

impl Protocol for Hydee {
    type Ctl = HydeeCtl;

    fn name(&self) -> &'static str {
        "hydee"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, HydeeCtl>) {
        // Implicit initial checkpoint of every cluster at t=0 (cost-free:
        // nothing has executed, the "image" is the binary itself). Sharded
        // instances capture and consult only their owned clusters.
        for c in 0..self.cfg.clusters.n_clusters() as u32 {
            if !self.owns_cluster(c) {
                continue;
            }
            let ckpt = self.capture_cluster(ctx, c);
            self.checkpoints[c as usize] = Some(ckpt);
        }
        for c in 0..self.cfg.clusters.n_clusters() as u32 {
            if self.owns_cluster(c) {
                self.consult_policy(ctx, c, ctx.now());
            }
        }
    }

    fn on_send(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, info: &SendInfo) -> SendDirective {
        let inter = !self.cfg.clusters.same_cluster(info.src, info.dst);
        let src_idx = info.src.idx();

        // Algorithm 2 line 21: once the re-executing process's date passes
        // every orphan horizon it switches back to the failure-free path.
        if self.states[src_idx].suppressing && self.states[src_idx].past_all_orphans() {
            let st = &mut self.states[src_idx];
            st.suppressing = false;
            st.role = RecoveryRole::None;
        }

        // Date is incremented for every send event, suppressed or not
        // (Algorithm 1 line 6 / Algorithm 2 line 12).
        self.states[src_idx].date += 1;
        let date = self.states[src_idx].date;
        let phase = self.states[src_idx].phase;
        let meta = PbMeta { date, phase };

        // Algorithm 2 lines 13-15: a re-executed inter-cluster send the
        // receiver already has is suppressed; notify the recovery process.
        //
        // Deviation from the paper's pseudo-code (documented in DESIGN.md):
        // the suppressed message is still APPENDED TO THE SENDER LOG. The
        // paper's Algorithm 2 only logs transmitted sends, which leaves the
        // restarted process's log missing its suppressed messages — a
        // *subsequent* failure rolling the receiver back past those
        // deliveries would then find nothing to replay and recovery would
        // deadlock. Re-logging restores the Algorithm 1 invariant that the
        // sender log covers every inter-cluster send since the last
        // checkpoint.
        if self.states[src_idx].suppressing && inter {
            if let Some(&od) = self.states[src_idx].orphan_date.get(&info.dst) {
                if date <= od {
                    self.states[src_idx].log.append(LogEntry {
                        date,
                        phase,
                        dst: info.dst,
                        tag: info.tag,
                        bytes: info.bytes,
                        payload: info.payload,
                        channel_seq: info.channel_seq,
                    });
                    ctx.log_append(info.bytes);
                    let ctl = HydeeCtl::OrphanNotification {
                        epoch: self.recovery_epoch,
                        phase,
                    };
                    let bytes = ctl.wire_bytes();
                    ctx.send_ctl(Endpoint::Rank(info.src), RECOVERY_PROCESS, bytes, ctl);
                    // The log copy cannot overlap a transmission that never
                    // happens: charge the full copy.
                    return SendDirective {
                        action: SendAction::Suppress,
                        meta,
                        extra_wire_bytes: 0,
                        extra_sender_time: self.cfg.memcpy.copy_time(info.bytes),
                    };
                }
            }
        }

        // Piggyback (date, phase): inline below the threshold, separate
        // protocol message above it (§V-A).
        let extra_wire_bytes;
        let mut extra_sender_time;
        match self.cfg.piggyback.apply(info.bytes) {
            net_model::PiggybackCost::Inline { extra_bytes } => {
                extra_wire_bytes = extra_bytes;
                extra_sender_time = SimDuration::ZERO;
            }
            net_model::PiggybackCost::Separate { sender_overhead } => {
                extra_wire_bytes = 0;
                extra_sender_time = sender_overhead;
            }
        }

        // Algorithm 1 lines 7-8: sender-based logging of inter-cluster
        // payloads. The memcpy overlaps with the NIC transfer; only the
        // non-overlapped remainder (if any) costs sender time.
        if inter {
            self.states[src_idx].log.append(LogEntry {
                date,
                phase,
                dst: info.dst,
                tag: info.tag,
                bytes: info.bytes,
                payload: info.payload,
                channel_seq: info.channel_seq,
            });
            ctx.log_append(info.bytes);
            let transit = ctx.wire_cost(info.bytes + extra_wire_bytes).transit;
            extra_sender_time += self.cfg.memcpy.non_overlapped(info.bytes, transit);
            // Reactive policies (LogPressure) watch the log grow; the
            // cached flag keeps this off the hot path otherwise.
            if self.policy_reactive {
                let c = self.cluster_of(info.src);
                self.consult_policy(ctx, c, ctx.now());
            }
        }

        SendDirective {
            action: SendAction::Proceed,
            meta,
            extra_wire_bytes,
            extra_sender_time,
        }
    }

    fn on_deliver(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, msg: &Message) {
        let inter = !self.cfg.clusters.same_cluster(msg.src, msg.dst);
        let me = msg.dst.idx();
        if inter {
            // Algorithm 1 lines 11-14.
            self.states[me].phase = self.states[me].phase.max(msg.meta.phase + 1);
            self.states[me]
                .rpp
                .record(msg.src, msg.meta.date, msg.meta.phase);
            // GC §III-E: acknowledge the first delivery from each external
            // peer after a checkpoint with what that checkpoint covers.
            if self.cfg.gc && self.states[me].ack_pending.remove(&msg.src) {
                let st = &self.states[me];
                let ack = HydeeCtl::CkptAck {
                    your_maxdate: st.ckpt_maxdates.get(&msg.src).copied().unwrap_or(0),
                    my_ckpt_date: st.ckpt_date,
                };
                let bytes = ack.wire_bytes();
                ctx.send_ctl(Endpoint::Rank(msg.dst), Endpoint::Rank(msg.src), bytes, ack);
            }
        } else {
            // Algorithm 1 line 16.
            self.states[me].phase = self.states[me].phase.max(msg.meta.phase);
        }
        // Algorithm 1 line 17.
        self.states[me].date += 1;
    }

    fn on_control(
        &mut self,
        ctx: &mut Ctx<'_, HydeeCtl>,
        to: Endpoint,
        from: Endpoint,
        ctl: HydeeCtl,
    ) {
        // A message of an aborted recovery incarnation (a failure struck
        // while it was in flight and restarted the orchestration) must
        // not feed the current incarnation's bookkeeping: drop it.
        if let Some(epoch) = ctl.epoch() {
            if epoch != self.recovery_epoch {
                debug_assert!(
                    epoch < self.recovery_epoch,
                    "control message from a future recovery incarnation"
                );
                return;
            }
        }
        match (to, ctl) {
            // ---- messages to the recovery process ----
            (Endpoint::Aux(_), HydeeCtl::OwnPhase { phase, .. }) => {
                let Endpoint::Rank(r) = from else { return };
                let notices = self
                    .rp
                    .as_mut()
                    .expect("OwnPhase with no active recovery")
                    .on_own_phase(r, phase);
                self.dispatch_rp(ctx, notices);
            }
            (Endpoint::Aux(_), HydeeCtl::LogReport { phases, .. }) => {
                let Endpoint::Rank(r) = from else { return };
                let notices = self
                    .rp
                    .as_mut()
                    .expect("LogReport with no active recovery")
                    .on_log_report(r, &phases);
                self.dispatch_rp(ctx, notices);
            }
            (Endpoint::Aux(_), HydeeCtl::OrphanReport { phases, .. }) => {
                let notices = self
                    .rp
                    .as_mut()
                    .expect("OrphanReport with no active recovery")
                    .on_orphan_report(&phases);
                self.dispatch_rp(ctx, notices);
            }
            (Endpoint::Aux(_), HydeeCtl::OrphanNotification { phase, .. }) => {
                let notices = self
                    .rp
                    .as_mut()
                    .expect("OrphanNotification with no active recovery")
                    .on_orphan_notification(phase);
                self.dispatch_rp(ctx, notices);
            }

            // ---- messages to application processes ----
            (
                Endpoint::Rank(me),
                HydeeCtl::Rollback {
                    own_date,
                    maxdate_from_you,
                    ..
                },
            ) => {
                let Endpoint::Rank(k) = from else { return };
                let st = &mut self.states[me.idx()];
                st.rollback_info.insert(k, (own_date, maxdate_from_you));
                st.waiting_rollback.remove(&k);
                if st.waiting_rollback.is_empty() && st.role != RecoveryRole::None {
                    self.compile_reports(ctx, me);
                }
            }
            (
                Endpoint::Rank(me),
                HydeeCtl::LastDate {
                    maxdate_from_you, ..
                },
            ) => {
                let Endpoint::Rank(j) = from else { return };
                let st = &mut self.states[me.idx()];
                st.orphan_date.insert(j, maxdate_from_you);
                st.waiting_lastdate.remove(&j);
                self.try_open_gate(ctx, me);
            }
            (Endpoint::Rank(me), HydeeCtl::NotifySendMsg { .. }) => {
                self.states[me.idx()].notify_recv = true;
                self.try_open_gate(ctx, me);
            }
            (Endpoint::Rank(me), HydeeCtl::NotifySendLog { phase, .. }) => {
                // Replay all selected log entries with phase <= notified
                // phase, in date order (Algorithm 3, lines 22-24).
                let st = &mut self.states[me.idx()];
                let (replay, keep): (Vec<LogEntry>, Vec<LogEntry>) =
                    st.resent_logs.drain(..).partition(|e| e.phase <= phase);
                st.resent_logs = keep;
                for e in replay {
                    let m = e.to_message(me);
                    ctx.replay_app(m);
                }
            }
            (
                Endpoint::Rank(me),
                HydeeCtl::CkptAck {
                    your_maxdate,
                    my_ckpt_date,
                },
            ) => {
                let Endpoint::Rank(k) = from else { return };
                let st = &mut self.states[me.idx()];
                let (msgs, bytes) = st.log.prune(k, your_maxdate);
                st.rpp.prune(k, my_ckpt_date);
                if msgs > 0 {
                    ctx.log_reclaim(msgs, bytes);
                }
            }
            (to, ctl) => {
                unreachable!("unexpected control message {ctl:?} at {to}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, id: u64) {
        if self.policy.is_none() {
            return;
        }
        let c = id as u32;
        self.armed[c as usize] = None;
        if self.recovering
            && self
                .policy
                .as_deref()
                .is_some_and(|p| p.defer_during_recovery())
        {
            // The due checkpoint is parked until the recovery completes
            // (see `dispatch_rp`), not re-armed a blind interval out.
            self.deferred.insert(c);
            return;
        }
        self.do_checkpoint(ctx, c);
        // Consult the policy relative to when the cluster finishes
        // writing, not when the timer fired — a checkpoint that costs
        // more than the interval must not starve the application.
        let resume = self
            .cfg
            .clusters
            .members(c)
            .iter()
            .map(|&r| ctx.clock(r))
            .max()
            .unwrap_or_else(|| ctx.now());
        self.consult_policy(ctx, c, resume);
    }

    fn on_failure(&mut self, ctx: &mut Ctx<'_, HydeeCtl>, failed: &[Rank]) {
        // A failure during an ongoing recovery (a cascade) aborts that
        // recovery and restarts the orchestration over the *union* of the
        // affected clusters: the previously rolled clusters are restored
        // again (their partial re-execution is discarded — it restarts
        // from the same checkpoint and, by send determinism, reproduces
        // the same messages), a fresh recovery process is launched, and
        // every control message of the aborted incarnation still in
        // flight is invalidated by the epoch bump.
        let was_recovering = self.recovering;
        if !was_recovering {
            self.recovery_started = ctx.now();
        }
        self.recovering = true;
        self.recovery_epoch += 1;

        let mut rolled_clusters: BTreeSet<u32> =
            failed.iter().map(|&r| self.cluster_of(r)).collect();
        if was_recovering {
            rolled_clusters.extend(self.active_rolled.iter().copied());
        }
        // A rank still inside its suppression window is mid-re-execution
        // from an earlier recovery: its suppression horizons and orphan
        // accounting belong to that recovery's peer state, which this
        // failure is about to reshape. Roll its cluster back too — the
        // restart recomputes everything from checkpointed state. (A rank
        // that finished its program has necessarily re-emitted every
        // pre-failure send, so its stale `suppressing` flag is inert.)
        for i in 0..self.cfg.clusters.n_ranks() {
            let r = Rank(i as u32);
            if self.states[i].suppressing && !ctx.is_done(r) {
                rolled_clusters.insert(self.cluster_of(r));
            }
        }
        self.active_rolled = rolled_clusters.clone();

        let rolled: Vec<Rank> = rolled_clusters
            .iter()
            .flat_map(|&c| self.cfg.clusters.members(c).iter().copied())
            .collect();
        let rolled_set: BTreeSet<Rank> = rolled.iter().copied().collect();
        ctx.metrics().ranks_rolled_back += rolled.len() as u64;
        for &c in &rolled_clusters {
            if let Some(ckpt) = &self.checkpoints[c as usize] {
                // Work discarded *by this rollback*: everything computed
                // since the later of the restored cut and the cluster's
                // previous rollback (earlier spans were already counted).
                let start = ckpt.taken_at.max(self.last_rolled_at[c as usize]);
                let span = ctx.now().since(start);
                ctx.metrics().lost_work += span * self.cfg.clusters.members(c).len() as u64;
            }
            self.last_rolled_at[c as usize] = ctx.now();
        }

        // Messages in flight to any rolled-back rank address a dead
        // incarnation: drop them (their content is covered by sender logs
        // or by re-execution).
        ctx.drop_inflight_to(&rolled);

        // Log replays authorised by a *completed* earlier recovery may
        // still be parked here waiting for their (now stale-epoch)
        // NotifySendLog. Entries toward ranks rolling back now are
        // recomputed from the fresh Rollback horizons; entries toward
        // ranks that stay up have no other path — their target's state
        // still needs them, so release them now.
        for i in 0..self.cfg.clusters.n_ranks() {
            let r = Rank(i as u32);
            if rolled_set.contains(&r) || self.states[i].resent_logs.is_empty() {
                continue;
            }
            let entries = std::mem::take(&mut self.states[i].resent_logs);
            for e in entries {
                if !rolled_set.contains(&e.dst) {
                    ctx.replay_app(e.to_message(r));
                }
            }
        }

        // Launch the recovery process: every rank (rolled and survivor)
        // files each report kind exactly once.
        self.rp = Some(RecoveryProcess::new(
            self.cfg.clusters.n_ranks(),
            self.recovery_epoch,
        ));

        // Survivors: gate the next send, await rollback notifications from
        // every rolled rank.
        for i in 0..self.cfg.clusters.n_ranks() {
            let r = Rank(i as u32);
            if rolled_set.contains(&r) {
                continue;
            }
            let st = &mut self.states[i];
            st.role = RecoveryRole::Survivor;
            st.waiting_rollback = rolled_set.clone();
            st.rollback_info.clear();
            st.notify_recv = false;
            ctx.gate(r, true);
        }

        // Rolled clusters: restore from the last checkpoint. All rolled
        // ranks read their images together: one batch on the storage
        // ledger, priced by its total bytes (the exact remainder-
        // conserving sum, not `per_member × readers`) plus whatever
        // transfers it overlaps in virtual time.
        let total_restore_bytes: u64 = rolled_clusters
            .iter()
            .map(|&c| {
                self.checkpoints[c as usize]
                    .as_ref()
                    .expect("no checkpoint for rolled cluster")
                    .bytes
            })
            .sum();
        let read_batch = self
            .ledger
            .lock()
            .unwrap()
            .read_batch(ctx.now(), total_restore_bytes);
        let read = read_batch.total();
        let t_fail = ctx.now();
        // Every rolled cluster's members resume compute at the end of the
        // shared restore batch: that instant splits its recovery into the
        // rollback span (restore) and the replay span (ends when the
        // recovery process completes, see `dispatch_rp`).
        let restore_end = t_fail + self.cfg.restart_latency + read;
        for &c in &rolled_clusters {
            self.rollback_end[c as usize] = restore_end;
        }
        if ctx.recorder().is_some() {
            if let Some(rec) = ctx.recorder() {
                rec.on_storage(
                    mps_sim::StorageDir::Read,
                    t_fail,
                    read_batch.queued,
                    read_batch.service,
                    total_restore_bytes,
                );
            }
            for &c in &rolled_clusters {
                if let Some(rec) = ctx.recorder() {
                    rec.on_recovery_phase(c, mps_sim::RecoveryPhase::Detect, t_fail, t_fail);
                    rec.on_recovery_phase(c, mps_sim::RecoveryPhase::Rollback, t_fail, restore_end);
                }
            }
        }
        for &c in &rolled_clusters {
            let ckpt = self.checkpoints[c as usize]
                .as_ref()
                .expect("no checkpoint for rolled cluster");
            let members: Vec<Rank> = self.cfg.clusters.members(c).to_vec();
            let taken_inflight = ckpt.inflight.clone();
            for &r in &members {
                let snap = ckpt.snaps[&r].clone();
                let mut st = ckpt.states[&r].clone();
                st.role = RecoveryRole::Rolled;
                st.suppressing = true;
                st.notify_recv = false;
                st.waiting_lastdate = self.cfg.clusters.non_members(c).into_iter().collect();
                st.waiting_rollback = rolled_set
                    .iter()
                    .copied()
                    .filter(|&k| self.cluster_of(k) != c)
                    .collect();
                st.rollback_info.clear();
                self.states[r.idx()] = st;
                ctx.restore_rank(r, &snap, true);
                ctx.charge(r, self.cfg.restart_latency + read);
            }
            // Chandy-Lamport channel state: re-inject intra-cluster
            // messages that were in flight at the cut.
            ctx.inject_inflight(&taken_inflight);
        }

        // Restarted processes notify everyone outside their cluster
        // (Algorithm 2, lines 6-7) — carrying both date quantities (see
        // ctl.rs on date domains).
        for &r in &rolled {
            let c = self.cluster_of(r);
            for peer in self.cfg.clusters.non_members(c) {
                let ctl = HydeeCtl::Rollback {
                    epoch: self.recovery_epoch,
                    own_date: self.states[r.idx()].date,
                    maxdate_from_you: self.states[r.idx()].rpp.maxdate(peer),
                };
                let bytes = ctl.wire_bytes();
                ctx.send_ctl(Endpoint::Rank(r), Endpoint::Rank(peer), bytes, ctl);
            }
        }
        // Ranks with nothing to wait for (single-cluster failure: the
        // rolled ranks themselves) report immediately.
        for &r in &rolled {
            if self.states[r.idx()].waiting_rollback.is_empty() {
                self.compile_reports(ctx, r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::{Application, ClusterMap, Sim, SimConfig, Tag};

    fn two_cluster_app(rounds: usize) -> (Application, ClusterMap) {
        // 4 ranks, clusters {0,1} and {2,3}. Each round: 0<->1 intra,
        // 1->2 inter, 2<->3 intra, 3->0 inter.
        let mut app = Application::new(4);
        for _ in 0..rounds {
            app.rank_mut(Rank(0)).send(Rank(1), 512, Tag(0));
            app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
            app.rank_mut(Rank(1)).send(Rank(2), 2048, Tag(1));
            app.rank_mut(Rank(2)).recv(Rank(1), Tag(1));
            app.rank_mut(Rank(2)).send(Rank(3), 512, Tag(0));
            app.rank_mut(Rank(3)).recv(Rank(2), Tag(0));
            app.rank_mut(Rank(3)).send(Rank(0), 2048, Tag(1));
            app.rank_mut(Rank(0)).recv(Rank(3), Tag(1));
        }
        (app, ClusterMap::new(vec![0, 0, 1, 1]))
    }

    #[test]
    fn failure_free_run_logs_only_inter_cluster() {
        let (app, clusters) = two_cluster_app(10);
        let hydee = Hydee::new(HydeeConfig::new(clusters));
        let report = Sim::new(app, SimConfig::default(), hydee).run();
        assert!(report.completed(), "{:?}", report.status);
        // 20 inter-cluster messages of 2048 B are logged; intra are not.
        assert_eq!(report.metrics.logged_bytes_cumulative, 20 * 2048);
        assert_eq!(report.metrics.app_messages, 40);
        assert!(report.trace.is_consistent());
    }

    #[test]
    fn phases_grow_only_on_inter_cluster_paths() {
        let (app, clusters) = two_cluster_app(3);
        let hydee = Hydee::new(HydeeConfig::new(clusters));
        let mut sim = Sim::new(app, SimConfig::default(), hydee);
        let _ = &mut sim; // run consumes
        let (app2, clusters2) = two_cluster_app(3);
        let report_protocol = Sim::new(
            app2,
            SimConfig::default(),
            Hydee::new(HydeeConfig::new(clusters2)),
        )
        .run();
        assert!(report_protocol.completed());
    }

    #[test]
    fn intra_only_app_logs_nothing() {
        let mut app = Application::new(2);
        for _ in 0..5 {
            app.rank_mut(Rank(0)).send(Rank(1), 4096, Tag(0));
            app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        }
        let hydee = Hydee::new(HydeeConfig::new(ClusterMap::single(2)));
        let report = Sim::new(app, SimConfig::default(), hydee).run();
        assert!(report.completed());
        assert_eq!(report.metrics.logged_bytes_cumulative, 0);
    }

    #[test]
    fn per_rank_clusters_log_everything() {
        let mut app = Application::new(2);
        for _ in 0..5 {
            app.rank_mut(Rank(0)).send(Rank(1), 4096, Tag(0));
            app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        }
        let hydee = Hydee::new(HydeeConfig::new(ClusterMap::per_rank(2)));
        let report = Sim::new(app, SimConfig::default(), hydee).run();
        assert!(report.completed());
        assert_eq!(report.metrics.logged_bytes_cumulative, 5 * 4096);
    }

    #[test]
    fn member_shares_of_a_real_checkpoint_conserve_its_bytes() {
        let (app, clusters) = two_cluster_app(20);
        // An image size that does not divide evenly by the cluster size.
        let cfg = HydeeConfig::new(clusters)
            .with_checkpoints(SimDuration::from_us(200))
            .with_image_bytes((1 << 20) + 7);
        let mut cfg = cfg;
        cfg.first_checkpoint = SimTime::from_us(100);
        cfg.checkpoint_stagger = SimDuration::from_us(50);
        let sim = Sim::new(app, SimConfig::default(), Hydee::new(cfg));
        let (report, hydee) = sim.run_with_protocol();
        assert!(report.completed());
        assert!(report.metrics.checkpoints > 0);
        assert!(report.metrics.checkpoint_time > SimDuration::ZERO);
        for ckpt in hydee.checkpoints.iter().flatten() {
            let n = ckpt.snaps.len();
            let total: u64 = (0..n).map(|i| ckpt.member_share(i)).sum();
            assert_eq!(total, ckpt.bytes, "shares must sum to the checkpoint");
        }
    }

    #[test]
    fn periodic_policy_is_bit_for_bit_equal_to_the_interval_sugar() {
        use mps_sim::CheckpointPolicyConfig;
        let run = |cfg: HydeeConfig| {
            let (app, _) = two_cluster_app(60);
            let mut sim = Sim::new(app, SimConfig::default(), Hydee::new(cfg));
            sim.inject_failure(SimTime::from_us(400), vec![Rank(2)]);
            sim.run()
        };
        let mk_cfg = || {
            let (_, clusters) = two_cluster_app(60);
            let mut cfg = HydeeConfig::new(clusters).with_image_bytes(1 << 16);
            cfg.first_checkpoint = SimTime::from_us(100);
            cfg.checkpoint_stagger = SimDuration::from_us(30);
            cfg
        };
        let sugar = run(mk_cfg().with_checkpoints(SimDuration::from_us(150)));
        let policy = run(mk_cfg().with_policy(CheckpointPolicyConfig::Periodic {
            interval: SimDuration::from_us(150),
            first: None,
            stagger: None,
        }));
        assert!(sugar.completed() && policy.completed());
        assert_eq!(sugar.digests, policy.digests);
        assert_eq!(
            sugar.makespan, policy.makespan,
            "timing equal, not just state"
        );
        assert_eq!(sugar.metrics.events, policy.metrics.events);
        assert_eq!(sugar.metrics.checkpoints, policy.metrics.checkpoints);
    }

    #[test]
    fn young_daly_checkpoints_only_when_failures_are_expected() {
        use mps_sim::{CheckpointPolicyConfig, PoissonPerRank};
        let mk = |with_failures: bool| {
            let (app, clusters) = two_cluster_app(80);
            let mut cfg = HydeeConfig::new(clusters)
                .with_image_bytes(1 << 14)
                .with_policy(CheckpointPolicyConfig::YoungDaly {
                    first: Some(SimTime::from_us(50)),
                    stagger: Some(SimDuration::from_us(20)),
                });
            cfg.storage.latency = SimDuration::from_us(5);
            let mut sim = Sim::new(app, SimConfig::default(), Hydee::new(cfg));
            if with_failures {
                sim.set_failure_model(Box::new(
                    PoissonPerRank::new(4, SimDuration::from_ms(40), 11).with_max_failures(1),
                ));
            }
            sim.run()
        };
        let clean = mk(false);
        assert!(clean.completed());
        assert_eq!(
            clean.metrics.checkpoints, 0,
            "no expected failures => infinite Young/Daly interval"
        );
        let failing = mk(true);
        assert!(failing.completed(), "{:?}", failing.status);
        assert!(
            failing.metrics.checkpoints > 0,
            "an expected failure rate sizes a finite interval"
        );
    }

    #[test]
    fn log_pressure_checkpoints_track_inter_cluster_traffic() {
        use mps_sim::CheckpointPolicyConfig;
        let budget = 16 * 2048; // ~16 inter-cluster messages
        let run = |rounds: usize| {
            let (app, clusters) = two_cluster_app(rounds);
            let cfg = HydeeConfig::new(clusters)
                .with_image_bytes(1 << 14)
                .with_policy(CheckpointPolicyConfig::LogPressure {
                    budget_bytes: budget,
                });
            Sim::new(app, SimConfig::default(), Hydee::new(cfg)).run()
        };
        let quiet = run(4); // 8 inter-cluster msgs < budget
        assert!(quiet.completed());
        assert_eq!(quiet.metrics.checkpoints, 0, "under budget: no checkpoints");
        let chatty = run(100);
        assert!(chatty.completed());
        assert!(
            chatty.metrics.checkpoints > 0,
            "budget crossings checkpoint"
        );
        // Each checkpoint resets the growth baseline, so the count is
        // bounded by total logged bytes / budget, not exponential.
        let ckpt_events = chatty.metrics.checkpoints / 2; // 2 ranks per cluster
        assert!(
            ckpt_events <= chatty.metrics.logged_bytes_cumulative / budget + 2,
            "{} checkpoint events for {} logged bytes",
            ckpt_events,
            chatty.metrics.logged_bytes_cumulative
        );
    }

    #[test]
    fn overlapping_cluster_checkpoints_pay_contention_staggered_ones_do_not() {
        use mps_sim::CheckpointPolicyConfig;
        // Big images, slow storage: the write dominates the makespan.
        let mk = |stagger_us: u64| {
            let (app, clusters) = two_cluster_app(30);
            let mut cfg = HydeeConfig::new(clusters)
                .with_image_bytes(8 << 20)
                .with_policy(CheckpointPolicyConfig::Periodic {
                    interval: SimDuration::from_ms(500),
                    first: Some(SimTime::from_us(100)),
                    stagger: Some(SimDuration::from_us(stagger_us)),
                });
            cfg.storage.latency = SimDuration::from_us(1);
            Sim::new(app, SimConfig::default(), Hydee::new(cfg)).run()
        };
        let burst = mk(0); // both clusters write at t=100us: queueing
        let staggered = mk(50_000); // second cluster waits out the first
        assert!(burst.completed() && staggered.completed());
        assert!(
            burst.metrics.checkpoint_time > staggered.metrics.checkpoint_time,
            "burst {:?} vs staggered {:?}",
            burst.metrics.checkpoint_time,
            staggered.metrics.checkpoint_time
        );
    }

    #[test]
    fn single_cluster_failure_recovers_and_contains() {
        let (app, clusters) = two_cluster_app(50);
        let golden = {
            let (app, clusters) = two_cluster_app(50);
            Sim::new(
                app,
                SimConfig::default(),
                Hydee::new(HydeeConfig::new(clusters)),
            )
            .run()
        };
        let hydee = Hydee::new(HydeeConfig::new(clusters));
        let mut sim = Sim::new(app, SimConfig::default(), hydee);
        // Fail rank 2 mid-run: cluster {2,3} rolls back to t=0 checkpoint.
        sim.inject_failure(SimTime::from_us(300), vec![Rank(2)]);
        let report = sim.run();
        assert!(report.completed(), "{:?}", report.status);
        assert!(
            report.trace.violations.is_empty(),
            "oracle violations: {:?}",
            report.trace.violations
        );
        assert_eq!(report.digests, golden.digests, "recovered state differs");
        assert_eq!(
            report.metrics.ranks_rolled_back, 2,
            "containment: only cluster {{2,3}}"
        );
        assert_eq!(report.metrics.failures, 1);
    }

    #[test]
    fn concurrent_failures_in_both_clusters_recover() {
        let (app, clusters) = two_cluster_app(50);
        let golden = {
            let (app, clusters) = two_cluster_app(50);
            Sim::new(
                app,
                SimConfig::default(),
                Hydee::new(HydeeConfig::new(clusters)),
            )
            .run()
        };
        let hydee = Hydee::new(HydeeConfig::new(clusters));
        let mut sim = Sim::new(app, SimConfig::default(), hydee);
        sim.inject_failure(SimTime::from_us(300), vec![Rank(0), Rank(2)]);
        let report = sim.run();
        assert!(report.completed(), "{:?}", report.status);
        assert!(
            report.trace.violations.is_empty(),
            "oracle violations: {:?}",
            report.trace.violations
        );
        assert_eq!(report.digests, golden.digests);
        assert_eq!(report.metrics.ranks_rolled_back, 4);
    }
}
