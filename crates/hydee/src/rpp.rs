//! The RPP (Received Per Phase) table — Algorithm 1, lines 13–14.
//!
//! Each process keeps, per incoming inter-cluster channel, the date of the
//! last received message (`maxdate`) and the phase of *every* received
//! message keyed by its sender date. After a failure the table yields:
//!
//! * the `LastDate` answer sent to a restarted peer (its `maxdate` on that
//!   channel — the suppression horizon for the peer's re-executed sends);
//! * the set of **orphan messages**: entries whose sender date exceeds the
//!   date the sender rolled back to, together with their phases (the
//!   recovery process counts these per phase).
//!
//! Dates are *sender-domain*: the entry for channel `q -> me` is keyed by
//! `q`'s event dates (see `DESIGN.md` §3 on date domains).

use mps_sim::Rank;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// State of one incoming channel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelRpp {
    /// Sender date of the most recent message received on this channel.
    pub maxdate: u64,
    /// Phase of each received message, keyed by sender date.
    pub phases: BTreeMap<u64, u64>,
}

/// Received-Per-Phase table of one process.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rpp {
    channels: BTreeMap<Rank, ChannelRpp>,
}

impl Rpp {
    pub fn new() -> Self {
        Rpp::default()
    }

    /// Record reception of an inter-cluster message from `src` carrying
    /// sender date `date` and phase `phase`.
    ///
    /// FIFO channels deliver dates in increasing order; the debug assert
    /// catches protocol violations.
    pub fn record(&mut self, src: Rank, date: u64, phase: u64) {
        let ch = self.channels.entry(src).or_default();
        // Strictly monotone, even when GC has emptied `phases`: an empty
        // phase map says nothing about what was already received —
        // `maxdate` is the FIFO horizon and may never move backwards, or
        // a restarted sender's suppression window silently shrinks.
        debug_assert!(
            date > ch.maxdate,
            "non-monotone date {date} after maxdate {} on channel from {src}",
            ch.maxdate
        );
        ch.maxdate = ch.maxdate.max(date);
        ch.phases.insert(date, phase);
    }

    /// `maxdate` for the channel from `src` (0 when nothing received).
    pub fn maxdate(&self, src: Rank) -> u64 {
        self.channels.get(&src).map(|c| c.maxdate).unwrap_or(0)
    }

    /// Phases of messages from `src` with sender date strictly greater
    /// than `rolled_back_to` — the orphans on that channel if `src` rolls
    /// its date back to `rolled_back_to` (Algorithm 3, lines 13–14).
    pub fn orphan_phases(&self, src: Rank, rolled_back_to: u64) -> Vec<u64> {
        self.channels
            .get(&src)
            .map(|c| {
                c.phases
                    .range(rolled_back_to + 1..)
                    .map(|(_, &p)| p)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Drop entries for channel `src` with date strictly below `below`
    /// (garbage collection, §III-E). Returns the number pruned.
    pub fn prune(&mut self, src: Rank, below: u64) -> usize {
        match self.channels.get_mut(&src) {
            None => 0,
            Some(ch) => {
                let before = ch.phases.len();
                ch.phases = ch.phases.split_off(&below);
                before - ch.phases.len()
            }
        }
    }

    /// Channels with at least one recorded message.
    pub fn sources(&self) -> impl Iterator<Item = Rank> + '_ {
        self.channels.keys().copied()
    }

    /// Total entries held (for memory accounting).
    pub fn len(&self) -> usize {
        self.channels.values().map(|c| c.phases.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_maxdate() {
        let mut rpp = Rpp::new();
        rpp.record(Rank(3), 5, 1);
        rpp.record(Rank(3), 9, 2);
        assert_eq!(rpp.maxdate(Rank(3)), 9);
        assert_eq!(rpp.maxdate(Rank(4)), 0, "untouched channel is 0");
    }

    #[test]
    fn orphans_are_strictly_after_rollback_date() {
        let mut rpp = Rpp::new();
        rpp.record(Rank(1), 5, 1);
        rpp.record(Rank(1), 8, 2);
        rpp.record(Rank(1), 12, 3);
        assert_eq!(rpp.orphan_phases(Rank(1), 8), vec![3]);
        assert_eq!(rpp.orphan_phases(Rank(1), 5), vec![2, 3]);
        assert_eq!(rpp.orphan_phases(Rank(1), 12), Vec::<u64>::new());
        assert_eq!(rpp.orphan_phases(Rank(1), 0), vec![1, 2, 3]);
        assert_eq!(rpp.orphan_phases(Rank(9), 0), Vec::<u64>::new());
    }

    #[test]
    fn prune_removes_below() {
        let mut rpp = Rpp::new();
        for d in [2u64, 4, 6, 8] {
            rpp.record(Rank(0), d, d);
        }
        assert_eq!(rpp.prune(Rank(0), 6), 2);
        assert_eq!(rpp.len(), 2);
        // maxdate unaffected by pruning
        assert_eq!(rpp.maxdate(Rank(0)), 8);
        assert_eq!(rpp.prune(Rank(7), 100), 0);
    }

    #[test]
    fn maxdate_stays_monotone_after_gc_empties_the_channel() {
        // Regression: prune everything, then record a new (higher)
        // date. The old assert (`date > maxdate || phases.is_empty()`)
        // would also have admitted a STALE date here — and `maxdate`
        // must hold at its high-water mark throughout.
        let mut rpp = Rpp::new();
        rpp.record(Rank(2), 4, 1);
        rpp.record(Rank(2), 9, 2);
        assert_eq!(rpp.prune(Rank(2), 100), 2, "GC empties the channel");
        assert!(rpp.is_empty());
        assert_eq!(rpp.maxdate(Rank(2)), 9, "horizon survives GC");
        rpp.record(Rank(2), 11, 3);
        assert_eq!(rpp.maxdate(Rank(2)), 11);
        assert_eq!(rpp.orphan_phases(Rank(2), 9), vec![3]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-monotone date")]
    fn stale_date_after_gc_is_rejected() {
        let mut rpp = Rpp::new();
        rpp.record(Rank(0), 8, 1);
        rpp.prune(Rank(0), 100);
        // Empty phases no longer launder a regressed date past the
        // FIFO-monotonicity check.
        rpp.record(Rank(0), 5, 1);
    }

    #[test]
    fn clone_is_snapshot() {
        let mut rpp = Rpp::new();
        rpp.record(Rank(0), 1, 1);
        let snap = rpp.clone();
        rpp.record(Rank(0), 2, 1);
        assert_eq!(snap.len(), 1);
        assert_eq!(rpp.len(), 2);
        assert_eq!(snap.maxdate(Rank(0)), 1);
    }
}
