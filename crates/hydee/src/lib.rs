//! # hydee — failure containment without event logging
//!
//! A full implementation of **HydEE** (Guermouche, Ropars, Snir, Cappello —
//! IPDPS 2012): a hybrid rollback-recovery protocol for send-deterministic
//! message-passing applications that combines *cluster-coordinated
//! checkpointing* with *sender-based message logging* of inter-cluster
//! messages — and, uniquely, logs **no events** (no determinants, no
//! reliable event storage).
//!
//! The protocol runs on the [`mps_sim`] simulated runtime. Key pieces:
//!
//! * [`rpp::Rpp`] — the Received-Per-Phase table (orphan detection);
//! * [`log::SenderLog`] — in-memory payload log with GC;
//! * [`recovery::RecoveryProcess`] — the per-phase release engine
//!   (Algorithm 4);
//! * [`protocol::Hydee`] — the protocol itself (Algorithms 1–3 wired to
//!   the engine's hooks).
//!
//! ```
//! use hydee::{Hydee, HydeeConfig};
//! use mps_sim::prelude::*;
//!
//! // Two clusters of two ranks; one inter-cluster exchange.
//! let mut app = Application::new(4);
//! app.rank_mut(Rank(1)).send(Rank(2), 4096, Tag(0));
//! app.rank_mut(Rank(2)).recv(Rank(1), Tag(0));
//!
//! let clusters = ClusterMap::new(vec![0, 0, 1, 1]);
//! let sim = Sim::new(app, SimConfig::default(), Hydee::new(HydeeConfig::new(clusters)));
//! let report = sim.run();
//! assert!(report.completed());
//! assert_eq!(report.metrics.logged_bytes_cumulative, 4096); // inter-cluster only
//! ```

pub mod checkpoint;
pub mod config;
pub mod ctl;
pub mod log;
pub mod protocol;
pub mod recovery;
pub mod rpp;
pub mod state;

pub use config::HydeeConfig;
pub use ctl::{HydeeCtl, RECOVERY_PROCESS};
pub use log::{LogEntry, SenderLog};
pub use protocol::Hydee;
pub use recovery::RecoveryProcess;
pub use rpp::Rpp;
pub use state::{HydeeState, RecoveryRole};
