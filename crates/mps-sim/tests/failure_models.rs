//! Failure-model determinism (ISSUE 4 satellite 2): any model driven
//! twice from the same construction yields identical schedules, and a
//! simulation driven by the same model spec twice yields bit-for-bit
//! identical run digests — across model kinds × seeds × parameters.
//!
//! The proptest draws raw parameters, decodes them into each model
//! family, and checks both levels (the generator stream and the engine
//! digest), plus the monotonicity half of the §2.3 contract.

use det_sim::{SimDuration, SimTime};
use mps_sim::{
    Application, Cascade, ClusterMap, CorrelatedCluster, FailureEvent, FailureModel, FixedSchedule,
    NullProtocol, PoissonPerRank, Rank, Sim, SimConfig, Tag,
};
use proptest::prelude::*;

const N_RANKS: usize = 12;

/// One of the four model families, decoded deterministically from raw
/// draws (no `prop_oneof` in the vendored proptest stub).
fn decode_model(variant: u8, mtbf_us: u64, seed: u64, extra: u8) -> Box<dyn FailureModel> {
    let mtbf = SimDuration::from_us(1 + mtbf_us % 100_000);
    let max = 1 + (extra % 8) as u32;
    match variant % 4 {
        0 => Box::new(FixedSchedule::new(
            (0..(extra % 5) as u64)
                .map(|i| {
                    FailureEvent::at_us(
                        1 + seed.rotate_left(i as u32 * 9) % 10_000,
                        vec![Rank(((seed >> i) % N_RANKS as u64) as u32)],
                    )
                })
                .collect(),
        )),
        1 => Box::new(PoissonPerRank::new(N_RANKS, mtbf, seed).with_max_failures(max)),
        2 => Box::new(
            CorrelatedCluster::from_cluster_map(&ClusterMap::blocks(N_RANKS, 4), mtbf, seed)
                .with_max_failures(max),
        ),
        _ => Box::new(
            Cascade::new(
                Box::new(PoissonPerRank::new(N_RANKS, mtbf, seed).with_max_failures(max)),
                N_RANKS,
                SimDuration::from_us(1 + mtbf_us % 500),
                (extra % 101) as f64 / 100.0,
                seed,
            )
            .with_max_chain(2),
        ),
    }
}

/// Drive a model the way the engine does: `next_after(prev)` chained on
/// the returned times.
fn drive(model: &mut dyn FailureModel, limit: usize) -> Vec<FailureEvent> {
    let mut out = Vec::new();
    let mut prev = SimTime::ZERO;
    while out.len() < limit {
        match model.next_after(prev) {
            Some(ev) => {
                prev = ev.at;
                out.push(ev);
            }
            None => break,
        }
    }
    out
}

/// A small all-to-all-ish app long enough for some failures to land
/// mid-run. `NullProtocol` offers no recovery, so runs with failures may
/// deadlock — irrelevant here: the property under test is that two
/// identically-specified runs are *identical*, digests included.
fn ring_app(rounds: usize) -> Application {
    let n = N_RANKS as u32;
    let mut app = Application::new(N_RANKS);
    for round in 0..rounds {
        let tag = Tag((round % 3) as u32);
        for r in 0..n {
            app.rank_mut(Rank(r)).send(Rank((r + 1) % n), 2048, tag);
        }
        for r in 0..n {
            app.rank_mut(Rank(r)).recv(Rank((r + n - 1) % n), tag);
        }
    }
    app
}

proptest! {
    #[test]
    fn same_spec_same_schedule(
        variant in any::<u8>(),
        mtbf_us in any::<u64>(),
        seed in any::<u64>(),
        extra in any::<u8>(),
    ) {
        let mut a = decode_model(variant, mtbf_us, seed, extra);
        let mut b = decode_model(variant, mtbf_us, seed, extra);
        prop_assert_eq!(a.descriptor(), b.descriptor());
        let ea = drive(a.as_mut(), 64);
        let eb = drive(b.as_mut(), 64);
        prop_assert_eq!(&ea, &eb, "same construction must yield the same schedule");
        // Monotone non-decreasing times (§2.3 contract).
        for w in ea.windows(2) {
            prop_assert!(w[0].at <= w[1].at, "times must be non-decreasing: {:?}", ea);
        }
    }

    #[test]
    fn same_spec_same_run_digests(
        variant in any::<u8>(),
        mtbf_us in any::<u64>(),
        seed in any::<u64>(),
        extra in any::<u8>(),
    ) {
        let run = || {
            let mut sim = Sim::new(ring_app(20), SimConfig::default(), NullProtocol);
            sim.set_failure_model(decode_model(variant, mtbf_us, seed, extra));
            sim.run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.digests, &b.digests, "digest must be a function of the spec");
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.metrics.events, b.metrics.events);
        prop_assert_eq!(a.metrics.failures, b.metrics.failures);
        prop_assert_eq!(a.metrics.failed_ranks, b.metrics.failed_ranks);
    }
}

/// Replacing a model before the run cancels the replaced model's
/// pending event: only the last model injects.
#[test]
fn replacing_a_model_cancels_the_previous_chain() {
    let golden = {
        let mut sim = Sim::new(ring_app(30), SimConfig::default(), NullProtocol);
        sim.set_failure_model(Box::new(FixedSchedule::none()));
        sim.run()
    };
    let mut sim = Sim::new(ring_app(30), SimConfig::default(), NullProtocol);
    sim.set_failure_model(Box::new(FixedSchedule::new(vec![FailureEvent::at_us(
        50,
        vec![Rank(3)],
    )])));
    sim.set_failure_model(Box::new(FixedSchedule::none()));
    let report = sim.run();
    assert_eq!(report.metrics.failures, 0, "replaced model still injected");
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.events, golden.metrics.events);
}

/// The lazy-pull path with an empty model is byte-identical to no model.
#[test]
fn empty_model_is_a_clean_run() {
    let clean = Sim::new(ring_app(10), SimConfig::default(), NullProtocol).run();
    let mut sim = Sim::new(ring_app(10), SimConfig::default(), NullProtocol);
    sim.set_failure_model(Box::new(FixedSchedule::none()));
    let modeled = sim.run();
    assert!(clean.completed() && modeled.completed());
    assert_eq!(clean.digests, modeled.digests);
    assert_eq!(clean.metrics.events, modeled.metrics.events);
    assert_eq!(clean.makespan, modeled.makespan);
}

/// A model event in the past (relative to the engine clock) fires
/// immediately instead of being dropped or panicking.
#[test]
fn lagging_model_times_are_clamped_to_now() {
    struct Lagging {
        emitted: u32,
    }
    impl FailureModel for Lagging {
        fn next_after(&mut self, _prev: SimTime) -> Option<FailureEvent> {
            self.emitted += 1;
            match self.emitted {
                // First event mid-run...
                1 => Some(FailureEvent::at_us(100, vec![Rank(0)])),
                // ...then one claiming a time strictly before it: the
                // engine must clamp it to "now", not schedule into the
                // past (which would panic the debug-asserted scheduler).
                2 => Some(FailureEvent::at_us(50, vec![Rank(1)])),
                _ => None,
            }
        }
        fn expected_failures(&self, _horizon: SimTime) -> f64 {
            2.0
        }
        fn descriptor(&self) -> String {
            "lagging-test".into()
        }
    }
    let mut sim = Sim::new(ring_app(30), SimConfig::default(), NullProtocol);
    sim.set_failure_model(Box::new(Lagging { emitted: 0 }));
    let report = sim.run();
    assert_eq!(report.metrics.failures, 2);
    assert_eq!(report.metrics.failed_ranks, 2);
}
