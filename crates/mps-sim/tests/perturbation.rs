//! Seeded delivery-order perturbation (DESIGN.md §2.8): with
//! `SimConfig::perturb_seed` set, the tie-break key of same-timestamp
//! arrivals on *different* channels is replaced by a seeded hash,
//! deterministically permuting the order concurrent deliveries are
//! processed in. Per-channel FIFO order is untouched, so under the
//! send-deterministic fold nothing observable may move: digests,
//! makespan, delivery counts, and the containment integers must be
//! bit-for-bit invariant across every seed. A dependence on any of them
//! would mean the engine leaks scheduler interleaving into simulated
//! state — the exact bug class the content-derived keyspace exists to
//! rule out.

use det_sim::SimDuration;
use mps_sim::engine::key;
use mps_sim::prelude::*;
use mps_sim::Endpoint;
use proptest::prelude::*;

fn config(perturb_seed: Option<u64>) -> SimConfig {
    SimConfig {
        perturb_seed,
        ..SimConfig::default()
    }
}

/// Random rounds of edges; all sends precede all receives inside a round
/// per rank, which guarantees deadlock freedom.
fn arb_app(n_ranks: u8) -> impl Strategy<Value = Application> {
    let edge =
        (0..n_ranks, 0..n_ranks, 1u32..2048).prop_filter_map("no self edges", move |(a, b, s)| {
            if a == b {
                None
            } else {
                Some((a, b, s))
            }
        });
    prop::collection::vec(prop::collection::vec(edge, 1..6), 1..12).prop_map(move |rounds| {
        let mut app = Application::new(n_ranks as usize);
        for (i, round) in rounds.iter().enumerate() {
            let tag = Tag(i as u32);
            for &(src, dst, bytes) in round {
                app.rank_mut(Rank(src as u32))
                    .send(Rank(dst as u32), bytes as u64, tag);
            }
            for &(src, dst, _) in round {
                app.rank_mut(Rank(dst as u32)).recv(Rank(src as u32), tag);
            }
        }
        app
    })
}

proptest! {
    #[test]
    fn digests_are_invariant_under_delivery_order_perturbation(
        app in arb_app(6),
        seed in any::<u64>(),
    ) {
        let base = Sim::new(app.clone(), config(None), NullProtocol).run();
        let perturbed = Sim::new(app, config(Some(seed)), NullProtocol).run();
        prop_assert!(base.completed() && perturbed.completed());
        prop_assert_eq!(&base.digests, &perturbed.digests);
        prop_assert_eq!(base.makespan, perturbed.makespan);
        prop_assert_eq!(base.metrics.app_messages, perturbed.metrics.app_messages);
        prop_assert_eq!(base.metrics.deliveries, perturbed.metrics.deliveries);
        prop_assert!(perturbed.trace.is_consistent());
    }

    #[test]
    fn wildcard_fanin_digest_is_invariant_across_seeds(
        senders in 2u8..6,
        msgs_per_sender in 1u8..5,
        seeds in prop::collection::vec(any::<u64>(), 3),
    ) {
        // N senders race messages into one wildcard receiver: the match
        // order genuinely moves with the perturbation, the
        // send-deterministic digest must not.
        let build = || {
            let n = senders as usize + 1;
            let sink = Rank(senders as u32);
            let mut app = Application::new(n);
            for s in 0..senders {
                for _ in 0..msgs_per_sender {
                    app.rank_mut(Rank(s as u32)).send(sink, 128, Tag(0));
                }
            }
            for _ in 0..(senders as usize * msgs_per_sender as usize) {
                app.rank_mut(sink).recv_any(Tag(0));
            }
            app
        };
        let base = Sim::new(build(), config(None), NullProtocol).run();
        prop_assert!(base.completed());
        for seed in seeds {
            let perturbed = Sim::new(build(), config(Some(seed)), NullProtocol).run();
            prop_assert!(perturbed.completed());
            prop_assert_eq!(
                base.digests.last(),
                perturbed.digests.last(),
                "wildcard fan-in digest moved under perturb_seed={}",
                seed
            );
            prop_assert_eq!(base.makespan, perturbed.makespan);
        }
    }

    #[test]
    fn containment_integers_are_invariant_under_perturbation(
        rounds in 4usize..16,
        fail_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        // Failures land at model-chosen virtual times, independent of the
        // delivery interleaving; the failure/containment metrics and the
        // digests of whatever executed must not see the perturbation.
        // `NullProtocol` offers no recovery, so the run may well not
        // complete — the property is that both runs are *identical*.
        const N: usize = 8;
        let build = || {
            let mut app = Application::new(N);
            for round in 0..rounds {
                let tag = Tag((round % 3) as u32);
                for r in 0..N as u32 {
                    app.rank_mut(Rank(r)).send(Rank((r + 1) % N as u32), 1024, tag);
                }
                for r in 0..N as u32 {
                    app.rank_mut(Rank(r)).recv(Rank((r + N as u32 - 1) % N as u32), tag);
                }
            }
            app
        };
        let run = |perturb: Option<u64>| {
            let mut sim = Sim::new(build(), config(perturb), NullProtocol);
            sim.set_failure_model(Box::new(
                PoissonPerRank::new(N, SimDuration::from_us(5_000), fail_seed)
                    .with_max_failures(2),
            ));
            sim.run()
        };
        let base = run(None);
        let perturbed = run(Some(seed));
        prop_assert_eq!(&base.digests, &perturbed.digests);
        prop_assert_eq!(base.metrics.failures, perturbed.metrics.failures);
        prop_assert_eq!(base.metrics.failed_ranks, perturbed.metrics.failed_ranks);
        prop_assert_eq!(base.metrics.ranks_rolled_back, perturbed.metrics.ranks_rolled_back);
        prop_assert_eq!(base.completed(), perturbed.completed());
    }
}

/// The lever must actually move something: for some seed, two distinct
/// channels sort in the opposite order from the unperturbed keyspace —
/// while the class bits survive the hash, so app arrivals still precede
/// same-instant control arrivals under every seed.
#[test]
fn perturbation_reorders_channels_but_preserves_classes() {
    let ch_a = (Endpoint::Rank(Rank(0)), Endpoint::Rank(Rank(1)));
    let ch_b = (Endpoint::Rank(Rank(2)), Endpoint::Rank(Rank(3)));
    let base =
        key::arrival(false, ch_a.0, ch_a.1, None) < key::arrival(false, ch_b.0, ch_b.1, None);
    let flipped = (0..64u64).any(|s| {
        (key::arrival(false, ch_a.0, ch_a.1, Some(s))
            < key::arrival(false, ch_b.0, ch_b.1, Some(s)))
            != base
    });
    assert!(flipped, "no seed in 0..64 reordered the two channels");
    for s in 0..16u64 {
        let app = key::arrival(false, ch_a.0, ch_a.1, Some(s));
        let ctl = key::arrival(true, ch_a.0, ch_a.1, Some(s));
        assert_eq!(key::class(app), key::CLASS_APP);
        assert_eq!(key::class(ctl), key::CLASS_CTL);
        assert!(app < ctl, "perturbed app arrival must sort before control");
    }
}
