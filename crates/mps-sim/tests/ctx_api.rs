//! Direct tests of the engine's protocol-facing context API: send gates,
//! control-message FIFO with application traffic, charging, snapshot
//! capture/restore, and in-flight channel-state operations.

use det_sim::{SimDuration, SimTime};
use mps_sim::{
    Application, Ctx, Endpoint, Message, Protocol, Rank, RankSnapshot, RunStatus, Sim, SimConfig,
    Tag,
};

/// A scriptable protocol driven by timers, used to poke the Ctx API.
#[derive(Default)]
struct Probe {
    /// Action log (inspected via `run_with_protocol` when needed).
    events: Vec<String>,
    gate_rank: Option<Rank>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ProbeCtl {
    Note(&'static str),
}

impl Protocol for Probe {
    type Ctl = ProbeCtl;

    fn name(&self) -> &'static str {
        "probe"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, ProbeCtl>) {
        ctx.set_timer(SimTime::from_us(10), 1);
        ctx.set_timer(SimTime::from_us(500), 2);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProbeCtl>, id: u64) {
        match id {
            1 => {
                if let Some(r) = self.gate_rank {
                    ctx.gate(r, true);
                    self.events.push(format!("gated {r} at {}", ctx.now()));
                }
            }
            2 => {
                if let Some(r) = self.gate_rank {
                    ctx.gate(r, false);
                    self.events.push(format!("ungated {r} at {}", ctx.now()));
                }
            }
            _ => {}
        }
    }

    fn on_control(
        &mut self,
        _ctx: &mut Ctx<'_, ProbeCtl>,
        to: Endpoint,
        from: Endpoint,
        ctl: ProbeCtl,
    ) {
        self.events.push(format!("ctl {ctl:?} {from}->{to}"));
    }
}

#[test]
fn gate_blocks_and_release_resumes() {
    // P0 computes past the gate point, then tries to send; the gate at
    // 10us blocks it until 500us.
    let mut app = Application::new(2);
    app.rank_mut(Rank(0))
        .compute(SimDuration::from_us(50))
        .send(Rank(1), 64, Tag(0));
    app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
    let probe = Probe {
        gate_rank: Some(Rank(0)),
        ..Default::default()
    };
    let sim = Sim::new(app, SimConfig::default(), probe);
    let (report, _probe) = sim.run_with_protocol();
    assert!(report.completed(), "{:?}", report.status);
    // The send could not complete before the 500us ungate.
    assert!(
        report.makespan >= SimTime::from_us(500),
        "gate was not enforced: makespan {}",
        report.makespan
    );
}

#[test]
fn gate_on_idle_rank_is_harmless() {
    let mut app = Application::new(2);
    app.rank_mut(Rank(0)).compute(SimDuration::from_ms(1));
    app.rank_mut(Rank(1)).compute(SimDuration::from_ms(1));
    let probe = Probe {
        gate_rank: Some(Rank(1)),
        ..Default::default()
    };
    let report = Sim::new(app, SimConfig::default(), probe).run();
    assert!(report.completed());
}

/// Protocol that sends a control message on the same channel shortly
/// after an application message was put on the wire, to verify shared
/// FIFO ordering (a fast control message must not overtake a slow app
/// message already in the channel — HydEE's LastDate correctness rests on
/// exactly this).
struct FifoProbe {
    log: std::sync::Arc<std::sync::Mutex<Vec<&'static str>>>,
}

impl Protocol for FifoProbe {
    type Ctl = ProbeCtl;

    fn name(&self) -> &'static str {
        "fifo-probe"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, ProbeCtl>) {
        // The 1 MiB app message goes out at t~0 and takes ~850us of
        // transit; this timer fires long before it lands.
        ctx.set_timer(SimTime::from_us(5), 1);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProbeCtl>, _id: u64) {
        ctx.send_ctl(
            Endpoint::Rank(Rank(0)),
            Endpoint::Rank(Rank(1)),
            16,
            ProbeCtl::Note("after-app"),
        );
    }

    fn on_deliver(&mut self, _ctx: &mut Ctx<'_, ProbeCtl>, _msg: &Message) {
        self.log.lock().unwrap().push("app");
    }

    fn on_control(
        &mut self,
        _ctx: &mut Ctx<'_, ProbeCtl>,
        _to: Endpoint,
        _from: Endpoint,
        _ctl: ProbeCtl,
    ) {
        self.log.lock().unwrap().push("ctl");
    }
}

#[test]
fn control_messages_share_channel_fifo_with_app_messages() {
    let mut app = Application::new(2);
    app.rank_mut(Rank(0)).send(Rank(1), 1 << 20, Tag(0));
    // Keep the receiver alive past the control message's arrival (the
    // run ends as soon as all programs finish).
    app.rank_mut(Rank(1))
        .recv(Rank(0), Tag(0))
        .compute(SimDuration::from_ms(2));
    let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let probe = FifoProbe { log: log.clone() };
    let report = Sim::new(app, SimConfig::default(), probe).run();
    assert!(report.completed());
    // Although the control message's raw transit (~3us) would land it at
    // ~8us, the 1 MiB app message already occupies the channel until
    // ~850us: FIFO delivers app first.
    assert_eq!(*log.lock().unwrap(), vec!["app", "ctl"]);
}

/// Protocol that snapshots rank 0 early and restores it later.
struct RewindProbe {
    snap: Option<RankSnapshot>,
}

impl Protocol for RewindProbe {
    type Ctl = ProbeCtl;

    fn name(&self) -> &'static str {
        "rewind"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, ProbeCtl>) {
        ctx.set_timer(SimTime::from_ps(1), 1); // capture almost at start
        ctx.set_timer(SimTime::from_us(100), 2); // restore later
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProbeCtl>, id: u64) {
        match id {
            1 => self.snap = Some(ctx.capture_rank(Rank(0))),
            2 => {
                let snap = self.snap.take().expect("captured");
                ctx.restore_rank(Rank(0), &snap, false);
                ctx.charge(Rank(0), SimDuration::from_us(5));
            }
            _ => {}
        }
    }
}

#[test]
fn capture_restore_replays_the_program() {
    // P0 sends 10 messages; a restore at 100us rewinds it to (almost) the
    // start, so it re-sends everything. P1 must receive 10 originals; the
    // re-sends are verified identical by the oracle and the duplicates are
    // consumed by extra receives... instead we simply count messages.
    let mut app = Application::new(2);
    for i in 0..10u32 {
        app.rank_mut(Rank(0))
            .compute(SimDuration::from_us(15))
            .send(Rank(1), 256, Tag(i));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(i));
    }
    let sim = Sim::new(app, SimConfig::default(), RewindProbe { snap: None });
    let (report, _) = sim.run_with_protocol();
    // The rewind re-emits early sends; each re-emission must match its
    // original (send-determinism oracle).
    assert!(
        report.trace.is_consistent(),
        "{:?}",
        report.trace.violations
    );
    // The run may leave duplicates in P1's inbox (RewindProbe is not a
    // full protocol: it restores the sender without restoring the
    // receiver). What matters here: re-execution happened and matched.
    assert!(report.metrics.app_messages > 10);
    assert!(report.trace.consistent_reemissions > 0);
}

/// Failure with no protocol reaction deadlocks; with drop+restore wiring
/// in a minimal protocol, the run completes — exercising drop_inflight_to
/// and inject_inflight directly.
struct MiniRecover {
    snaps: Vec<RankSnapshot>,
    inflight: Vec<mps_sim::InFlightMsg>,
}

impl Protocol for MiniRecover {
    type Ctl = ProbeCtl;

    fn name(&self) -> &'static str {
        "mini-recover"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, ProbeCtl>) {
        // Initial global checkpoint including channel state.
        let ranks: Vec<Rank> = (0..ctx.n_ranks() as u32).map(Rank).collect();
        self.inflight = ctx.capture_inflight_within(&ranks);
        self.snaps = ranks.iter().map(|&r| ctx.capture_rank(r)).collect();
    }

    fn on_failure(&mut self, ctx: &mut Ctx<'_, ProbeCtl>, _failed: &[Rank]) {
        let ranks: Vec<Rank> = (0..ctx.n_ranks() as u32).map(Rank).collect();
        ctx.drop_inflight_to(&ranks);
        for (i, snap) in self.snaps.iter().enumerate() {
            ctx.restore_rank(Rank(i as u32), snap, false);
        }
        ctx.inject_inflight(&self.inflight.clone());
    }
}

#[test]
fn minimal_global_restart_protocol_recovers() {
    let mut app = Application::new(3);
    for round in 0..30 {
        let tag = Tag(round % 2);
        for r in 0..3u32 {
            app.rank_mut(Rank(r)).send(Rank((r + 1) % 3), 512, tag);
        }
        for r in 0..3u32 {
            app.rank_mut(Rank(r)).recv(Rank((r + 2) % 3), tag);
        }
    }
    // Without recovery: deadlock.
    let mut dead = Sim::new(app.clone(), SimConfig::default(), mps_sim::NullProtocol);
    dead.inject_failure(SimTime::from_us(50), vec![Rank(1)]);
    let dead_report = dead.run();
    assert!(matches!(dead_report.status, RunStatus::Deadlock(_)));
    // With the minimal restart protocol: completes consistently.
    let mut sim = Sim::new(
        app,
        SimConfig::default(),
        MiniRecover {
            snaps: Vec::new(),
            inflight: Vec::new(),
        },
    );
    sim.inject_failure(SimTime::from_us(50), vec![Rank(1)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    assert!(report.trace.is_consistent());
    assert!(report.inbox_leftover.iter().all(|&l| l == 0));
}

#[test]
fn charge_delays_execution() {
    struct Charger;
    impl Protocol for Charger {
        type Ctl = ();
        fn name(&self) -> &'static str {
            "charger"
        }
        fn init(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.charge(Rank(0), SimDuration::from_ms(7));
        }
    }
    let mut app = Application::new(1);
    app.rank_mut(Rank(0)).compute(SimDuration::from_us(1));
    let report = Sim::new(app, SimConfig::default(), Charger).run();
    assert!(report.completed());
    assert!(report.makespan >= SimTime::from_ms(7));
}
