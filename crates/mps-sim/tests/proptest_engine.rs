//! Property tests for the simulated runtime: random balanced applications
//! always complete, deterministically, with order-independent state
//! digests for send-deterministic folds.

use det_sim::SimDuration;
use mps_sim::prelude::*;
use proptest::prelude::*;

/// Random rounds of edges; all sends precede all receives inside a round
/// per rank, which guarantees deadlock freedom.
fn arb_app(n_ranks: u8) -> impl Strategy<Value = Application> {
    let edge =
        (0..n_ranks, 0..n_ranks, 1u32..2048).prop_filter_map("no self edges", move |(a, b, s)| {
            if a == b {
                None
            } else {
                Some((a, b, s))
            }
        });
    prop::collection::vec(prop::collection::vec(edge, 1..6), 1..12).prop_map(move |rounds| {
        let mut app = Application::new(n_ranks as usize);
        for (i, round) in rounds.iter().enumerate() {
            let tag = Tag(i as u32);
            for &(src, dst, bytes) in round {
                app.rank_mut(Rank(src as u32))
                    .send(Rank(dst as u32), bytes as u64, tag);
            }
            for &(src, dst, _) in round {
                app.rank_mut(Rank(dst as u32)).recv(Rank(src as u32), tag);
            }
        }
        app
    })
}

proptest! {
    #[test]
    fn random_apps_complete(app in arb_app(6)) {
        prop_assert!(app.check_balance().is_ok());
        let msgs = app.total_messages();
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        prop_assert!(report.completed(), "{:?}", report.status);
        prop_assert_eq!(report.metrics.app_messages, msgs);
        prop_assert_eq!(report.metrics.deliveries, msgs);
        prop_assert!(report.trace.is_consistent());
    }

    #[test]
    fn random_apps_are_deterministic(app in arb_app(5)) {
        let a = Sim::new(app.clone(), SimConfig::default(), NullProtocol).run();
        let b = Sim::new(app, SimConfig::default(), NullProtocol).run();
        prop_assert_eq!(a.digests, b.digests);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.metrics.events, b.metrics.events);
    }

    #[test]
    fn wildcard_fanin_digest_is_timing_independent(
        senders in 2u8..6,
        msgs_per_sender in 1u8..5,
        stagger_us in prop::collection::vec(0u64..500, 5),
    ) {
        // N senders race different numbers of messages into one wildcard
        // receiver; arbitrary compute staggers permute arrival order. The
        // send-deterministic digest must not care.
        let build = |staggers: &[u64]| {
            let n = senders as usize + 1;
            let sink = Rank(senders as u32);
            let mut app = Application::new(n);
            for s in 0..senders {
                let stagger = staggers.get(s as usize).copied().unwrap_or(0);
                app.rank_mut(Rank(s as u32))
                    .compute(SimDuration::from_us(stagger));
                for _ in 0..msgs_per_sender {
                    app.rank_mut(Rank(s as u32)).send(sink, 128, Tag(0));
                }
            }
            for _ in 0..(senders as usize * msgs_per_sender as usize) {
                app.rank_mut(sink).recv_any(Tag(0));
            }
            app
        };
        let base = Sim::new(build(&[0, 0, 0, 0, 0]), SimConfig::default(), NullProtocol).run();
        let perturbed = Sim::new(build(&stagger_us), SimConfig::default(), NullProtocol).run();
        prop_assert!(base.completed() && perturbed.completed());
        prop_assert_eq!(
            base.digests.last(),
            perturbed.digests.last(),
            "wildcard fan-in digest must be arrival-order independent"
        );
    }

    #[test]
    fn makespan_bounded_below_by_critical_path(
        hops in 1u8..10,
        bytes in 1u64..100_000,
    ) {
        // A linear relay of `hops` messages cannot beat hops * one-way
        // latency of the network model.
        let n = hops as usize + 1;
        let mut app = Application::new(n);
        for h in 0..hops {
            app.rank_mut(Rank(h as u32)).send(Rank(h as u32 + 1), bytes, Tag(0));
            app.rank_mut(Rank(h as u32 + 1)).recv(Rank(h as u32), Tag(0));
        }
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        prop_assert!(report.completed());
        let mx = net_model::MxModel::default();
        use net_model::NetworkModel;
        let min = mx.cost(bytes).one_way() * hops as u64;
        prop_assert!(
            report.makespan.since(det_sim::SimTime::ZERO) >= min,
            "makespan {} below physical minimum {}",
            report.makespan,
            min
        );
    }
}
