//! Process clustering — the partition of ranks that hybrid protocols apply
//! their two-level scheme to (coordinated checkpointing inside a cluster,
//! message logging between clusters).
//!
//! The map itself lives here (rather than in the `hydee` crate) because the
//! baseline protocols and the `clustering` partitioner crate all consume
//! it.

use crate::types::Rank;
use serde::{Deserialize, Serialize};

/// A partition of ranks into clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterMap {
    /// `assignment[r]` = cluster id of rank `r`.
    assignment: Vec<u32>,
    /// Members per cluster, ranks ascending.
    members: Vec<Vec<Rank>>,
}

impl ClusterMap {
    /// Build from a per-rank assignment. Cluster ids must be dense
    /// (`0..n_clusters`).
    ///
    /// # Panics
    /// Panics if ids are not dense or a cluster is empty.
    pub fn new(assignment: Vec<u32>) -> Self {
        let n_clusters = assignment
            .iter()
            .copied()
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        let mut members = vec![Vec::new(); n_clusters];
        for (r, &c) in assignment.iter().enumerate() {
            members[c as usize].push(Rank(r as u32));
        }
        for (c, m) in members.iter().enumerate() {
            assert!(!m.is_empty(), "cluster {c} has no members");
        }
        ClusterMap {
            assignment,
            members,
        }
    }

    /// Every rank in one cluster (pure coordinated checkpointing).
    pub fn single(n_ranks: usize) -> Self {
        ClusterMap::new(vec![0; n_ranks])
    }

    /// Every rank its own cluster (pure message logging).
    pub fn per_rank(n_ranks: usize) -> Self {
        ClusterMap::new((0..n_ranks as u32).collect())
    }

    /// `k` equal contiguous blocks of ranks (ranks `0..n/k` in cluster 0,
    /// etc.; remainders spread over the first clusters).
    pub fn blocks(n_ranks: usize, k: usize) -> Self {
        assert!(k >= 1 && k <= n_ranks, "need 1 <= k <= n_ranks");
        let base = n_ranks / k;
        let extra = n_ranks % k;
        let mut assignment = Vec::with_capacity(n_ranks);
        for c in 0..k {
            let size = base + usize::from(c < extra);
            assignment.extend(std::iter::repeat_n(c as u32, size));
        }
        ClusterMap::new(assignment)
    }

    pub fn n_ranks(&self) -> usize {
        self.assignment.len()
    }

    pub fn n_clusters(&self) -> usize {
        self.members.len()
    }

    #[inline]
    pub fn cluster_of(&self, r: Rank) -> u32 {
        self.assignment[r.idx()]
    }

    #[inline]
    pub fn same_cluster(&self, a: Rank, b: Rank) -> bool {
        self.assignment[a.idx()] == self.assignment[b.idx()]
    }

    /// Members of cluster `c`, ranks ascending.
    pub fn members(&self, c: u32) -> &[Rank] {
        &self.members[c as usize]
    }

    /// All ranks NOT in cluster `c`, ascending.
    pub fn non_members(&self, c: u32) -> Vec<Rank> {
        (0..self.n_ranks() as u32)
            .map(Rank)
            .filter(|&r| self.cluster_of(r) != c)
            .collect()
    }

    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Expected fraction of processes rolled back by a single failure
    /// uniformly distributed over ranks: `sum_c (|c|/n)^2` (the paper's
    /// "Avg Ratio of Process to Roll Back (Single Failure Case)").
    pub fn avg_rollback_fraction(&self) -> f64 {
        let n = self.n_ranks() as f64;
        self.members
            .iter()
            .map(|m| {
                let s = m.len() as f64;
                (s / n) * (s / n)
            })
            .sum()
    }

    /// Size of the largest cluster.
    pub fn max_cluster_size(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_partition_evenly() {
        let m = ClusterMap::blocks(256, 16);
        assert_eq!(m.n_clusters(), 16);
        assert!(m.members.iter().all(|c| c.len() == 16));
        assert_eq!(m.cluster_of(Rank(0)), 0);
        assert_eq!(m.cluster_of(Rank(255)), 15);
    }

    #[test]
    fn blocks_with_remainder() {
        let m = ClusterMap::blocks(10, 3);
        let sizes: Vec<usize> = m.members.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(m.n_ranks(), 10);
    }

    #[test]
    fn rollback_fraction_matches_paper_cg() {
        // NAS CG in Table I: 16 equal clusters on 256 ranks => 6.25%.
        let m = ClusterMap::blocks(256, 16);
        assert!((m.avg_rollback_fraction() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn rollback_fraction_unequal_clusters_exceeds_equal() {
        // Unequal clusters roll back more in expectation (convexity) —
        // the reason BT's 5 clusters give 21.78% rather than 20%.
        let equal = ClusterMap::blocks(100, 5);
        let unequal = ClusterMap::new(
            (0..100u32)
                .map(|r| if r < 60 { 0 } else { 1 + (r - 60) % 4 })
                .collect(),
        );
        assert!(unequal.avg_rollback_fraction() > equal.avg_rollback_fraction());
    }

    #[test]
    fn single_and_per_rank_extremes() {
        let s = ClusterMap::single(8);
        assert_eq!(s.n_clusters(), 1);
        assert_eq!(s.avg_rollback_fraction(), 1.0);
        let p = ClusterMap::per_rank(8);
        assert_eq!(p.n_clusters(), 8);
        assert!((p.avg_rollback_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn membership_queries() {
        let m = ClusterMap::new(vec![0, 1, 0, 1, 2]);
        assert!(m.same_cluster(Rank(0), Rank(2)));
        assert!(!m.same_cluster(Rank(0), Rank(1)));
        assert_eq!(m.members(1), &[Rank(1), Rank(3)]);
        assert_eq!(m.non_members(0), vec![Rank(1), Rank(3), Rank(4)]);
    }

    #[test]
    #[should_panic(expected = "no members")]
    fn sparse_ids_rejected() {
        let _ = ClusterMap::new(vec![0, 2]);
    }
}
