//! Per-rank receive buffers with deterministic matching.
//!
//! Arrived-but-undelivered messages wait here. Matching rules:
//!
//! * a specific receive `(src, tag)` takes the *oldest* pending message
//!   from that source with that tag (per-channel FIFO);
//! * a wildcard receive `(tag)` takes the pending message with that tag
//!   that arrived *earliest* (global arrival order), which is where
//!   timing-dependent nondeterminism enters the simulation.
//!
//! The inbox is part of the rank's checkpointable state: cluster-coordinated
//! checkpoints capture it, and rollback restores it.

use crate::types::{Message, Rank, Tag};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A message sitting in the inbox, with its arrival metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrived {
    pub msg: Message,
    /// Arrival order stamp (engine-global, monotone). Lower = earlier.
    pub arrival_seq: u64,
    /// Receiver CPU time to charge on delivery (matching, copy-out).
    pub recv_cost: det_sim::SimDuration,
}

/// Receive buffer for one rank.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inbox {
    /// Pending messages per (src, tag), FIFO by arrival.
    by_channel: BTreeMap<(Rank, Tag), Vec<Arrived>>,
}

impl Inbox {
    pub fn new() -> Self {
        Inbox::default()
    }

    pub fn push(&mut self, msg: Message, arrival_seq: u64, recv_cost: det_sim::SimDuration) {
        self.by_channel
            .entry((msg.src, msg.tag))
            .or_default()
            .push(Arrived {
                msg,
                arrival_seq,
                recv_cost,
            });
    }

    /// Total number of pending messages.
    pub fn len(&self) -> usize {
        self.by_channel.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.by_channel.values().all(Vec::is_empty)
    }

    /// Match a specific receive: oldest pending from `(src, tag)`.
    pub fn take_specific(&mut self, src: Rank, tag: Tag) -> Option<Arrived> {
        let q = self.by_channel.get_mut(&(src, tag))?;
        if q.is_empty() {
            return None;
        }
        // Per-channel arrivals are pushed in arrival order, so the front is
        // the oldest.
        Some(q.remove(0))
    }

    /// Match a wildcard receive: earliest-arrived pending with `tag`,
    /// breaking exact ties by source rank (deterministic).
    pub fn take_any(&mut self, tag: Tag) -> Option<Arrived> {
        let best_key = self
            .by_channel
            .iter()
            .filter(|((_, t), q)| *t == tag && !q.is_empty())
            .min_by_key(|((src, _), q)| (q[0].arrival_seq, src.0))
            .map(|(&key, _)| key)?;
        Some(self.by_channel.get_mut(&best_key).unwrap().remove(0))
    }

    /// Does a matching message exist for a specific receive?
    pub fn has_specific(&self, src: Rank, tag: Tag) -> bool {
        self.by_channel
            .get(&(src, tag))
            .is_some_and(|q| !q.is_empty())
    }

    /// Does a matching message exist for a wildcard receive?
    pub fn has_any(&self, tag: Tag) -> bool {
        self.by_channel
            .iter()
            .any(|((_, t), q)| *t == tag && !q.is_empty())
    }

    /// Iterate pending messages (arbitrary but deterministic order).
    pub fn iter(&self) -> impl Iterator<Item = &Arrived> {
        self.by_channel.values().flatten()
    }

    /// Keep only pending messages satisfying `pred` (used when
    /// checkpointing: inter-cluster channel state is excluded because
    /// sender-based logs own it).
    pub fn retain(&mut self, mut pred: impl FnMut(&Message) -> bool) {
        for q in self.by_channel.values_mut() {
            q.retain(|a| pred(&a.msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PbMeta;

    trait Push2 {
        fn push2(&mut self, msg: Message, seq: u64);
    }
    impl Push2 for Inbox {
        fn push2(&mut self, msg: Message, seq: u64) {
            self.push(msg, seq, det_sim::SimDuration::ZERO);
        }
    }

    fn msg(src: u32, tag: u32, seq: u64) -> Message {
        Message {
            src: Rank(src),
            dst: Rank(99),
            tag: Tag(tag),
            bytes: 8,
            payload: seq,
            channel_seq: seq,
            meta: PbMeta::default(),
            replayed: false,
        }
    }

    #[test]
    fn specific_is_fifo_per_channel() {
        let mut ib = Inbox::new();
        ib.push2(msg(1, 0, 1), 10);
        ib.push2(msg(1, 0, 2), 20);
        assert_eq!(
            ib.take_specific(Rank(1), Tag(0)).unwrap().msg.channel_seq,
            1
        );
        assert_eq!(
            ib.take_specific(Rank(1), Tag(0)).unwrap().msg.channel_seq,
            2
        );
        assert!(ib.take_specific(Rank(1), Tag(0)).is_none());
    }

    #[test]
    fn specific_respects_tag() {
        let mut ib = Inbox::new();
        ib.push2(msg(1, 7, 1), 10);
        assert!(ib.take_specific(Rank(1), Tag(0)).is_none());
        assert!(ib.has_specific(Rank(1), Tag(7)));
    }

    #[test]
    fn wildcard_takes_earliest_arrival() {
        let mut ib = Inbox::new();
        ib.push2(msg(5, 0, 1), 30);
        ib.push2(msg(2, 0, 1), 20);
        ib.push2(msg(9, 0, 1), 10);
        assert_eq!(ib.take_any(Tag(0)).unwrap().msg.src, Rank(9));
        assert_eq!(ib.take_any(Tag(0)).unwrap().msg.src, Rank(2));
        assert_eq!(ib.take_any(Tag(0)).unwrap().msg.src, Rank(5));
        assert!(ib.take_any(Tag(0)).is_none());
    }

    #[test]
    fn wildcard_tie_breaks_by_source() {
        let mut ib = Inbox::new();
        ib.push2(msg(5, 0, 1), 10);
        ib.push2(msg(2, 0, 1), 10);
        assert_eq!(ib.take_any(Tag(0)).unwrap().msg.src, Rank(2));
    }

    #[test]
    fn wildcard_filters_tag() {
        let mut ib = Inbox::new();
        ib.push2(msg(1, 3, 1), 10);
        ib.push2(msg(1, 4, 1), 20);
        assert_eq!(ib.take_any(Tag(4)).unwrap().msg.tag, Tag(4));
        assert!(ib.has_any(Tag(3)));
        assert!(!ib.has_any(Tag(4)));
    }

    #[test]
    fn len_and_clone_roundtrip() {
        let mut ib = Inbox::new();
        assert!(ib.is_empty());
        ib.push2(msg(1, 0, 1), 1);
        ib.push2(msg(2, 0, 1), 2);
        assert_eq!(ib.len(), 2);
        let snapshot = ib.clone();
        ib.take_any(Tag(0));
        assert_eq!(ib.len(), 1);
        assert_eq!(snapshot.len(), 2, "snapshot must be unaffected");
    }
}
