//! Per-rank receive buffers with deterministic matching.
//!
//! Arrived-but-undelivered messages wait here. Matching rules:
//!
//! * a specific receive `(src, tag)` takes the *oldest* pending message
//!   from that source with that tag (per-channel FIFO);
//! * a wildcard receive `(tag)` takes the pending message with that tag
//!   that arrived *earliest* (global arrival order), which is where
//!   timing-dependent nondeterminism enters the simulation.
//!
//! ## Layout (DESIGN.md §2.1)
//!
//! One `Ring` buffer per `(tag, src)` channel: a specific receive is a
//! map lookup plus an O(1) `pop_front`, and a wildcard receive scans only
//! the channels *of its tag* (the map is keyed tag-major) instead of every
//! channel of the rank. The ring recycles its backing storage in place —
//! the previous implementation `Vec::remove(0)`-ed the head, memmoving the
//! whole queue on every delivery.
//!
//! The inbox is part of the rank's checkpointable state: cluster-coordinated
//! checkpoints capture it, and rollback restores it.

use crate::types::{Message, Rank, Tag};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A message sitting in the inbox, with its arrival metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrived {
    pub msg: Message,
    /// Arrival order stamp (engine-global, monotone). Lower = earlier.
    pub arrival_seq: u64,
    /// Receiver CPU time to charge on delivery (matching, copy-out).
    pub recv_cost: det_sim::SimDuration,
}

/// FIFO queue over a recycled `Vec`: `push` appends, `pop_front` advances a
/// head cursor, and the dead prefix is reclaimed in amortised O(1) —
/// either wholesale when the ring drains or by compaction once the dead
/// prefix dominates.
#[derive(Debug, Clone, Default)]
struct Ring {
    buf: Vec<Arrived>,
    head: usize,
}

impl Ring {
    #[inline]
    fn live(&self) -> &[Arrived] {
        &self.buf[self.head..]
    }

    #[inline]
    fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    #[inline]
    fn push(&mut self, a: Arrived) {
        self.buf.push(a);
    }

    #[inline]
    fn front(&self) -> Option<&Arrived> {
        self.buf.get(self.head)
    }

    fn pop_front(&mut self) -> Option<Arrived> {
        let a = *self.buf.get(self.head)?;
        self.head += 1;
        if self.head == self.buf.len() {
            // Drained: reuse the allocation from the start.
            self.buf.clear();
            self.head = 0;
        } else if self.head >= 32 && self.head * 2 >= self.buf.len() {
            // Dead prefix dominates: slide the live tail down.
            self.buf.copy_within(self.head.., 0);
            self.buf.truncate(self.buf.len() - self.head);
            self.head = 0;
        }
        Some(a)
    }

    fn retain(&mut self, mut pred: impl FnMut(&Arrived) -> bool) {
        if self.head > 0 {
            self.buf.copy_within(self.head.., 0);
            let live = self.buf.len() - self.head;
            self.buf.truncate(live);
            self.head = 0;
        }
        self.buf.retain(|a| pred(a));
    }
}

/// Rings compare (and serialize) by live content only — the recycled dead
/// prefix is an implementation detail that must not distinguish snapshots.
impl PartialEq for Ring {
    fn eq(&self, other: &Self) -> bool {
        self.live() == other.live()
    }
}
impl Eq for Ring {}

impl Serialize for Ring {
    fn serialize_json(&self, out: &mut String) {
        self.live().to_vec().serialize_json(out);
    }
}
impl Deserialize for Ring {}

/// Receive buffer for one rank.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inbox {
    /// Pending messages per channel, FIFO by arrival. Keyed tag-major so a
    /// wildcard receive ranges over exactly the channels of its tag.
    by_channel: BTreeMap<(Tag, Rank), Ring>,
    /// Total pending messages (kept incrementally; `len()` must be O(1) —
    /// the engine reports it per rank at the end of every run).
    pending: usize,
}

impl Inbox {
    pub fn new() -> Self {
        Inbox::default()
    }

    pub fn push(&mut self, msg: Message, arrival_seq: u64, recv_cost: det_sim::SimDuration) {
        self.by_channel
            .entry((msg.tag, msg.src))
            .or_default()
            .push(Arrived {
                msg,
                arrival_seq,
                recv_cost,
            });
        self.pending += 1;
    }

    /// Total number of pending messages.
    pub fn len(&self) -> usize {
        self.pending
    }

    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Match a specific receive: oldest pending from `(src, tag)`.
    pub fn take_specific(&mut self, src: Rank, tag: Tag) -> Option<Arrived> {
        let ring = self.by_channel.get_mut(&(tag, src))?;
        let taken = ring.pop_front();
        if taken.is_some() {
            self.pending -= 1;
            if ring.len() == 0 {
                // Workloads tag each communication epoch (DESIGN.md §3), so
                // drained channels are dead weight: reclaim them or the map
                // grows with every epoch of the run.
                self.by_channel.remove(&(tag, src));
            }
        }
        taken
    }

    /// Match a wildcard receive: earliest-arrived pending with `tag`,
    /// breaking exact ties by source rank (deterministic).
    pub fn take_any(&mut self, tag: Tag) -> Option<Arrived> {
        let best_key = self
            .channels_of(tag)
            .filter_map(|(&key, ring)| ring.front().map(|a| (a.arrival_seq, key)))
            .min()
            .map(|(_, key)| key)?;
        self.pending -= 1;
        let ring = self.by_channel.get_mut(&best_key).unwrap();
        let taken = ring.pop_front();
        if ring.len() == 0 {
            self.by_channel.remove(&best_key);
        }
        taken
    }

    /// Does a matching message exist for a specific receive?
    pub fn has_specific(&self, src: Rank, tag: Tag) -> bool {
        self.by_channel
            .get(&(tag, src))
            .is_some_and(|q| q.len() > 0)
    }

    /// Does a matching message exist for a wildcard receive?
    pub fn has_any(&self, tag: Tag) -> bool {
        self.channels_of(tag).any(|(_, q)| q.len() > 0)
    }

    /// The channels of one tag (tag-major key order makes this a range).
    fn channels_of(&self, tag: Tag) -> impl Iterator<Item = (&(Tag, Rank), &Ring)> {
        self.by_channel
            .range((tag, Rank(0))..=(tag, Rank(u32::MAX)))
    }

    /// Iterate pending messages (arbitrary but deterministic order).
    pub fn iter(&self) -> impl Iterator<Item = &Arrived> {
        self.by_channel.values().flat_map(|r| r.live().iter())
    }

    /// Keep only pending messages satisfying `pred` (used when
    /// checkpointing: inter-cluster channel state is excluded because
    /// sender-based logs own it).
    pub fn retain(&mut self, mut pred: impl FnMut(&Message) -> bool) {
        let mut pending = 0;
        for q in self.by_channel.values_mut() {
            q.retain(|a| pred(&a.msg));
            pending += q.len();
        }
        self.by_channel.retain(|_, q| q.len() > 0);
        self.pending = pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PbMeta;

    trait Push2 {
        fn push2(&mut self, msg: Message, seq: u64);
    }
    impl Push2 for Inbox {
        fn push2(&mut self, msg: Message, seq: u64) {
            self.push(msg, seq, det_sim::SimDuration::ZERO);
        }
    }

    fn msg(src: u32, tag: u32, seq: u64) -> Message {
        Message {
            src: Rank(src),
            dst: Rank(99),
            tag: Tag(tag),
            bytes: 8,
            payload: seq,
            channel_seq: seq,
            meta: PbMeta::default(),
            replayed: false,
        }
    }

    #[test]
    fn specific_is_fifo_per_channel() {
        let mut ib = Inbox::new();
        ib.push2(msg(1, 0, 1), 10);
        ib.push2(msg(1, 0, 2), 20);
        assert_eq!(
            ib.take_specific(Rank(1), Tag(0)).unwrap().msg.channel_seq,
            1
        );
        assert_eq!(
            ib.take_specific(Rank(1), Tag(0)).unwrap().msg.channel_seq,
            2
        );
        assert!(ib.take_specific(Rank(1), Tag(0)).is_none());
    }

    #[test]
    fn specific_respects_tag() {
        let mut ib = Inbox::new();
        ib.push2(msg(1, 7, 1), 10);
        assert!(ib.take_specific(Rank(1), Tag(0)).is_none());
        assert!(ib.has_specific(Rank(1), Tag(7)));
    }

    #[test]
    fn wildcard_takes_earliest_arrival() {
        let mut ib = Inbox::new();
        ib.push2(msg(5, 0, 1), 30);
        ib.push2(msg(2, 0, 1), 20);
        ib.push2(msg(9, 0, 1), 10);
        assert_eq!(ib.take_any(Tag(0)).unwrap().msg.src, Rank(9));
        assert_eq!(ib.take_any(Tag(0)).unwrap().msg.src, Rank(2));
        assert_eq!(ib.take_any(Tag(0)).unwrap().msg.src, Rank(5));
        assert!(ib.take_any(Tag(0)).is_none());
    }

    #[test]
    fn wildcard_tie_breaks_by_source() {
        let mut ib = Inbox::new();
        ib.push2(msg(5, 0, 1), 10);
        ib.push2(msg(2, 0, 1), 10);
        assert_eq!(ib.take_any(Tag(0)).unwrap().msg.src, Rank(2));
    }

    #[test]
    fn wildcard_filters_tag() {
        let mut ib = Inbox::new();
        ib.push2(msg(1, 3, 1), 10);
        ib.push2(msg(1, 4, 1), 20);
        assert_eq!(ib.take_any(Tag(4)).unwrap().msg.tag, Tag(4));
        assert!(ib.has_any(Tag(3)));
        assert!(!ib.has_any(Tag(4)));
    }

    #[test]
    fn len_and_clone_roundtrip() {
        let mut ib = Inbox::new();
        assert!(ib.is_empty());
        ib.push2(msg(1, 0, 1), 1);
        ib.push2(msg(2, 0, 1), 2);
        assert_eq!(ib.len(), 2);
        let snapshot = ib.clone();
        ib.take_any(Tag(0));
        assert_eq!(ib.len(), 1);
        assert_eq!(snapshot.len(), 2, "snapshot must be unaffected");
    }

    #[test]
    fn ring_recycles_and_preserves_fifo_under_churn() {
        let mut ib = Inbox::new();
        let mut next_in = 1u64;
        let mut next_out = 1u64;
        // Interleave pushes and pops so the head cursor crosses the
        // compaction thresholds many times.
        for round in 0..200 {
            for _ in 0..(round % 5) + 1 {
                ib.push2(msg(1, 0, next_in), next_in);
                next_in += 1;
            }
            while ib.len() > 3 {
                let got = ib.take_specific(Rank(1), Tag(0)).unwrap();
                assert_eq!(got.msg.channel_seq, next_out, "FIFO violated");
                next_out += 1;
            }
        }
        while let Some(got) = ib.take_specific(Rank(1), Tag(0)) {
            assert_eq!(got.msg.channel_seq, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, next_in);
        assert!(ib.is_empty());
    }

    #[test]
    fn snapshots_compare_by_content_not_cursor() {
        // Two inboxes holding the same pending messages must be equal even
        // if one went through pop churn (different internal head cursor).
        let mut churned = Inbox::new();
        for i in 1..=40u64 {
            churned.push2(msg(1, 0, i), i);
        }
        for _ in 0..39 {
            churned.take_specific(Rank(1), Tag(0)).unwrap();
        }
        let mut fresh = Inbox::new();
        fresh.push2(msg(1, 0, 40), 40);
        assert_eq!(churned, fresh);
        assert_eq!(churned.len(), fresh.len());
    }

    #[test]
    fn retain_updates_len() {
        let mut ib = Inbox::new();
        for i in 1..=10u64 {
            ib.push2(msg(1, 0, i), i);
        }
        ib.retain(|m| m.channel_seq % 2 == 0);
        assert_eq!(ib.len(), 5);
        assert_eq!(ib.iter().count(), 5);
    }
}
