//! Rank programs.
//!
//! A simulated application is one op-stream per rank. The streams are fixed
//! before the run (workload generators unroll their iteration loops), which
//! gives the execution model of the paper's §II-C: the *sequence* of send
//! and receive events per process is program-determined; only the order in
//! which wildcard receives are filled varies with timing — exactly the
//! nondeterminism send-determinism tolerates.

use crate::types::{Rank, Tag};
use det_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Send `bytes` to `dst` with `tag`.
    Send { dst: Rank, bytes: u64, tag: Tag },
    /// Blocking receive of the next message from `src` with `tag`.
    Recv { src: Rank, tag: Tag },
    /// Blocking wildcard receive (`MPI_ANY_SOURCE`): the next message with
    /// `tag` from any source, in arrival order.
    RecvAny { tag: Tag },
    /// Local computation for `time`.
    Compute { time: SimDuration },
}

/// A rank's complete program.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    pub ops: Vec<Op>,
}

impl Program {
    pub fn new() -> Self {
        Program { ops: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn send(&mut self, dst: Rank, bytes: u64, tag: Tag) -> &mut Self {
        self.ops.push(Op::Send { dst, bytes, tag });
        self
    }

    pub fn recv(&mut self, src: Rank, tag: Tag) -> &mut Self {
        self.ops.push(Op::Recv { src, tag });
        self
    }

    pub fn recv_any(&mut self, tag: Tag) -> &mut Self {
        self.ops.push(Op::RecvAny { tag });
        self
    }

    pub fn compute(&mut self, time: SimDuration) -> &mut Self {
        self.ops.push(Op::Compute { time });
        self
    }

    /// Number of send operations (the number of messages the rank will
    /// emit in a complete failure-free run).
    pub fn send_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Send { .. }))
            .count()
    }

    /// Number of receive operations (specific + wildcard).
    pub fn recv_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Recv { .. } | Op::RecvAny { .. }))
            .count()
    }

    /// Total bytes this program will send.
    pub fn bytes_sent(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Send { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }
}

/// A complete application: one program per rank, rank r at index r.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Application {
    pub programs: Vec<Program>,
}

impl Application {
    pub fn new(n_ranks: usize) -> Self {
        Application {
            programs: vec![Program::new(); n_ranks],
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.programs.len()
    }

    pub fn rank_mut(&mut self, r: Rank) -> &mut Program {
        &mut self.programs[r.idx()]
    }

    pub fn rank(&self, r: Rank) -> &Program {
        &self.programs[r.idx()]
    }

    /// Total bytes sent across all ranks in a failure-free run.
    pub fn total_bytes(&self) -> u64 {
        self.programs.iter().map(|p| p.bytes_sent()).sum()
    }

    /// Total messages sent across all ranks in a failure-free run.
    pub fn total_messages(&self) -> u64 {
        self.programs.iter().map(|p| p.send_count() as u64).sum()
    }

    /// Sanity-check that every send has a matching receive: for each
    /// `(src, dst, tag)` the number of sends equals the number of specific
    /// receives plus a share of wildcard receives. Returns a human-readable
    /// error for the first mismatch found.
    ///
    /// The check is necessarily approximate in the presence of wildcards:
    /// it verifies per-destination totals (sends targeting `d` == receive
    /// ops on `d`) and per-`(src,dst,tag)` specific-receive feasibility.
    pub fn check_balance(&self) -> Result<(), String> {
        use std::collections::BTreeMap;
        let n = self.n_ranks();
        // sends[dst] and recvs[dst] totals.
        let mut sends_to = vec![0i64; n];
        let mut recv_at = vec![0i64; n];
        // per (src, dst, tag) sends and specific recvs; wildcard recvs per (dst, tag).
        let mut chan_sends: BTreeMap<(u32, u32, u32), i64> = BTreeMap::new();
        let mut chan_recvs: BTreeMap<(u32, u32, u32), i64> = BTreeMap::new();
        let mut wild: BTreeMap<(u32, u32), i64> = BTreeMap::new();
        for (src, prog) in self.programs.iter().enumerate() {
            for op in &prog.ops {
                match *op {
                    Op::Send { dst, tag, .. } => {
                        sends_to[dst.idx()] += 1;
                        *chan_sends.entry((src as u32, dst.0, tag.0)).or_default() += 1;
                    }
                    Op::Recv { src: from, tag } => {
                        recv_at[src] += 1;
                        *chan_recvs.entry((from.0, src as u32, tag.0)).or_default() += 1;
                    }
                    Op::RecvAny { tag } => {
                        recv_at[src] += 1;
                        *wild.entry((src as u32, tag.0)).or_default() += 1;
                    }
                    Op::Compute { .. } => {}
                }
            }
        }
        for r in 0..n {
            if sends_to[r] != recv_at[r] {
                return Err(format!(
                    "rank {r}: {} messages sent to it but {} receive ops",
                    sends_to[r], recv_at[r]
                ));
            }
        }
        // Every specific recv must have at least as many sends on its channel.
        for (&(s, d, t), &nrecv) in &chan_recvs {
            let nsend = chan_sends.get(&(s, d, t)).copied().unwrap_or(0);
            if nsend < nrecv {
                return Err(format!(
                    "channel P{s}->P{d} tag {t}: {nrecv} specific recvs but only {nsend} sends"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut p = Program::new();
        p.send(Rank(1), 100, Tag(0))
            .recv(Rank(1), Tag(0))
            .compute(SimDuration::from_us(5))
            .recv_any(Tag(1));
        assert_eq!(p.len(), 4);
        assert_eq!(p.send_count(), 1);
        assert_eq!(p.recv_count(), 2);
        assert_eq!(p.bytes_sent(), 100);
    }

    #[test]
    fn application_totals() {
        let mut app = Application::new(2);
        app.rank_mut(Rank(0)).send(Rank(1), 10, Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        app.rank_mut(Rank(1)).send(Rank(0), 20, Tag(0));
        app.rank_mut(Rank(0)).recv(Rank(1), Tag(0));
        assert_eq!(app.total_bytes(), 30);
        assert_eq!(app.total_messages(), 2);
        assert!(app.check_balance().is_ok());
    }

    #[test]
    fn balance_catches_missing_recv() {
        let mut app = Application::new(2);
        app.rank_mut(Rank(0)).send(Rank(1), 10, Tag(0));
        let err = app.check_balance().unwrap_err();
        assert!(err.contains("rank 1"), "{err}");
    }

    #[test]
    fn balance_catches_wrong_channel() {
        let mut app = Application::new(3);
        app.rank_mut(Rank(0)).send(Rank(1), 10, Tag(0));
        // Rank 1 waits for rank 2, which never sends; totals match, channel
        // check catches it.
        app.rank_mut(Rank(1)).recv(Rank(2), Tag(0));
        let err = app.check_balance().unwrap_err();
        assert!(err.contains("P2->P1"), "{err}");
    }

    #[test]
    fn balance_accepts_wildcards() {
        let mut app = Application::new(3);
        app.rank_mut(Rank(0)).send(Rank(2), 10, Tag(7));
        app.rank_mut(Rank(1)).send(Rank(2), 10, Tag(7));
        app.rank_mut(Rank(2)).recv_any(Tag(7)).recv_any(Tag(7));
        assert!(app.check_balance().is_ok());
    }
}
