//! Rank programs — the application-programming API.
//!
//! A simulated application is one op-stream per rank. The streams are fixed
//! before the run, which gives the execution model of the paper's §II-C:
//! the *sequence* of send and receive events per process is
//! program-determined; only the order in which wildcard receives are filled
//! varies with timing — exactly the nondeterminism send-determinism
//! tolerates.
//!
//! ## Representation (DESIGN.md §2.2)
//!
//! The engine addresses a program only through [`RankProgram`]: a lazy,
//! random-access view `op_at(pc) -> Option<Op>` plus closed-form metadata.
//! Two implementations ship:
//!
//! * [`UnrolledProgram`] — a materialised `Vec<Op>` with a chainable
//!   builder. Used by hand-built tests and as the equivalence oracle for
//!   the generators.
//! * [`GenProgram`] — a per-iteration body of [`OpTemplate`]s repeated
//!   `iterations` times, evaluated on demand. Memory is O(body), not
//!   O(body × iterations); all workload generators produce these.
//!
//! `op_at` must be a **pure function of `pc`**: the engine executes by
//! program counter and HydEE recovery seeks `pc` back to a checkpoint cut,
//! so any hidden state in a program would break replay determinism.

use crate::types::{Rank, Tag};
use det_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Send `bytes` to `dst` with `tag`.
    Send { dst: Rank, bytes: u64, tag: Tag },
    /// Blocking receive of the next message from `src` with `tag`.
    Recv { src: Rank, tag: Tag },
    /// Blocking wildcard receive (`MPI_ANY_SOURCE`): the next message with
    /// `tag` from any source, in arrival order.
    RecvAny { tag: Tag },
    /// Local computation for `time`.
    Compute { time: SimDuration },
}

/// A rank's program as the engine sees it: a random-access op stream.
///
/// The contract (DESIGN.md §2.2):
///
/// * **Purity in `pc`** — `op_at(pc)` returns the same op for the same
///   `pc` for the lifetime of the value, with no interior mutation. The
///   engine seeks freely: forward during execution, backward when HydEE
///   rolls a rank's `pc` to a checkpoint cut and replays.
/// * **Contiguity** — `op_at(pc)` is `Some` exactly for `pc < len()`.
/// * Metadata (`send_count`, `bytes_sent`, …) equals what a full walk of
///   `op_at(0..len())` would produce; implementations answer in closed
///   form where they can.
pub trait RankProgram: Send + Sync + std::fmt::Debug {
    /// Total number of ops.
    fn len(&self) -> usize;

    /// The op at program counter `pc`, or `None` for `pc >= len()`.
    fn op_at(&self, pc: usize) -> Option<Op>;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of send operations (the messages the rank emits in a
    /// complete failure-free run).
    fn send_count(&self) -> usize {
        let (mut n, mut pc) = (0, 0);
        while let Some(op) = self.op_at(pc) {
            n += matches!(op, Op::Send { .. }) as usize;
            pc += 1;
        }
        n
    }

    /// Number of receive operations (specific + wildcard).
    fn recv_count(&self) -> usize {
        let (mut n, mut pc) = (0, 0);
        while let Some(op) = self.op_at(pc) {
            n += matches!(op, Op::Recv { .. } | Op::RecvAny { .. }) as usize;
            pc += 1;
        }
        n
    }

    /// Total bytes this program will send.
    fn bytes_sent(&self) -> u64 {
        let (mut total, mut pc) = (0u64, 0);
        while let Some(op) = self.op_at(pc) {
            if let Op::Send { bytes, .. } = op {
                total += bytes;
            }
            pc += 1;
        }
        total
    }

    /// Stream aggregated send totals as `f(dst, bytes, messages)` chunks
    /// (a destination may appear in several chunks). Clustering builds
    /// communication graphs from this without walking every op.
    fn send_summary(&self, f: &mut dyn FnMut(Rank, u64, u64)) {
        let mut pc = 0;
        while let Some(op) = self.op_at(pc) {
            if let Op::Send { dst, bytes, .. } = op {
                f(dst, bytes, 1);
            }
            pc += 1;
        }
    }

    /// Approximate heap bytes resident for this representation (the
    /// quantity the perf baseline's memory columns report).
    fn resident_bytes(&self) -> u64;
}

/// Iterator over a [`RankProgram`]'s ops by walking `op_at`.
pub struct OpStream<'a> {
    prog: &'a dyn RankProgram,
    pc: usize,
}

impl<'a> OpStream<'a> {
    pub fn new(prog: &'a dyn RankProgram) -> Self {
        OpStream { prog, pc: 0 }
    }
}

impl Iterator for OpStream<'_> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let op = self.prog.op_at(self.pc)?;
        self.pc += 1;
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.prog.len().saturating_sub(self.pc);
        (rest, Some(rest))
    }
}

/// A materialised rank program: the `Vec<Op>`-backed implementation, with
/// a chainable builder. Hand-built tests use it directly; generators keep
/// `*_unrolled` constructors producing it as the equivalence oracle.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnrolledProgram {
    pub ops: Vec<Op>,
}

/// Historical name of [`UnrolledProgram`], kept for the builder-heavy
/// test surface.
pub type Program = UnrolledProgram;

impl UnrolledProgram {
    pub fn new() -> Self {
        UnrolledProgram { ops: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn send(&mut self, dst: Rank, bytes: u64, tag: Tag) -> &mut Self {
        self.ops.push(Op::Send { dst, bytes, tag });
        self
    }

    pub fn recv(&mut self, src: Rank, tag: Tag) -> &mut Self {
        self.ops.push(Op::Recv { src, tag });
        self
    }

    pub fn recv_any(&mut self, tag: Tag) -> &mut Self {
        self.ops.push(Op::RecvAny { tag });
        self
    }

    pub fn compute(&mut self, time: SimDuration) -> &mut Self {
        self.ops.push(Op::Compute { time });
        self
    }

    /// Number of send operations (the number of messages the rank will
    /// emit in a complete failure-free run).
    pub fn send_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Send { .. }))
            .count()
    }

    /// Number of receive operations (specific + wildcard).
    pub fn recv_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Recv { .. } | Op::RecvAny { .. }))
            .count()
    }

    /// Total bytes this program will send.
    pub fn bytes_sent(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Send { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }
}

impl RankProgram for UnrolledProgram {
    fn len(&self) -> usize {
        self.ops.len()
    }

    fn op_at(&self, pc: usize) -> Option<Op> {
        self.ops.get(pc).copied()
    }

    fn send_count(&self) -> usize {
        UnrolledProgram::send_count(self)
    }

    fn recv_count(&self) -> usize {
        UnrolledProgram::recv_count(self)
    }

    fn bytes_sent(&self) -> u64 {
        UnrolledProgram::bytes_sent(self)
    }

    fn resident_bytes(&self) -> u64 {
        (self.ops.capacity() * std::mem::size_of::<Op>() + std::mem::size_of::<Self>()) as u64
    }
}

/// One slot of a [`GenProgram`] body: how the op at this body position
/// varies (or not) with the iteration index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpTemplate {
    /// The same op every iteration.
    Fixed(Op),
    /// `op` with its tag advanced by `stride` per iteration — the
    /// per-epoch tagging rule of DESIGN.md §3 in closed form. A
    /// `Compute` op is returned unchanged.
    IterTag { op: Op, stride: u32 },
    /// Compute of `base * (1 + (offset + iter * stride) % modulus)` —
    /// deterministic per-iteration jitter (master/worker staggering).
    IterCompute {
        base: SimDuration,
        offset: u64,
        stride: u64,
        modulus: u64,
    },
}

impl OpTemplate {
    /// Resolve the template for iteration `iter`.
    pub fn at(&self, iter: usize) -> Op {
        match *self {
            OpTemplate::Fixed(op) => op,
            OpTemplate::IterTag { op, stride } => {
                let bump = stride.wrapping_mul(iter as u32);
                match op {
                    Op::Send { dst, bytes, tag } => Op::Send {
                        dst,
                        bytes,
                        tag: Tag(tag.0.wrapping_add(bump)),
                    },
                    Op::Recv { src, tag } => Op::Recv {
                        src,
                        tag: Tag(tag.0.wrapping_add(bump)),
                    },
                    Op::RecvAny { tag } => Op::RecvAny {
                        tag: Tag(tag.0.wrapping_add(bump)),
                    },
                    Op::Compute { .. } => op,
                }
            }
            OpTemplate::IterCompute {
                base,
                offset,
                stride,
                modulus,
            } => {
                let k = 1 + (offset.wrapping_add(iter as u64 * stride)) % modulus.max(1);
                Op::Compute { time: base * k }
            }
        }
    }

    fn base_op(&self) -> Op {
        match *self {
            OpTemplate::Fixed(op) | OpTemplate::IterTag { op, .. } => op,
            OpTemplate::IterCompute { base, .. } => Op::Compute { time: base },
        }
    }
}

/// A lazy rank program: a per-iteration body repeated `iterations` times.
///
/// `op_at(pc)` decomposes `pc` into `(iteration, body position)` and
/// evaluates the template — O(1), no materialisation. Metadata is closed
/// form over the body. Memory is O(body) where the unrolled form is
/// O(body × iterations): the representation that makes thousand-rank,
/// long-horizon applications setup- and memory-free (DESIGN.md §2.2).
#[derive(Debug, Clone, Default)]
pub struct GenProgram {
    body: Vec<OpTemplate>,
    iterations: usize,
}

impl GenProgram {
    pub fn new(body: Vec<OpTemplate>, iterations: usize) -> Self {
        GenProgram { body, iterations }
    }

    /// Body of iteration-invariant ops repeated `iterations` times.
    pub fn from_ops(ops: impl IntoIterator<Item = Op>, iterations: usize) -> Self {
        GenProgram {
            body: ops.into_iter().map(OpTemplate::Fixed).collect(),
            iterations,
        }
    }

    pub fn body(&self) -> &[OpTemplate] {
        &self.body
    }

    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl RankProgram for GenProgram {
    fn len(&self) -> usize {
        self.body.len() * self.iterations
    }

    #[inline]
    fn op_at(&self, pc: usize) -> Option<Op> {
        if self.body.is_empty() {
            return None;
        }
        let iter = pc / self.body.len();
        if iter >= self.iterations {
            return None;
        }
        Some(self.body[pc % self.body.len()].at(iter))
    }

    fn send_count(&self) -> usize {
        self.body
            .iter()
            .filter(|t| matches!(t.base_op(), Op::Send { .. }))
            .count()
            * self.iterations
    }

    fn recv_count(&self) -> usize {
        self.body
            .iter()
            .filter(|t| matches!(t.base_op(), Op::Recv { .. } | Op::RecvAny { .. }))
            .count()
            * self.iterations
    }

    fn bytes_sent(&self) -> u64 {
        self.body
            .iter()
            .map(|t| match t.base_op() {
                Op::Send { bytes, .. } => bytes,
                _ => 0,
            })
            .sum::<u64>()
            * self.iterations as u64
    }

    fn send_summary(&self, f: &mut dyn FnMut(Rank, u64, u64)) {
        for t in &self.body {
            if let Op::Send { dst, bytes, .. } = t.base_op() {
                f(dst, bytes * self.iterations as u64, self.iterations as u64);
            }
        }
    }

    fn resident_bytes(&self) -> u64 {
        (self.body.capacity() * std::mem::size_of::<OpTemplate>() + std::mem::size_of::<Self>())
            as u64
    }
}

/// One rank's slot in an [`Application`]: either a mutable builder
/// program or a shared generated one.
#[derive(Debug, Clone)]
enum ProgSlot {
    Unrolled(UnrolledProgram),
    Gen(Arc<dyn RankProgram>),
}

impl ProgSlot {
    fn prog(&self) -> &dyn RankProgram {
        match self {
            ProgSlot::Unrolled(p) => p,
            ProgSlot::Gen(p) => &**p,
        }
    }
}

/// A complete application: one [`RankProgram`] per rank, rank r at
/// index r.
#[derive(Debug, Clone, Default)]
pub struct Application {
    programs: Vec<ProgSlot>,
}

impl Application {
    /// `n_ranks` empty builder programs: extend with [`Application::rank_mut`].
    pub fn new(n_ranks: usize) -> Self {
        Application {
            programs: vec![ProgSlot::Unrolled(UnrolledProgram::new()); n_ranks],
        }
    }

    /// Build from one generated program per rank (rank r = index r).
    pub fn generated(programs: Vec<Arc<dyn RankProgram>>) -> Self {
        Application {
            programs: programs.into_iter().map(ProgSlot::Gen).collect(),
        }
    }

    /// Build `n_ranks` generated programs from a per-rank constructor.
    pub fn generated_with(n_ranks: usize, mut f: impl FnMut(Rank) -> GenProgram) -> Self {
        Application {
            programs: (0..n_ranks)
                .map(|i| ProgSlot::Gen(Arc::new(f(Rank(i as u32))) as Arc<dyn RankProgram>))
                .collect(),
        }
    }

    /// Reinterpret a *one-iteration* builder application as `iterations`
    /// lazy repetitions of itself: each rank's op list becomes a
    /// [`GenProgram`] body of iteration-invariant ops. The universal
    /// generator transformation for workloads whose iterations are
    /// identical (all NAS skeletons).
    ///
    /// Panics if any rank holds a generated (non-builder) program.
    pub fn repeated(self, iterations: usize) -> Application {
        Application {
            programs: self
                .programs
                .into_iter()
                .map(|slot| match slot {
                    ProgSlot::Unrolled(p) => {
                        ProgSlot::Gen(Arc::new(GenProgram::from_ops(p.ops, iterations))
                            as Arc<dyn RankProgram>)
                    }
                    ProgSlot::Gen(_) => {
                        panic!("Application::repeated requires builder (unrolled) programs")
                    }
                })
                .collect(),
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.programs.len()
    }

    /// Mutable builder access to rank `r`'s program.
    ///
    /// Panics if the rank holds a generated program — generators produce
    /// closed-form programs that cannot be extended op by op.
    pub fn rank_mut(&mut self, r: Rank) -> &mut UnrolledProgram {
        match &mut self.programs[r.idx()] {
            ProgSlot::Unrolled(p) => p,
            ProgSlot::Gen(_) => panic!(
                "rank {} holds a generated RankProgram; op-by-op building only \
                 applies to Application::new / unrolled programs",
                r.0
            ),
        }
    }

    /// Rank `r`'s program through the streaming interface.
    pub fn rank(&self, r: Rank) -> &dyn RankProgram {
        self.programs[r.idx()].prog()
    }

    /// Iterate rank `r`'s ops lazily.
    pub fn ops(&self, r: Rank) -> OpStream<'_> {
        OpStream::new(self.rank(r))
    }

    /// Surrender the per-rank programs to the engine.
    pub(crate) fn into_programs(self) -> Vec<Arc<dyn RankProgram>> {
        self.programs
            .into_iter()
            .map(|slot| match slot {
                ProgSlot::Unrolled(p) => Arc::new(p) as Arc<dyn RankProgram>,
                ProgSlot::Gen(p) => p,
            })
            .collect()
    }

    /// Total bytes sent across all ranks in a failure-free run.
    pub fn total_bytes(&self) -> u64 {
        self.programs.iter().map(|p| p.prog().bytes_sent()).sum()
    }

    /// Total messages sent across all ranks in a failure-free run.
    pub fn total_messages(&self) -> u64 {
        self.programs
            .iter()
            .map(|p| p.prog().send_count() as u64)
            .sum()
    }

    /// Heap bytes resident in the program representation itself.
    pub fn resident_bytes(&self) -> u64 {
        self.programs
            .iter()
            .map(|p| p.prog().resident_bytes())
            .sum()
    }

    /// Heap bytes a fully materialised `Vec<Op>` representation of the
    /// same application would hold — the denominator of the perf
    /// baseline's memory-win columns.
    pub fn unrolled_bytes(&self) -> u64 {
        self.programs
            .iter()
            .map(|p| (p.prog().len() * std::mem::size_of::<Op>()) as u64)
            .sum()
    }

    /// Stream aggregated send totals across all ranks as
    /// `f(src, dst, bytes, messages)` chunks (closed form for generated
    /// programs; a channel may appear in several chunks).
    pub fn send_summary(&self, mut f: impl FnMut(Rank, Rank, u64, u64)) {
        for (src, slot) in self.programs.iter().enumerate() {
            let src = Rank(src as u32);
            slot.prog()
                .send_summary(&mut |dst, bytes, msgs| f(src, dst, bytes, msgs));
        }
    }

    /// Sanity-check that every send has a matching receive: for each
    /// `(src, dst, tag)` the number of sends equals the number of specific
    /// receives plus a share of wildcard receives. Returns a human-readable
    /// error for the first mismatch found.
    ///
    /// The check is necessarily approximate in the presence of wildcards:
    /// it verifies per-destination totals (sends targeting `d` == receive
    /// ops on `d`) and per-`(src,dst,tag)` specific-receive feasibility.
    pub fn check_balance(&self) -> Result<(), String> {
        use std::collections::BTreeMap;
        let n = self.n_ranks();
        // sends[dst] and recvs[dst] totals.
        let mut sends_to = vec![0i64; n];
        let mut recv_at = vec![0i64; n];
        // per (src, dst, tag) sends and specific recvs; wildcard recvs per (dst, tag).
        let mut chan_sends: BTreeMap<(u32, u32, u32), i64> = BTreeMap::new();
        let mut chan_recvs: BTreeMap<(u32, u32, u32), i64> = BTreeMap::new();
        let mut wild: BTreeMap<(u32, u32), i64> = BTreeMap::new();
        #[allow(clippy::needless_range_loop)] // src feeds both ops() and recv_at[]
        for src in 0..n {
            for op in self.ops(Rank(src as u32)) {
                match op {
                    Op::Send { dst, tag, .. } => {
                        sends_to[dst.idx()] += 1;
                        *chan_sends.entry((src as u32, dst.0, tag.0)).or_default() += 1;
                    }
                    Op::Recv { src: from, tag } => {
                        recv_at[src] += 1;
                        *chan_recvs.entry((from.0, src as u32, tag.0)).or_default() += 1;
                    }
                    Op::RecvAny { tag } => {
                        recv_at[src] += 1;
                        *wild.entry((src as u32, tag.0)).or_default() += 1;
                    }
                    Op::Compute { .. } => {}
                }
            }
        }
        for r in 0..n {
            if sends_to[r] != recv_at[r] {
                return Err(format!(
                    "rank {r}: {} messages sent to it but {} receive ops",
                    sends_to[r], recv_at[r]
                ));
            }
        }
        // Every specific recv must have at least as many sends on its channel.
        for (&(s, d, t), &nrecv) in &chan_recvs {
            let nsend = chan_sends.get(&(s, d, t)).copied().unwrap_or(0);
            if nsend < nrecv {
                return Err(format!(
                    "channel P{s}->P{d} tag {t}: {nrecv} specific recvs but only {nsend} sends"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut p = UnrolledProgram::new();
        p.send(Rank(1), 100, Tag(0))
            .recv(Rank(1), Tag(0))
            .compute(SimDuration::from_us(5))
            .recv_any(Tag(1));
        assert_eq!(p.len(), 4);
        assert_eq!(p.send_count(), 1);
        assert_eq!(p.recv_count(), 2);
        assert_eq!(p.bytes_sent(), 100);
    }

    #[test]
    fn application_totals() {
        let mut app = Application::new(2);
        app.rank_mut(Rank(0)).send(Rank(1), 10, Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        app.rank_mut(Rank(1)).send(Rank(0), 20, Tag(0));
        app.rank_mut(Rank(0)).recv(Rank(1), Tag(0));
        assert_eq!(app.total_bytes(), 30);
        assert_eq!(app.total_messages(), 2);
        assert!(app.check_balance().is_ok());
    }

    #[test]
    fn balance_catches_missing_recv() {
        let mut app = Application::new(2);
        app.rank_mut(Rank(0)).send(Rank(1), 10, Tag(0));
        let err = app.check_balance().unwrap_err();
        assert!(err.contains("rank 1"), "{err}");
    }

    #[test]
    fn balance_catches_wrong_channel() {
        let mut app = Application::new(3);
        app.rank_mut(Rank(0)).send(Rank(1), 10, Tag(0));
        // Rank 1 waits for rank 2, which never sends; totals match, channel
        // check catches it.
        app.rank_mut(Rank(1)).recv(Rank(2), Tag(0));
        let err = app.check_balance().unwrap_err();
        assert!(err.contains("P2->P1"), "{err}");
    }

    #[test]
    fn balance_accepts_wildcards() {
        let mut app = Application::new(3);
        app.rank_mut(Rank(0)).send(Rank(2), 10, Tag(7));
        app.rank_mut(Rank(1)).send(Rank(2), 10, Tag(7));
        app.rank_mut(Rank(2)).recv_any(Tag(7)).recv_any(Tag(7));
        assert!(app.check_balance().is_ok());
    }

    #[test]
    fn gen_program_is_pure_and_contiguous_in_pc() {
        let g = GenProgram::new(
            vec![
                OpTemplate::Fixed(Op::Compute {
                    time: SimDuration::from_us(1),
                }),
                OpTemplate::IterTag {
                    op: Op::Send {
                        dst: Rank(1),
                        bytes: 64,
                        tag: Tag(5),
                    },
                    stride: 2,
                },
            ],
            3,
        );
        assert_eq!(g.len(), 6);
        // Contiguity: Some exactly below len.
        for pc in 0..g.len() {
            assert!(g.op_at(pc).is_some(), "pc={pc}");
        }
        assert_eq!(g.op_at(6), None);
        // Purity: seeking back returns the identical op.
        let first = g.op_at(3);
        let _ = g.op_at(5);
        assert_eq!(g.op_at(3), first);
        // Tag advances per iteration.
        assert_eq!(
            g.op_at(5),
            Some(Op::Send {
                dst: Rank(1),
                bytes: 64,
                tag: Tag(9)
            })
        );
    }

    #[test]
    fn gen_metadata_matches_a_full_walk() {
        let g = GenProgram::new(
            vec![
                OpTemplate::IterCompute {
                    base: SimDuration::from_us(10),
                    offset: 3,
                    stride: 13,
                    modulus: 7,
                },
                OpTemplate::Fixed(Op::Send {
                    dst: Rank(2),
                    bytes: 100,
                    tag: Tag(0),
                }),
                OpTemplate::Fixed(Op::RecvAny { tag: Tag(0) }),
            ],
            11,
        );
        let walked: Vec<Op> = OpStream::new(&g).collect();
        assert_eq!(walked.len(), g.len());
        assert_eq!(
            g.send_count(),
            walked
                .iter()
                .filter(|o| matches!(o, Op::Send { .. }))
                .count()
        );
        assert_eq!(
            g.recv_count(),
            walked
                .iter()
                .filter(|o| matches!(o, Op::Recv { .. } | Op::RecvAny { .. }))
                .count()
        );
        assert_eq!(g.bytes_sent(), 11 * 100);
        let mut summed = 0u64;
        let mut msgs = 0u64;
        g.send_summary(&mut |_, b, m| {
            summed += b;
            msgs += m;
        });
        assert_eq!(summed, g.bytes_sent());
        assert_eq!(msgs, g.send_count() as u64);
    }

    #[test]
    fn iter_compute_jitter_is_deterministic_per_iteration() {
        let t = OpTemplate::IterCompute {
            base: SimDuration::from_us(100),
            offset: 2,
            stride: 13,
            modulus: 7,
        };
        for iter in 0..20 {
            let expect = SimDuration::from_us(100) * (1 + (2 + iter as u64 * 13) % 7);
            assert_eq!(t.at(iter), Op::Compute { time: expect });
        }
    }

    #[test]
    fn repeated_equals_manual_unroll() {
        let mut one = Application::new(2);
        one.rank_mut(Rank(0)).send(Rank(1), 8, Tag(3));
        one.rank_mut(Rank(1)).recv(Rank(0), Tag(3));
        let gen = one.clone().repeated(4);
        let mut unrolled = Application::new(2);
        for _ in 0..4 {
            unrolled.rank_mut(Rank(0)).send(Rank(1), 8, Tag(3));
            unrolled.rank_mut(Rank(1)).recv(Rank(0), Tag(3));
        }
        for r in 0..2u32 {
            let a: Vec<Op> = gen.ops(Rank(r)).collect();
            let b: Vec<Op> = unrolled.ops(Rank(r)).collect();
            assert_eq!(a, b, "rank {r}");
        }
        assert_eq!(gen.total_bytes(), unrolled.total_bytes());
        assert!(gen.resident_bytes() < unrolled.resident_bytes());
    }

    #[test]
    #[should_panic(expected = "generated RankProgram")]
    fn building_onto_a_generated_rank_panics() {
        let mut app = Application::generated_with(1, |_| GenProgram::from_ops([], 0));
        app.rank_mut(Rank(0)).send(Rank(0), 1, Tag(0));
    }
}
