//! # mps-sim — a deterministic message-passing runtime simulator
//!
//! The substrate standing in for MPICH2 + a physical cluster in the HydEE
//! reproduction (see `DESIGN.md`). It executes one op-stream program per
//! rank over FIFO reliable channels priced by `net-model`, with:
//!
//! * deterministic discrete-event execution (bit-for-bit reproducible),
//! * MPI-like matching: source-specific receives and `MPI_ANY_SOURCE`
//!   wildcards,
//! * a [`protocol::Protocol`] hook interface rich enough to implement
//!   checkpoint/restart, sender-based message logging, and HydEE's full
//!   recovery choreography (send gating, orphan suppression, log replay,
//!   channel-state capture),
//! * fail-stop failure injection (single and multiple concurrent),
//! * built-in correctness oracles: every re-emitted or replayed message is
//!   checked against its original identity, and per-rank state digests
//!   expose any divergence from the failure-free execution.
//!
//! ```
//! use mps_sim::prelude::*;
//!
//! // Two ranks, one ping-pong.
//! let mut app = Application::new(2);
//! app.rank_mut(Rank(0)).send(Rank(1), 1024, Tag(0));
//! app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
//! app.rank_mut(Rank(1)).send(Rank(0), 1024, Tag(0));
//! app.rank_mut(Rank(0)).recv(Rank(1), Tag(0));
//!
//! let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
//! assert!(report.completed());
//! assert_eq!(report.metrics.app_messages, 2);
//! ```

pub mod app;
pub mod cluster;
pub mod collectives;
pub mod engine;
pub mod failure;
pub mod inbox;
pub mod metrics;
pub mod policy;
pub mod program;
pub mod protocol;
pub mod trace;
pub mod types;

pub use app::{AppState, DetMode};
pub use cluster::ClusterMap;
pub use engine::{
    Ctx, InFlightMsg, LogDelta, RankSnapshot, RemoteEnvelope, RunReport, RunStatus, ShardOutcome,
    Sim, SimConfig,
};
pub use failure::{
    Cascade, CorrelatedCluster, FailureEvent, FailureModel, FixedSchedule, PoissonPerRank,
};
pub use inbox::{Arrived, Inbox};
pub use metrics::Metrics;
pub use policy::{
    CheckpointPolicy, CheckpointPolicyConfig, LogPressure, Periodic, PolicyObs, YoungDaly,
};
pub use program::{
    Application, GenProgram, Op, OpStream, OpTemplate, Program, RankProgram, UnrolledProgram,
};
pub use protocol::{NullProtocol, Protocol, SendAction, SendDirective, SendInfo};
pub use trace::{CommMatrix, Trace};
pub use types::{ChannelId, Endpoint, Message, PbMeta, Rank, Tag};
// Observability layer (DESIGN.md §2.5): protocols and drivers attach
// recorders through [`Sim::set_recorder`] / [`Ctx::recorder`].
pub use telemetry::{Fanout, Gauges, NoopRecorder, Recorder, RecoveryPhase, StorageDir};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::app::DetMode;
    pub use crate::cluster::ClusterMap;
    pub use crate::engine::{Ctx, RunReport, RunStatus, Sim, SimConfig};
    pub use crate::failure::{
        Cascade, CorrelatedCluster, FailureEvent, FailureModel, FixedSchedule, PoissonPerRank,
    };
    pub use crate::program::{
        Application, GenProgram, Op, OpStream, OpTemplate, Program, RankProgram, UnrolledProgram,
    };
    pub use crate::protocol::{NullProtocol, Protocol, SendAction, SendDirective, SendInfo};
    pub use crate::types::{ChannelId, Endpoint, Message, PbMeta, Rank, Tag};
    pub use det_sim::{SimDuration, SimTime};
}
