//! Fault-tolerance protocol hook interface.
//!
//! A [`Protocol`] implementation rides along with the simulated runtime and
//! sees every send and delivery, can exchange control messages (priced like
//! real network traffic, FIFO-ordered with application messages on the same
//! channel), can checkpoint/restore rank state, gate sends, and drive
//! recovery after injected failures. HydEE and all baseline protocols are
//! implemented against this interface; [`NullProtocol`] is the native
//! (no fault tolerance) stand-in used as the performance reference.

use crate::engine::Ctx;
use crate::types::{Endpoint, Message, PbMeta, Rank, Tag};
use det_sim::SimDuration;

/// Everything a protocol needs to know about a send that is about to
/// happen. `channel_seq` and `payload` are the stable identity the trace
/// oracle uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendInfo {
    pub src: Rank,
    pub dst: Rank,
    pub tag: Tag,
    pub bytes: u64,
    pub channel_seq: u64,
    pub payload: u64,
}

/// What the engine should do with a send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Transmit the message.
    Proceed,
    /// Consume the send operation without transmitting (HydEE's orphan
    /// suppression: send-determinism guarantees the receiver already holds
    /// an identical message).
    Suppress,
    /// Do not execute the send yet; the rank blocks until the protocol
    /// reopens its send gate.
    Gate,
}

/// Protocol decision for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendDirective {
    pub action: SendAction,
    /// Metadata stamped on the message (HydEE: sender date and phase).
    pub meta: PbMeta,
    /// Extra bytes piggybacked inline on the wire message.
    pub extra_wire_bytes: u64,
    /// Extra CPU time charged to the sender (separate piggyback message,
    /// non-overlapped log copy, determinant write, ...).
    pub extra_sender_time: SimDuration,
}

impl SendDirective {
    /// Transmit unchanged, no metadata, no overhead.
    pub fn passthrough() -> Self {
        SendDirective {
            action: SendAction::Proceed,
            meta: PbMeta::default(),
            extra_wire_bytes: 0,
            extra_sender_time: SimDuration::ZERO,
        }
    }

    pub fn gate() -> Self {
        SendDirective {
            action: SendAction::Gate,
            ..Self::passthrough()
        }
    }

    pub fn suppress() -> Self {
        SendDirective {
            action: SendAction::Suppress,
            ..Self::passthrough()
        }
    }
}

/// A rollback-recovery (or null) protocol layered on the simulated runtime.
///
/// All methods have no-op defaults so a protocol only implements the hooks
/// it needs. Protocols must be deterministic: no wall-clock, no external
/// randomness (derive streams from `det_sim::DetRng` if needed).
pub trait Protocol: Sized {
    /// Control-message payload type exchanged between endpoints.
    type Ctl: Clone + std::fmt::Debug;

    /// Short name for reports (e.g. "hydee", "coordinated", "native").
    fn name(&self) -> &'static str;

    /// Called once before the first event; set up checkpoint timers here.
    fn init(&mut self, _ctx: &mut Ctx<'_, Self::Ctl>) {}

    /// Intercept an application send.
    fn on_send(&mut self, _ctx: &mut Ctx<'_, Self::Ctl>, _info: &SendInfo) -> SendDirective {
        SendDirective::passthrough()
    }

    /// An application message was delivered to `msg.dst`.
    fn on_deliver(&mut self, _ctx: &mut Ctx<'_, Self::Ctl>, _msg: &Message) {}

    /// A control message arrived at `to`.
    fn on_control(
        &mut self,
        _ctx: &mut Ctx<'_, Self::Ctl>,
        _to: Endpoint,
        _from: Endpoint,
        _ctl: Self::Ctl,
    ) {
    }

    /// A timer set via `ctx.set_timer` fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Ctl>, _id: u64) {}

    /// The given ranks just failed (fail-stop). Drive recovery from here.
    fn on_failure(&mut self, _ctx: &mut Ctx<'_, Self::Ctl>, _failed: &[Rank]) {}

    /// `rank` finished its program.
    fn on_done(&mut self, _ctx: &mut Ctx<'_, Self::Ctl>, _rank: Rank) {}
}

/// No fault tolerance at all: the native-MPICH2 performance reference.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProtocol;

impl Protocol for NullProtocol {
    type Ctl = ();

    fn name(&self) -> &'static str {
        "native"
    }
}
