//! Fault-injection models — the engine's stochastic failure surface.
//!
//! A [`FailureModel`] is a *deterministic, seed-driven generator* of
//! fail-stop failure events. The engine pulls from it lazily: one event
//! is outstanding at a time, and after that event fires the model is
//! asked for the next one (`next_after`). This replaces the materialised
//! `&[FailureEvent]` list that earlier revisions threaded positionally
//! through every run entry point, the same move `RankProgram` made for
//! op streams (DESIGN.md §2.2) — and it is what admits *stochastic*,
//! *correlated* and *cascading* failure regimes, which no finite
//! hand-written list can express.
//!
//! ## Contract (DESIGN.md §2.3)
//!
//! * **Determinism in the seed.** A model's construction parameters
//!   (including its seed) fully determine the event sequence. Driving the
//!   same model twice yields identical schedules; running the same
//!   scenario twice yields bit-for-bit identical digests. No model may
//!   consult wall-clock time, thread identity, or any other ambient
//!   state.
//! * **Laziness.** `next_after(prev)` is called once before the run
//!   (with [`SimTime::ZERO`]) and then once after each fired failure
//!   (with that failure's time). Events whose time is in the past are
//!   clamped to *now* by the engine, never dropped.
//! * **Monotonicity.** Returned times must be non-decreasing across
//!   calls. Ranks failing *concurrently* must share one
//!   [`FailureEvent`]; separate events model sequential failures.
//! * **Closed-form metadata.** [`FailureModel::expected_failures`]
//!   answers "how many failures should this run expect by `horizon`"
//!   without driving the generator, and
//!   [`FailureModel::descriptor`] is a stable identity string for
//!   records and baselines (two models with equal descriptors must
//!   produce equal schedules).
//!
//! The arithmetic below uses only IEEE-754 core operations (`+ - * /`,
//! comparisons, bit twiddling) — never `libm` (`ln`, `exp`, ...), whose
//! last-ulp behaviour differs across platforms and would leak into
//! failure times and then into the digest gate.

use crate::cluster::ClusterMap;
use crate::types::Rank;
use det_sim::{DetRng, SimDuration, SimTime};
use std::collections::VecDeque;

/// A fail-stop failure injection: `ranks` crash concurrently at `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureEvent {
    pub at: SimTime,
    pub ranks: Vec<Rank>,
}

impl FailureEvent {
    pub fn at_ms(ms: u64, ranks: Vec<Rank>) -> Self {
        FailureEvent {
            at: SimTime::from_ms(ms),
            ranks,
        }
    }

    pub fn at_us(us: u64, ranks: Vec<Rank>) -> Self {
        FailureEvent {
            at: SimTime::from_us(us),
            ranks,
        }
    }

    /// Descriptor fragment: exact picosecond time plus the rank list.
    fn descriptor(&self) -> String {
        let ranks = self
            .ranks
            .iter()
            .map(|r| r.0.to_string())
            .collect::<Vec<_>>()
            .join("+");
        format!("{}ps:r{ranks}", self.at.as_ps())
    }
}

/// Deterministic, seed-driven failure generator (object-safe).
///
/// See the [module docs](self) for the full contract.
pub trait FailureModel: Send + Sync {
    /// The next failure event at or after `prev` (the previously returned
    /// event's time; [`SimTime::ZERO`] on the first call), or `None` when
    /// the model is exhausted.
    fn next_after(&mut self, prev: SimTime) -> Option<FailureEvent>;

    /// Closed-form expected number of failure events injected by
    /// `horizon`, computed without driving the generator.
    fn expected_failures(&self, horizon: SimTime) -> f64;

    /// Stable identity string (records, baselines, scenario labels).
    /// Equal descriptors imply equal schedules.
    fn descriptor(&self) -> String;
}

/// Estimate the machine MTBF (mean time between failure *events*) from a
/// model's closed-form [`FailureModel::expected_failures`], without
/// driving the generator. Probes a geometric ladder of horizons and
/// keeps the highest implied rate: for a Poisson-family model any
/// horizon below its event cap recovers the true rate, while for a
/// fixed schedule the densest prefix wins (a single event at 195 ms
/// probes as one failure per ~1 s, not one per hour). Returns `None`
/// when no probe expects any failure — a clean run has no MTBF.
///
/// Deterministic: pure f64 ratios of integer picosecond horizons.
pub fn estimate_mtbf(model: &dyn FailureModel) -> Option<SimDuration> {
    const PROBES_PS: [u64; 9] = [
        1_000_000_000,         // 1 ms
        10_000_000_000,        // 10 ms
        100_000_000_000,       // 100 ms
        1_000_000_000_000,     // 1 s
        10_000_000_000_000,    // 10 s
        100_000_000_000_000,   // 100 s
        1_000_000_000_000_000, // 1000 s
        3_600_000_000_000_000, // 1 h
        // The full representable horizon (~213 days): a model whose
        // only events lie beyond every finite probe must still report
        // *some* failure rate — `None` means "no failures ever", and a
        // Young/Daly consumer would otherwise schedule no checkpoints
        // against a failure that IS coming.
        u64::MAX,
    ];
    let mut best_rate = 0.0f64; // events per picosecond
    for &h in &PROBES_PS {
        let expected = model.expected_failures(SimTime::from_ps(h));
        if expected > 0.0 {
            best_rate = best_rate.max(expected / h as f64);
        }
    }
    (best_rate > 0.0).then(|| SimDuration::from_ps((1.0 / best_rate) as u64))
}

// ---------------------------------------------------------------------------
// Deterministic exponential sampling
// ---------------------------------------------------------------------------

/// Natural logarithm over `(0, 1]`, built from IEEE core operations only
/// (frexp-style decomposition + atanh series), so the result is
/// bit-identical on every platform — unlike `f64::ln`, which routes to
/// the platform `libm`.
fn det_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x <= 1.0, "det_ln domain is (0, 1], got {x}");
    const LN2: f64 = core::f64::consts::LN_2;
    let bits = x.to_bits();
    let exp = (((bits >> 52) & 0x7ff) as i64) - 1023;
    // Re-bias the mantissa into [1, 2).
    let m = f64::from_bits((bits & ((1u64 << 52) - 1)) | (1023u64 << 52));
    // ln(m) = 2 atanh((m-1)/(m+1)); t <= 1/3 so the series gains ~0.95
    // decimal digits per term — 26 terms overshoot f64 precision.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut term = t;
    let mut sum = 0.0;
    let mut k = 1.0;
    for _ in 0..26 {
        sum += term / k;
        term *= t2;
        k += 2.0;
    }
    (exp as f64) * LN2 + 2.0 * sum
}

/// One exponential inter-arrival draw with the given mean, floored at
/// 1 ps so the sequence of failure times is strictly increasing.
fn exp_draw(rng: &mut DetRng, mean_ps: f64) -> SimDuration {
    let u = rng.gen_f64(); // [0, 1)
    let d = -det_ln(1.0 - u) * mean_ps;
    // `as` saturates on overflow — deterministic either way.
    SimDuration::from_ps((d as u64).max(1))
}

// ---------------------------------------------------------------------------
// FixedSchedule — the equivalence oracle
// ---------------------------------------------------------------------------

/// A hand-written failure list, kept as the equivalence oracle for the
/// lazy model-driven engine path: driving a [`FixedSchedule`] reproduces
/// the digests of the old eager `inject_failure` list bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct FixedSchedule {
    events: Vec<FailureEvent>,
    cursor: usize,
}

impl FixedSchedule {
    /// Events are replayed in time order (stable sort preserves the
    /// relative order of same-time entries).
    pub fn new(mut events: Vec<FailureEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FixedSchedule { events, cursor: 0 }
    }

    /// The empty schedule (clean run).
    pub fn none() -> Self {
        FixedSchedule::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl FailureModel for FixedSchedule {
    fn next_after(&mut self, _prev: SimTime) -> Option<FailureEvent> {
        let ev = self.events.get(self.cursor).cloned();
        self.cursor += ev.is_some() as usize;
        ev
    }

    fn expected_failures(&self, horizon: SimTime) -> f64 {
        self.events.iter().filter(|e| e.at <= horizon).count() as f64
    }

    fn descriptor(&self) -> String {
        if self.events.is_empty() {
            "none".into()
        } else {
            let inner = self
                .events
                .iter()
                .map(FailureEvent::descriptor)
                .collect::<Vec<_>>()
                .join(",");
            format!("fixed[{inner}]")
        }
    }
}

// ---------------------------------------------------------------------------
// PoissonPerRank
// ---------------------------------------------------------------------------

/// Independent exponential inter-arrival failures per rank (each rank an
/// MTBF of `mtbf`), realised as the equivalent superposed Poisson
/// process: aggregate rate `n_ranks / mtbf`, victim uniform per event.
#[derive(Debug, Clone)]
pub struct PoissonPerRank {
    n_ranks: u32,
    mtbf: SimDuration,
    seed: u64,
    max_failures: u32,
    emitted: u32,
    rng: DetRng,
}

impl PoissonPerRank {
    /// # Panics
    /// Panics if `n_ranks == 0` or `mtbf` is zero.
    pub fn new(n_ranks: usize, mtbf: SimDuration, seed: u64) -> Self {
        assert!(n_ranks > 0, "PoissonPerRank needs at least one rank");
        assert!(!mtbf.is_zero(), "PoissonPerRank needs a positive MTBF");
        PoissonPerRank {
            n_ranks: n_ranks as u32,
            mtbf,
            seed,
            max_failures: u32::MAX,
            emitted: 0,
            rng: DetRng::new(seed ^ 0x4661_494C_5053_4E31), // "FaILPSN1"
        }
    }

    /// Cap the number of injected events (bounds run time under small
    /// MTBFs; the cap is part of the descriptor).
    pub fn with_max_failures(mut self, max: u32) -> Self {
        self.max_failures = max;
        self
    }

    fn mean_gap_ps(&self) -> f64 {
        self.mtbf.as_ps() as f64 / self.n_ranks as f64
    }
}

impl FailureModel for PoissonPerRank {
    fn next_after(&mut self, prev: SimTime) -> Option<FailureEvent> {
        if self.emitted >= self.max_failures {
            return None;
        }
        self.emitted += 1;
        let mean = self.mean_gap_ps();
        let gap = exp_draw(&mut self.rng, mean);
        let victim = Rank(self.rng.gen_range(self.n_ranks as u64) as u32);
        Some(FailureEvent {
            at: prev + gap,
            ranks: vec![victim],
        })
    }

    fn expected_failures(&self, horizon: SimTime) -> f64 {
        let rate = horizon.as_ps() as f64 / self.mean_gap_ps();
        rate.min(self.max_failures as f64)
    }

    fn descriptor(&self) -> String {
        let max = if self.max_failures == u32::MAX {
            String::new()
        } else {
            format!(":max{}", self.max_failures)
        };
        format!(
            "poisson:mtbf{}ps:seed{}:n{}{max}",
            self.mtbf.as_ps(),
            self.seed,
            self.n_ranks
        )
    }
}

// ---------------------------------------------------------------------------
// CorrelatedCluster
// ---------------------------------------------------------------------------

/// Node/cluster-level failures: when a group fails, *all* of its ranks
/// crash concurrently — the paper's cluster-containment framing, where
/// the natural failure unit is a node or blade hosting several ranks.
/// Groups fail as a Poisson process with per-group MTBF `mtbf`.
#[derive(Debug, Clone)]
pub struct CorrelatedCluster {
    groups: Vec<Vec<Rank>>,
    mtbf: SimDuration,
    seed: u64,
    max_failures: u32,
    emitted: u32,
    rng: DetRng,
}

impl CorrelatedCluster {
    /// # Panics
    /// Panics if `groups` is empty, any group is empty, or `mtbf` is zero.
    pub fn new(groups: Vec<Vec<Rank>>, mtbf: SimDuration, seed: u64) -> Self {
        assert!(!groups.is_empty(), "CorrelatedCluster needs groups");
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "CorrelatedCluster groups must be non-empty"
        );
        assert!(!mtbf.is_zero(), "CorrelatedCluster needs a positive MTBF");
        CorrelatedCluster {
            groups,
            mtbf,
            seed,
            max_failures: u32::MAX,
            emitted: 0,
            rng: DetRng::new(seed ^ 0x4661_494C_434C_5531), // "FaILCLU1"
        }
    }

    /// Co-location taken from a [`ClusterMap`]: one failure group per
    /// cluster.
    pub fn from_cluster_map(map: &ClusterMap, mtbf: SimDuration, seed: u64) -> Self {
        let groups = (0..map.n_clusters() as u32)
            .map(|c| map.members(c).to_vec())
            .collect();
        CorrelatedCluster::new(groups, mtbf, seed)
    }

    pub fn with_max_failures(mut self, max: u32) -> Self {
        self.max_failures = max;
        self
    }

    fn mean_gap_ps(&self) -> f64 {
        self.mtbf.as_ps() as f64 / self.groups.len() as f64
    }
}

impl FailureModel for CorrelatedCluster {
    fn next_after(&mut self, prev: SimTime) -> Option<FailureEvent> {
        if self.emitted >= self.max_failures {
            return None;
        }
        self.emitted += 1;
        let mean = self.mean_gap_ps();
        let gap = exp_draw(&mut self.rng, mean);
        let g = self.rng.gen_range(self.groups.len() as u64) as usize;
        Some(FailureEvent {
            at: prev + gap,
            ranks: self.groups[g].clone(),
        })
    }

    fn expected_failures(&self, horizon: SimTime) -> f64 {
        let rate = horizon.as_ps() as f64 / self.mean_gap_ps();
        rate.min(self.max_failures as f64)
    }

    fn descriptor(&self) -> String {
        let max = if self.max_failures == u32::MAX {
            String::new()
        } else {
            format!(":max{}", self.max_failures)
        };
        format!(
            "cluster:mtbf{}ps:seed{}:g{}{max}",
            self.mtbf.as_ps(),
            self.seed,
            self.groups.len()
        )
    }
}

// ---------------------------------------------------------------------------
// Cascade
// ---------------------------------------------------------------------------

/// Follow-up failures within a window of each failure — the
/// failure-during-recovery regime (correlated infant mortality after a
/// repair, cooling/power events taking out neighbours, ...).
///
/// Wraps any base model generating *primary* failures. Every emitted
/// failure (primary or follow-up) spawns, with probability
/// `follow_prob`, one follow-up failure of a uniformly random rank at a
/// uniform offset in `(0, window]`; chains are depth-limited by
/// `max_chain` per primary.
pub struct Cascade {
    base: Box<dyn FailureModel>,
    n_ranks: u32,
    window: SimDuration,
    follow_prob: f64,
    max_chain: u32,
    seed: u64,
    rng: DetRng,
    /// Spawned follow-ups not yet emitted, time-ascending, with their
    /// chain depth.
    pending: VecDeque<(FailureEvent, u32)>,
    /// Peeked-but-unemitted base event.
    base_peek: Option<FailureEvent>,
    base_done: bool,
    last_base_at: SimTime,
}

impl Cascade {
    /// # Panics
    /// Panics if `n_ranks == 0` or `window` is zero.
    pub fn new(
        base: Box<dyn FailureModel>,
        n_ranks: usize,
        window: SimDuration,
        follow_prob: f64,
        seed: u64,
    ) -> Self {
        assert!(n_ranks > 0, "Cascade needs at least one rank");
        assert!(!window.is_zero(), "Cascade needs a positive window");
        Cascade {
            base,
            n_ranks: n_ranks as u32,
            window,
            follow_prob: follow_prob.clamp(0.0, 1.0),
            max_chain: 4,
            seed,
            rng: DetRng::new(seed ^ 0x4661_494C_4353_4431), // "FaILCSD1"
            pending: VecDeque::new(),
            base_peek: None,
            base_done: false,
            last_base_at: SimTime::ZERO,
        }
    }

    /// Limit follow-up chain depth per primary failure (default 4).
    pub fn with_max_chain(mut self, max_chain: u32) -> Self {
        self.max_chain = max_chain;
        self
    }

    /// Emitted failure at `depth` spawns (maybe) one deeper follow-up.
    fn maybe_spawn_follow(&mut self, ev: &FailureEvent, depth: u32) {
        if depth >= self.max_chain || !self.rng.gen_bool(self.follow_prob) {
            return;
        }
        let offset = SimDuration::from_ps(1 + self.rng.gen_range(self.window.as_ps().max(1)));
        let victim = Rank(self.rng.gen_range(self.n_ranks as u64) as u32);
        let follow = FailureEvent {
            at: ev.at + offset,
            ranks: vec![victim],
        };
        // Insert keeping `pending` time-ascending (stable after equal
        // times: new events go behind existing ones).
        let pos = self.pending.partition_point(|(p, _)| p.at <= follow.at);
        self.pending.insert(pos, (follow, depth + 1));
    }
}

impl FailureModel for Cascade {
    fn next_after(&mut self, _prev: SimTime) -> Option<FailureEvent> {
        if self.base_peek.is_none() && !self.base_done {
            match self.base.next_after(self.last_base_at) {
                Some(e) => {
                    self.last_base_at = e.at;
                    self.base_peek = Some(e);
                }
                None => self.base_done = true,
            }
        }
        let take_pending = match (self.pending.front(), &self.base_peek) {
            (Some((p, _)), Some(b)) => p.at <= b.at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (ev, depth) = if take_pending {
            self.pending.pop_front().expect("checked front")
        } else {
            (self.base_peek.take().expect("checked peek"), 0)
        };
        self.maybe_spawn_follow(&ev, depth);
        Some(ev)
    }

    fn expected_failures(&self, horizon: SimTime) -> f64 {
        // Each failure spawns `follow_prob` expected follow-ups up to
        // depth `max_chain`: a truncated geometric multiplier on the
        // base's expectation.
        let p = self.follow_prob;
        let chain: f64 = (0..=self.max_chain).map(|d| p.powi(d as i32)).sum();
        self.base.expected_failures(horizon) * chain
    }

    fn descriptor(&self) -> String {
        // `{}` on f64 prints the shortest representation that parses
        // back to the same bits — injective, unlike a fixed precision.
        format!(
            "cascade[{}]:p{}:window{}ps:chain{}:seed{}:n{}",
            self.base.descriptor(),
            self.follow_prob,
            self.window.as_ps(),
            self.max_chain,
            self.seed,
            self.n_ranks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(model: &mut dyn FailureModel, limit: usize) -> Vec<FailureEvent> {
        let mut out = Vec::new();
        let mut prev = SimTime::ZERO;
        while out.len() < limit {
            match model.next_after(prev) {
                Some(ev) => {
                    prev = ev.at;
                    out.push(ev);
                }
                None => break,
            }
        }
        out
    }

    #[test]
    fn mtbf_estimate_recovers_the_poisson_rate() {
        // 100 ranks x 10 s MTBF each: one event per 100 ms.
        let m = PoissonPerRank::new(100, SimDuration::from_secs(10), 1);
        let est = estimate_mtbf(&m).unwrap();
        let want = SimDuration::from_ms(100).as_ps() as f64;
        assert!((est.as_ps() as f64 - want).abs() / want < 1e-9, "{est:?}");
        // A capped model still probes its uncapped prefix rate.
        let capped = PoissonPerRank::new(100, SimDuration::from_secs(10), 1).with_max_failures(2);
        let est = estimate_mtbf(&capped).unwrap();
        assert!((est.as_ps() as f64 - want).abs() / want < 1e-9, "{est:?}");
        // Fixed schedules and clean runs.
        let fixed = FixedSchedule::new(vec![FailureEvent::at_ms(195, vec![Rank(0)])]);
        let est = estimate_mtbf(&fixed).unwrap();
        assert_eq!(est, SimDuration::from_secs(1), "densest probe horizon wins");
        assert!(estimate_mtbf(&FixedSchedule::none()).is_none());
        // An event beyond every finite probe must still yield a (huge)
        // MTBF, not None: a failure is coming, and "no failures ever"
        // would tell a Young/Daly consumer to never checkpoint.
        let late = FixedSchedule::new(vec![FailureEvent {
            at: SimTime::from_secs(2 * 3600),
            ranks: vec![Rank(0)],
        }]);
        let est = estimate_mtbf(&late).expect("a scheduled failure has a rate");
        assert_eq!(est, SimDuration::from_ps(u64::MAX));
    }

    #[test]
    fn det_ln_matches_reference_values() {
        // Spot-check against libm (tolerance, not bit-equality: the whole
        // point of det_ln is that *it* is the portable one).
        for x in [1.0, 0.5, 0.25, 0.9999, 1e-3, 1e-9, f64::MIN_POSITIVE] {
            let got = det_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= want.abs() * 1e-14 + 1e-14,
                "ln({x}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn fixed_schedule_replays_in_time_order() {
        let mut m = FixedSchedule::new(vec![
            FailureEvent::at_ms(5, vec![Rank(1)]),
            FailureEvent::at_ms(2, vec![Rank(0), Rank(3)]),
        ]);
        let evs = drain(&mut m, 10);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at, SimTime::from_ms(2));
        assert_eq!(evs[1].at, SimTime::from_ms(5));
        assert_eq!(m.descriptor(), "fixed[2000000000ps:r0+3,5000000000ps:r1]");
        assert_eq!(FixedSchedule::none().descriptor(), "none");
    }

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let mut a = PoissonPerRank::new(64, SimDuration::from_ms(100), 42);
        let mut b = PoissonPerRank::new(64, SimDuration::from_ms(100), 42);
        let ea = drain(&mut a, 50);
        let eb = drain(&mut b, 50);
        assert_eq!(ea, eb);
        assert!(ea.windows(2).all(|w| w[0].at < w[1].at));
        assert!(ea.iter().all(|e| e.ranks.len() == 1 && e.ranks[0].0 < 64));
        let mut c = PoissonPerRank::new(64, SimDuration::from_ms(100), 43);
        assert_ne!(drain(&mut c, 50), ea, "different seed, different stream");
    }

    #[test]
    fn poisson_max_failures_caps_the_stream() {
        let mut m = PoissonPerRank::new(8, SimDuration::from_ms(1), 7).with_max_failures(3);
        assert_eq!(drain(&mut m, 100).len(), 3);
        assert_eq!(
            m.expected_failures(SimTime::from_secs(3600)),
            3.0,
            "expectation respects the cap"
        );
    }

    #[test]
    fn poisson_expectation_matches_rate() {
        let m = PoissonPerRank::new(100, SimDuration::from_secs(10), 1);
        // Aggregate rate 100/10s = 10/s: expect ~20 failures in 2 s.
        let e = m.expected_failures(SimTime::from_secs(2));
        assert!((e - 20.0).abs() < 1e-9, "{e}");
        // Empirical check on the generator itself.
        let mut m = PoissonPerRank::new(100, SimDuration::from_secs(10), 1);
        let evs = drain(&mut m, 100_000);
        let horizon = SimTime::from_secs(2);
        let n = evs.iter().filter(|e| e.at <= horizon).count();
        assert!(
            (10..=32).contains(&n),
            "got {n} failures in 2s, expected ~20"
        );
    }

    #[test]
    fn correlated_cluster_fails_whole_groups() {
        let map = ClusterMap::blocks(16, 4);
        let mut m = CorrelatedCluster::from_cluster_map(&map, SimDuration::from_ms(50), 9);
        let evs = drain(&mut m, 20);
        assert_eq!(evs.len(), 20);
        for e in &evs {
            assert_eq!(e.ranks.len(), 4, "a whole group fails at once");
            let c = map.cluster_of(e.ranks[0]);
            assert!(e.ranks.iter().all(|&r| map.cluster_of(r) == c));
        }
    }

    #[test]
    fn cascade_spawns_followups_within_window() {
        let base = FixedSchedule::new(vec![FailureEvent::at_ms(10, vec![Rank(0)])]);
        let window = SimDuration::from_us(500);
        let mut m = Cascade::new(Box::new(base), 8, window, 1.0, 3).with_max_chain(2);
        let evs = drain(&mut m, 10);
        // p = 1.0, chain depth 2: primary + exactly two follow-ups.
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at, SimTime::from_ms(10));
        for w in evs.windows(2) {
            assert!(w[1].at > w[0].at);
            assert!(w[1].at <= w[0].at + window, "follow-up outside window");
        }
    }

    #[test]
    fn cascade_with_zero_probability_is_the_base_model() {
        let mk_base = || {
            FixedSchedule::new(vec![
                FailureEvent::at_ms(1, vec![Rank(0)]),
                FailureEvent::at_ms(2, vec![Rank(1)]),
            ])
        };
        let mut cascade = Cascade::new(Box::new(mk_base()), 4, SimDuration::from_ms(1), 0.0, 5);
        let mut base = mk_base();
        assert_eq!(drain(&mut cascade, 10), drain(&mut base, 10));
    }

    #[test]
    fn cascade_expectation_is_truncated_geometric() {
        let base = FixedSchedule::new(vec![FailureEvent::at_ms(1, vec![Rank(0)])]);
        let m = Cascade::new(Box::new(base), 4, SimDuration::from_ms(1), 0.5, 5).with_max_chain(2);
        // 1 * (1 + 0.5 + 0.25)
        assert!((m.expected_failures(SimTime::from_secs(1)) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn descriptors_are_stable_and_distinct() {
        let a = PoissonPerRank::new(64, SimDuration::from_ms(100), 42);
        let b = PoissonPerRank::new(64, SimDuration::from_ms(100), 43);
        let c = CorrelatedCluster::new(vec![vec![Rank(0)]], SimDuration::from_ms(100), 42);
        assert_ne!(a.descriptor(), b.descriptor());
        assert_ne!(a.descriptor(), c.descriptor());
        assert_eq!(
            a.descriptor(),
            PoissonPerRank::new(64, SimDuration::from_ms(100), 42).descriptor()
        );
        // The cascade's own seed drives follow-up draws, so it must be
        // part of the identity even when the base is identical.
        let cascade = |seed| {
            Cascade::new(
                Box::new(FixedSchedule::new(vec![FailureEvent::at_ms(
                    1,
                    vec![Rank(0)],
                )])),
                8,
                SimDuration::from_ms(1),
                0.5,
                seed,
            )
        };
        assert_ne!(cascade(1).descriptor(), cascade(2).descriptor());
        assert_eq!(cascade(1).descriptor(), cascade(1).descriptor());
    }
}
