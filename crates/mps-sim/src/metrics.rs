//! Run metrics collected by the engine and by protocols.

use det_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Counters accumulated over a run. Engine-owned fields are filled by the
//  simulator; `logged_*`, `checkpoint_*` and recovery fields are written by
/// the fault-tolerance protocol through its context.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    // ---- engine-owned ----
    /// Application messages transmitted (excludes suppressed sends).
    pub app_messages: u64,
    /// Application payload bytes transmitted.
    pub app_bytes: u64,
    /// Bytes actually put on the wire (payload + inline piggyback).
    pub wire_bytes: u64,
    /// Protocol control messages transmitted.
    pub ctl_messages: u64,
    /// Protocol control bytes transmitted.
    pub ctl_bytes: u64,
    /// Application messages delivered.
    pub deliveries: u64,
    /// Events processed by the engine.
    pub events: u64,

    // ---- protocol-owned ----
    /// Messages currently held in sender-side logs.
    pub logged_messages: u64,
    /// Bytes currently held in sender-side logs.
    pub logged_bytes: u64,
    /// High-water mark of `logged_bytes`.
    pub logged_bytes_peak: u64,
    /// Total bytes ever logged (ignores garbage collection).
    pub logged_bytes_cumulative: u64,
    /// Log entries reclaimed by garbage collection.
    pub gc_reclaimed_messages: u64,
    /// Log bytes reclaimed by garbage collection.
    pub gc_reclaimed_bytes: u64,
    /// Checkpoints taken (per-rank count).
    pub checkpoints: u64,
    /// Bytes written to stable storage for checkpoints.
    pub checkpoint_bytes: u64,
    /// Simulated compute spent taking checkpoints (coordination +
    /// storage write), summed over ranks — the overhead side of the
    /// checkpoint-interval trade-off (`lost_work` is the other side).
    pub checkpoint_time: SimDuration,
    /// Number of injected failure events.
    pub failures: u64,
    /// Ranks hit by failure events (with multiplicity: an event failing
    /// 3 ranks concurrently counts 3).
    pub failed_ranks: u64,
    /// Ranks rolled back across all failures (with multiplicity).
    pub ranks_rolled_back: u64,
    /// Simulated compute discarded by rollbacks: for each rolled-back
    /// rank, the span from its restored checkpoint's cut to the failure
    /// (summed over ranks and failures).
    pub lost_work: SimDuration,
    /// Sends suppressed as orphans during recovery.
    pub suppressed_sends: u64,
    /// Logged messages replayed during recovery.
    pub replayed_messages: u64,
    /// Bytes replayed from logs during recovery.
    pub replayed_bytes: u64,
    /// Wall-clock (virtual) time spent in recovery, summed over failures.
    pub recovery_time: SimDuration,

    // ---- finalised by the engine at completion ----
    /// Completion time: max rank clock when the last rank finished.
    pub makespan: SimTime,
}

impl Metrics {
    /// Mean fraction of the machine rolled back per failure event:
    /// `ranks_rolled_back / (failures * n_ranks)`, 0 for clean runs. The
    /// single definition of the containment headline number — records
    /// and perf baselines must agree on it.
    pub fn rollback_rank_fraction(&self, n_ranks: usize) -> f64 {
        if self.failures == 0 || n_ranks == 0 {
            0.0
        } else {
            self.ranks_rolled_back as f64 / (self.failures * n_ranks as u64) as f64
        }
    }

    /// Fraction of the machine's gross compute (`n_ranks × makespan`)
    /// spent on fault-tolerance waste: checkpoint overhead plus work
    /// discarded by rollbacks. 0 for clean, checkpoint-free runs. The
    /// single definition of the §VI waste/efficiency frontier number —
    /// records and perf baselines must agree on it.
    pub fn waste_fraction(&self, n_ranks: usize) -> f64 {
        let gross = self.makespan.as_ps() as u128 * n_ranks as u128;
        if gross == 0 {
            return 0.0;
        }
        let waste = self.checkpoint_time.as_ps() as u128 + self.lost_work.as_ps() as u128;
        (waste as f64 / gross as f64).min(1.0)
    }

    /// `1 - waste_fraction`: the useful fraction of the machine.
    pub fn efficiency(&self, n_ranks: usize) -> f64 {
        1.0 - self.waste_fraction(n_ranks)
    }

    /// Record `bytes` added to a sender log.
    pub fn log_append(&mut self, bytes: u64) {
        self.logged_messages += 1;
        self.logged_bytes += bytes;
        self.logged_bytes_cumulative += bytes;
        self.logged_bytes_peak = self.logged_bytes_peak.max(self.logged_bytes);
    }

    /// Record `messages` log entries totalling `bytes` reclaimed by GC.
    pub fn log_reclaim(&mut self, messages: u64, bytes: u64) {
        self.gc_reclaimed_messages += messages;
        self.gc_reclaimed_bytes += bytes;
        self.logged_messages = self.logged_messages.saturating_sub(messages);
        self.logged_bytes = self.logged_bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_append_tracks_peak() {
        let mut m = Metrics::default();
        m.log_append(100);
        m.log_append(50);
        assert_eq!(m.logged_bytes, 150);
        assert_eq!(m.logged_bytes_peak, 150);
        m.log_reclaim(1, 100);
        assert_eq!(m.logged_bytes, 50);
        assert_eq!(m.logged_bytes_peak, 150, "peak survives reclaim");
        assert_eq!(m.logged_bytes_cumulative, 150);
        m.log_append(25);
        assert_eq!(m.logged_bytes_peak, 150);
        assert_eq!(m.logged_bytes_cumulative, 175);
    }

    #[test]
    fn waste_fraction_sums_overhead_and_lost_work() {
        let mut m = Metrics::default();
        assert_eq!(m.waste_fraction(8), 0.0, "no makespan yet");
        m.makespan = SimTime::from_secs(10);
        assert_eq!(m.waste_fraction(8), 0.0, "clean run wastes nothing");
        m.checkpoint_time = SimDuration::from_secs(8); // 10% of 8 x 10s
        m.lost_work = SimDuration::from_secs(16); // 20%
        assert!((m.waste_fraction(8) - 0.3).abs() < 1e-12);
        assert!((m.efficiency(8) - 0.7).abs() < 1e-12);
        // Degenerate accounting can never report > 100% waste.
        m.lost_work = SimDuration::from_secs(1_000_000);
        assert_eq!(m.waste_fraction(8), 1.0);
    }

    #[test]
    fn degenerate_runs_never_produce_nan_or_inf() {
        // Zero-makespan (empty program) and zero-rank runs are legal
        // inputs to the derived ratios; every one must stay a finite,
        // in-range number so JSONL/CSV rows never carry NaN/inf.
        let mut m = Metrics {
            checkpoint_time: SimDuration::from_secs(3),
            lost_work: SimDuration::from_secs(4),
            failures: 2,
            ranks_rolled_back: 5,
            ..Default::default()
        };
        for n_ranks in [0usize, 8] {
            // makespan still zero here: gross compute is 0 either way.
            assert_eq!(m.waste_fraction(n_ranks), 0.0);
            assert_eq!(m.efficiency(n_ranks), 1.0);
        }
        m.makespan = SimTime::from_secs(10);
        assert_eq!(m.waste_fraction(0), 0.0, "zero ranks: gross compute 0");
        assert_eq!(m.efficiency(0), 1.0);
        assert_eq!(m.rollback_rank_fraction(0), 0.0);
        m.failures = 0;
        assert_eq!(m.rollback_rank_fraction(8), 0.0, "clean run");
        for n_ranks in [0usize, 1, 8] {
            for v in [
                m.waste_fraction(n_ranks),
                m.efficiency(n_ranks),
                m.rollback_rank_fraction(n_ranks),
            ] {
                assert!(v.is_finite(), "non-finite ratio for n_ranks={n_ranks}");
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn reclaim_saturates() {
        let mut m = Metrics::default();
        m.log_append(10);
        m.log_reclaim(5, 100);
        assert_eq!(m.logged_bytes, 0);
        assert_eq!(m.logged_messages, 0);
    }
}
