//! Application state model: payload generation and state digests.
//!
//! Real payloads are not materialised. Instead:
//!
//! * every sent message carries a deterministic 64-bit **payload digest**;
//! * every rank folds the digests it receives into a running **state
//!   digest**.
//!
//! The fold comes in two flavours, mirroring the paper's §II-B taxonomy:
//!
//! * [`DetMode::SendDeterministic`] — payloads depend only on the message's
//!   channel identity and per-channel sequence number, and the state fold is
//!   *commutative*. Reordering wildcard deliveries changes nothing
//!   observable: this models the send-deterministic applications HydEE
//!   targets (the sequence of messages sent by each process is the same in
//!   any correct execution).
//! * [`DetMode::OrderSensitive`] — payloads are chained through the state
//!   digest, so the content of a sent message depends on the *order* of
//!   prior deliveries. This models non-send-deterministic applications
//!   (e.g. master/worker) and is used by tests to demonstrate where HydEE's
//!   assumption is load-bearing.

use crate::types::{mix2, mix64, Rank};
use serde::{Deserialize, Serialize};

/// Determinism class of the simulated application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DetMode {
    /// Sent payloads are independent of receive order (paper's Definition 3).
    #[default]
    SendDeterministic,
    /// Sent payloads depend on receive order (violates send-determinism).
    OrderSensitive,
}

/// Per-rank application state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppState {
    pub mode: DetMode,
    /// Running digest of everything delivered so far.
    pub digest: u64,
    /// Count of deliveries folded into `digest`.
    pub delivered: u64,
}

impl AppState {
    pub fn new(rank: Rank, mode: DetMode) -> Self {
        AppState {
            mode,
            digest: mix64(0x5EED_0000_0000_0000 ^ rank.0 as u64),
            delivered: 0,
        }
    }

    /// Payload digest for the `channel_seq`-th message on channel
    /// `src -> dst`.
    ///
    /// In send-deterministic mode this is a pure function of the channel
    /// and sequence number — by construction the same message is sent in
    /// any execution, whatever the interleaving. In order-sensitive mode
    /// the current state digest (which encodes delivery order) is mixed in.
    pub fn payload_for_send(&self, src: Rank, dst: Rank, channel_seq: u64) -> u64 {
        let base = mix2(mix2(src.0 as u64 + 1, dst.0 as u64 + 1), channel_seq);
        match self.mode {
            DetMode::SendDeterministic => base,
            DetMode::OrderSensitive => mix2(base, self.digest),
        }
    }

    /// Fold a delivered payload into the state digest.
    pub fn deliver(&mut self, payload: u64) {
        self.delivered += 1;
        match self.mode {
            DetMode::SendDeterministic => {
                // Commutative + associative fold: wrapping sum of mixed
                // payloads. Delivery order is unobservable.
                self.digest = self.digest.wrapping_add(mix64(payload));
            }
            DetMode::OrderSensitive => {
                // Order-chaining fold: digest depends on the sequence.
                self.digest = mix2(self.digest, payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_det_payload_ignores_state() {
        let mut a = AppState::new(Rank(0), DetMode::SendDeterministic);
        let before = a.payload_for_send(Rank(0), Rank(1), 3);
        a.deliver(12345);
        a.deliver(67890);
        let after = a.payload_for_send(Rank(0), Rank(1), 3);
        assert_eq!(before, after);
    }

    #[test]
    fn order_sensitive_payload_tracks_state() {
        let mut a = AppState::new(Rank(0), DetMode::OrderSensitive);
        let before = a.payload_for_send(Rank(0), Rank(1), 3);
        a.deliver(12345);
        let after = a.payload_for_send(Rank(0), Rank(1), 3);
        assert_ne!(before, after);
    }

    #[test]
    fn send_det_fold_is_commutative() {
        let mut a = AppState::new(Rank(5), DetMode::SendDeterministic);
        let mut b = AppState::new(Rank(5), DetMode::SendDeterministic);
        a.deliver(111);
        a.deliver(222);
        a.deliver(333);
        b.deliver(333);
        b.deliver(111);
        b.deliver(222);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.delivered, 3);
    }

    #[test]
    fn order_sensitive_fold_is_not_commutative() {
        let mut a = AppState::new(Rank(5), DetMode::OrderSensitive);
        let mut b = AppState::new(Rank(5), DetMode::OrderSensitive);
        a.deliver(111);
        a.deliver(222);
        b.deliver(222);
        b.deliver(111);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn distinct_ranks_distinct_seeds() {
        let a = AppState::new(Rank(0), DetMode::SendDeterministic);
        let b = AppState::new(Rank(1), DetMode::SendDeterministic);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn payload_distinguishes_channel_and_seq() {
        let a = AppState::new(Rank(0), DetMode::SendDeterministic);
        let p1 = a.payload_for_send(Rank(0), Rank(1), 1);
        let p2 = a.payload_for_send(Rank(0), Rank(1), 2);
        let p3 = a.payload_for_send(Rank(0), Rank(2), 1);
        let p4 = a.payload_for_send(Rank(1), Rank(0), 1);
        assert!(p1 != p2 && p1 != p3 && p1 != p4 && p3 != p4);
    }
}
