//! Core identifiers and message types of the simulated machine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A process (MPI rank) in the simulated application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Message tag, used for matching like MPI tags. Workload generators use
/// tags to separate communication epochs so that wildcard receives can
/// never steal a message from a later iteration (see `DESIGN.md` §3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tag(pub u32);

/// A communication endpoint: an application rank or an auxiliary protocol
/// entity (e.g. HydEE's recovery process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    Rank(Rank),
    /// Auxiliary protocol entity; id space is protocol-defined.
    Aux(u32),
}

impl From<Rank> for Endpoint {
    fn from(r: Rank) -> Self {
        Endpoint::Rank(r)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Rank(r) => write!(f, "{r}"),
            Endpoint::Aux(a) => write!(f, "aux{a}"),
        }
    }
}

/// A directed application channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId {
    pub src: Rank,
    pub dst: Rank,
}

/// Protocol metadata piggybacked on application messages.
///
/// HydEE stamps every message with the sender's `(date, phase)`
/// (Algorithm 1, line 9). Baseline protocols may leave this at default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct PbMeta {
    /// Sender's event date at the send (per-process event counter).
    pub date: u64,
    /// Sender's phase at the send.
    pub phase: u64,
}

/// An application-level message.
///
/// Payload bytes are not materialised (class-D NAS moves hundreds of GB);
/// instead each message carries a deterministic 64-bit `payload` digest that
/// stands in for its content. Send-determinism oracles compare these
/// digests between executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    pub src: Rank,
    pub dst: Rank,
    pub tag: Tag,
    /// Application payload size in bytes (pre-piggyback).
    pub bytes: u64,
    /// Deterministic stand-in for the message content.
    pub payload: u64,
    /// Per-directed-channel sequence number (starts at 1).
    pub channel_seq: u64,
    /// Protocol piggyback.
    pub meta: PbMeta,
    /// True when this delivery is a replay of a logged message during
    /// recovery rather than a fresh application send.
    pub replayed: bool,
}

impl Message {
    pub fn channel(&self) -> ChannelId {
        ChannelId {
            src: self.src,
            dst: self.dst,
        }
    }

    /// Globally unique identity of the application message (stable across
    /// replay): channel plus per-channel sequence number.
    pub fn id(&self) -> (ChannelId, u64) {
        (self.channel(), self.channel_seq)
    }
}

/// Mixes bits thoroughly (SplitMix64 finaliser). Used for payload digests.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine two words into a digest.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_display_and_idx() {
        assert_eq!(Rank(7).to_string(), "P7");
        assert_eq!(Rank(7).idx(), 7);
    }

    #[test]
    fn endpoint_conversion() {
        let e: Endpoint = Rank(3).into();
        assert_eq!(e, Endpoint::Rank(Rank(3)));
        assert_eq!(e.to_string(), "P3");
        assert_eq!(Endpoint::Aux(0).to_string(), "aux0");
    }

    #[test]
    fn message_identity_is_channel_seq() {
        let m = Message {
            src: Rank(1),
            dst: Rank(2),
            tag: Tag(0),
            bytes: 100,
            payload: 42,
            channel_seq: 5,
            meta: PbMeta::default(),
            replayed: false,
        };
        assert_eq!(
            m.id(),
            (
                ChannelId {
                    src: Rank(1),
                    dst: Rank(2)
                },
                5
            )
        );
    }

    #[test]
    fn mix64_differs_on_nearby_inputs() {
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix2(1, 2), mix2(2, 1), "mix2 must not be symmetric");
    }
}
