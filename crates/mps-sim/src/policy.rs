//! Checkpoint-scheduling policies — when does a cluster checkpoint?
//!
//! The same move [`crate::FailureModel`] made for fault injection
//! (DESIGN.md §2.3), applied to checkpoint scheduling: protocols consume
//! an object-safe, *deterministic* generator instead of a bare
//! `Option<SimDuration>` interval. A [`CheckpointPolicy`] answers "when
//! should cluster `c` next checkpoint?" lazily, one decision at a time,
//! from observations ([`PolicyObs`]) the protocol supplies — which is
//! what admits *adaptive* schedules (Young/Daly intervals derived from
//! the run's failure rate and the measured checkpoint cost, log-memory
//! budgets) that no fixed interval can express.
//!
//! ## Contract (DESIGN.md §2.4)
//!
//! * **Determinism.** A policy's construction parameters plus the
//!   observation sequence fully determine its decisions. No wall clock,
//!   no ambient randomness; floating point is restricted to operations
//!   IEEE-754 defines exactly (`+ - * /`, `sqrt`), so decisions — and
//!   therefore digests — are machine-independent.
//! * **Laziness.** `next_for(cluster, now, obs)` is consulted at run
//!   start, after each of the cluster's checkpoints, when a recovery
//!   ends (deferred clusters re-arm from recovery completion, not from
//!   the stale pre-failure schedule), and — for [reactive](
//!   CheckpointPolicy::reactive) policies — when the cluster's
//!   observations change. It returns the next checkpoint time (clamped
//!   to `now` by the caller if in the past) or `None` for "no
//!   checkpoint scheduled".
//! * **Closed-form identity.** [`CheckpointPolicy::descriptor`] is a
//!   stable identity string for records and baselines: equal
//!   descriptors must imply equal schedules under equal observations.
//!
//! [`Periodic`] reproduces the historical `checkpoint_interval` +
//! `checkpoint_stagger` semantics bit-for-bit and is the equivalence
//! oracle for the policy-driven scheduling path.

use det_sim::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Observations a protocol supplies when consulting a policy. All fields
/// are per-cluster and deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyObs {
    /// Checkpoints this cluster has completed so far (0 before the
    /// first; the implicit cost-free t=0 checkpoint is not counted).
    pub checkpoints_taken: u64,
    /// Measured duration of this cluster's most recent checkpoint
    /// (coordination + storage write), `ZERO` before the first.
    pub last_cost: SimDuration,
    /// Closed-form estimate of one checkpoint's cost from the storage
    /// model and image size (used until a measurement exists).
    pub est_cost: SimDuration,
    /// Mean time between failures *of the domain this cluster
    /// checkpoints against*, estimated from the run's
    /// [`FailureModel`](crate::FailureModel) (`None`: no failures
    /// expected, e.g. a clean run). Containment protocols scale the
    /// machine MTBF up by their cluster count — a cluster checkpoint
    /// only insures against failures that roll that cluster back;
    /// global coordinated checkpointing passes the raw machine MTBF.
    pub mtbf: Option<SimDuration>,
    /// Sender-log bytes the cluster's members have accumulated since the
    /// cluster's last checkpoint.
    pub log_bytes_since_ckpt: u64,
}

/// Deterministic checkpoint scheduler (object-safe). See the
/// [module docs](self) for the full contract.
pub trait CheckpointPolicy: Send + Sync {
    /// The next checkpoint time for `cluster` at or after `now`, or
    /// `None` when no checkpoint should be scheduled under the current
    /// observations.
    fn next_for(&mut self, cluster: u32, now: SimTime, obs: &PolicyObs) -> Option<SimTime>;

    /// Stable identity string (records, baselines, scenario labels).
    fn descriptor(&self) -> String;

    /// Reactive policies are re-consulted whenever the cluster's
    /// observations change (log growth), not only at schedule points.
    /// Non-reactive policies (the default) cost nothing on the hot path.
    fn reactive(&self) -> bool {
        false
    }

    /// Should a checkpoint falling inside an active recovery be
    /// deferred to the recovery's completion? (All shipped policies say
    /// yes; a policy could checkpoint *through* recovery by overriding.)
    fn defer_during_recovery(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Periodic — the equivalence oracle
// ---------------------------------------------------------------------------

/// Fixed-interval scheduling with per-cluster stagger: cluster `c`'s
/// first checkpoint at `first + stagger * c`, then one `interval` after
/// each completion. Bit-for-bit equivalent to the historical
/// `checkpoint_interval`/`checkpoint_stagger` timer arithmetic, kept as
/// the equivalence oracle for the policy-driven path.
#[derive(Debug, Clone)]
pub struct Periodic {
    interval: SimDuration,
    first: SimTime,
    stagger: SimDuration,
    started: BTreeSet<u32>,
}

impl Periodic {
    pub fn new(interval: SimDuration, first: SimTime, stagger: SimDuration) -> Self {
        Periodic {
            interval,
            first,
            stagger,
            started: BTreeSet::new(),
        }
    }
}

impl CheckpointPolicy for Periodic {
    fn next_for(&mut self, cluster: u32, now: SimTime, _obs: &PolicyObs) -> Option<SimTime> {
        if self.started.insert(cluster) {
            Some(self.first + self.stagger * cluster as u64)
        } else {
            Some(now + self.interval)
        }
    }

    fn descriptor(&self) -> String {
        format!(
            "periodic:interval{}ps:first{}ps:stagger{}ps",
            self.interval.as_ps(),
            self.first.as_ps(),
            self.stagger.as_ps()
        )
    }
}

// ---------------------------------------------------------------------------
// YoungDaly
// ---------------------------------------------------------------------------

/// Young's first-order optimal interval, `W = sqrt(2 · C · MTBF)`,
/// re-derived after every checkpoint from the *measured* cost `C` of the
/// cluster's last checkpoint (the closed-form estimate until one exists)
/// and the machine MTBF the engine estimates from the run's
/// [`FailureModel`](crate::FailureModel). A run that expects no failures
/// (`mtbf = None`) schedules no checkpoints at all — the optimal
/// interval is infinite. First checkpoints are staggered per cluster
/// exactly like [`Periodic`], which is what keeps the I/O-burst
/// avoidance orthogonal to the interval choice.
///
/// `f64::sqrt` is correctly rounded by IEEE-754, so the derived interval
/// — and every digest downstream of it — is machine-independent.
#[derive(Debug, Clone)]
pub struct YoungDaly {
    first: SimTime,
    stagger: SimDuration,
    started: BTreeSet<u32>,
}

impl YoungDaly {
    pub fn new(first: SimTime, stagger: SimDuration) -> Self {
        YoungDaly {
            first,
            stagger,
            started: BTreeSet::new(),
        }
    }

    /// `sqrt(2 · C · MTBF)`, floored at the checkpoint cost itself (an
    /// interval shorter than one checkpoint would spend >50% of the run
    /// checkpointing) and at 1 µs (degenerate zero-cost models).
    fn interval(cost: SimDuration, mtbf: SimDuration) -> SimDuration {
        let w = (2.0 * cost.as_ps() as f64 * mtbf.as_ps() as f64).sqrt();
        // `as` saturates: deterministic for any finite input.
        SimDuration::from_ps(w as u64)
            .max(cost)
            .max(SimDuration::from_us(1))
    }
}

impl CheckpointPolicy for YoungDaly {
    fn next_for(&mut self, cluster: u32, now: SimTime, obs: &PolicyObs) -> Option<SimTime> {
        let mtbf = obs.mtbf?;
        if self.started.insert(cluster) {
            return Some(self.first + self.stagger * cluster as u64);
        }
        let cost = if obs.last_cost.is_zero() {
            obs.est_cost
        } else {
            obs.last_cost
        };
        Some(now + Self::interval(cost, mtbf))
    }

    fn descriptor(&self) -> String {
        format!(
            "young-daly:first{}ps:stagger{}ps",
            self.first.as_ps(),
            self.stagger.as_ps()
        )
    }
}

// ---------------------------------------------------------------------------
// LogPressure
// ---------------------------------------------------------------------------

/// Checkpoint when a cluster's sender logs have grown by `budget` bytes
/// since its last checkpoint — the paper's log-memory concern (§III-E /
/// the `log_memory` experiment) as a first-class schedule: clusters that
/// log nothing never checkpoint, clusters under heavy inter-cluster
/// traffic checkpoint exactly as often as their memory budget demands.
/// Reactive: the protocol re-consults it as logs grow, and it answers
/// `Some(now)` the moment the budget is crossed.
#[derive(Debug, Clone, Copy)]
pub struct LogPressure {
    budget_bytes: u64,
}

impl LogPressure {
    /// # Panics
    /// Panics if `budget_bytes` is zero (every send would checkpoint).
    pub fn new(budget_bytes: u64) -> Self {
        assert!(budget_bytes > 0, "LogPressure needs a positive budget");
        LogPressure { budget_bytes }
    }
}

impl CheckpointPolicy for LogPressure {
    fn next_for(&mut self, _cluster: u32, now: SimTime, obs: &PolicyObs) -> Option<SimTime> {
        (obs.log_bytes_since_ckpt >= self.budget_bytes).then_some(now)
    }

    fn descriptor(&self) -> String {
        format!("log-pressure:budget{}", self.budget_bytes)
    }

    fn reactive(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Data-level configuration
// ---------------------------------------------------------------------------

/// Declarative policy choice: plain data a protocol configuration can
/// hold (`Copy + PartialEq`, no trait objects), resolved per run into
/// the stateful [`CheckpointPolicy`] via [`CheckpointPolicyConfig::build`]
/// — the same spec-vs-generator split as
/// `scenario::FailureModelSpec` / [`crate::FailureModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicyConfig {
    /// No periodic checkpoints (only the implicit one at t=0).
    Disabled,
    /// Fixed interval; `first`/`stagger` default to the protocol's
    /// configured values when `None`.
    Periodic {
        interval: SimDuration,
        first: Option<SimTime>,
        stagger: Option<SimDuration>,
    },
    /// Young's optimal interval from measured cost × machine MTBF.
    YoungDaly {
        first: Option<SimTime>,
        stagger: Option<SimDuration>,
    },
    /// Checkpoint every `budget_bytes` of sender-log growth.
    LogPressure { budget_bytes: u64 },
}

impl CheckpointPolicyConfig {
    /// Resolve into the stateful policy for one run. `default_first` and
    /// `default_stagger` come from the protocol configuration
    /// (historically `first_checkpoint` / `checkpoint_stagger`).
    pub fn build(
        &self,
        default_first: SimTime,
        default_stagger: SimDuration,
    ) -> Option<Box<dyn CheckpointPolicy>> {
        match *self {
            CheckpointPolicyConfig::Disabled => None,
            CheckpointPolicyConfig::Periodic {
                interval,
                first,
                stagger,
            } => Some(Box::new(Periodic::new(
                interval,
                first.unwrap_or(default_first),
                stagger.unwrap_or(default_stagger),
            ))),
            CheckpointPolicyConfig::YoungDaly { first, stagger } => Some(Box::new(YoungDaly::new(
                first.unwrap_or(default_first),
                stagger.unwrap_or(default_stagger),
            ))),
            CheckpointPolicyConfig::LogPressure { budget_bytes } => {
                Some(Box::new(LogPressure::new(budget_bytes)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> PolicyObs {
        PolicyObs::default()
    }

    #[test]
    fn periodic_reproduces_first_stagger_then_interval() {
        let mut p = Periodic::new(
            SimDuration::from_ms(100),
            SimTime::from_ms(100),
            SimDuration::from_ms(50),
        );
        // First consult per cluster: first + stagger * c, regardless of now.
        assert_eq!(
            p.next_for(0, SimTime::ZERO, &obs()),
            Some(SimTime::from_ms(100))
        );
        assert_eq!(
            p.next_for(2, SimTime::ZERO, &obs()),
            Some(SimTime::from_ms(200))
        );
        // Re-arm: one interval after the supplied completion time.
        assert_eq!(
            p.next_for(0, SimTime::from_ms(103), &obs()),
            Some(SimTime::from_ms(203))
        );
        assert!(!p.reactive());
    }

    #[test]
    fn young_daly_derives_the_square_root_interval() {
        let mut y = YoungDaly::new(SimTime::from_ms(1), SimDuration::ZERO);
        let o = PolicyObs {
            mtbf: Some(SimDuration::from_secs(50)),
            last_cost: SimDuration::from_ms(1),
            ..PolicyObs::default()
        };
        // First arm is the staggered start.
        assert_eq!(y.next_for(0, SimTime::ZERO, &o), Some(SimTime::from_ms(1)));
        // W = sqrt(2 * 1ms * 50s) = sqrt(1e17 ps^2 * 1e3) ... exact:
        // 2 * 1e9 * 5e13 = 1e23, sqrt = 316227766016.8379 ps ~ 316 ms.
        let next = y.next_for(0, SimTime::from_ms(10), &o).unwrap();
        assert_eq!(next.as_ps() - SimTime::from_ms(10).as_ps(), 316_227_766_016);
    }

    #[test]
    fn young_daly_without_failures_schedules_nothing() {
        let mut y = YoungDaly::new(SimTime::from_ms(1), SimDuration::ZERO);
        assert_eq!(y.next_for(0, SimTime::ZERO, &obs()), None);
    }

    #[test]
    fn young_daly_floors_at_the_checkpoint_cost() {
        // Huge cost, tiny MTBF: sqrt term would be shorter than the
        // checkpoint itself.
        let cost = SimDuration::from_secs(10);
        let mtbf = SimDuration::from_ps(2);
        assert_eq!(YoungDaly::interval(cost, mtbf), cost);
    }

    #[test]
    fn young_daly_uses_estimate_until_measured() {
        let mut y = YoungDaly::new(SimTime::ZERO, SimDuration::ZERO);
        let mtbf = SimDuration::from_secs(2);
        let est = PolicyObs {
            mtbf: Some(mtbf),
            est_cost: SimDuration::from_ms(8),
            ..PolicyObs::default()
        };
        let measured = PolicyObs {
            last_cost: SimDuration::from_ms(2),
            ..est
        };
        y.next_for(0, SimTime::ZERO, &est); // consume the first-arm point
        let from_est = y.next_for(0, SimTime::ZERO, &est).unwrap();
        let from_measured = y.next_for(0, SimTime::ZERO, &measured).unwrap();
        assert_eq!(
            from_est,
            SimTime::from_ps(YoungDaly::interval(SimDuration::from_ms(8), mtbf).as_ps())
        );
        assert!(
            from_measured < from_est,
            "cheaper checkpoints, shorter interval"
        );
    }

    #[test]
    fn log_pressure_fires_exactly_at_the_budget() {
        let mut lp = LogPressure::new(1 << 20);
        assert!(lp.reactive());
        let now = SimTime::from_ms(7);
        let below = PolicyObs {
            log_bytes_since_ckpt: (1 << 20) - 1,
            ..PolicyObs::default()
        };
        let at = PolicyObs {
            log_bytes_since_ckpt: 1 << 20,
            ..PolicyObs::default()
        };
        assert_eq!(lp.next_for(0, now, &below), None);
        assert_eq!(lp.next_for(0, now, &at), Some(now));
    }

    #[test]
    fn config_builds_the_matching_policy() {
        let first = SimTime::from_ms(100);
        let stagger = SimDuration::from_ms(50);
        assert!(CheckpointPolicyConfig::Disabled
            .build(first, stagger)
            .is_none());
        let p = CheckpointPolicyConfig::Periodic {
            interval: SimDuration::from_ms(10),
            first: None,
            stagger: None,
        }
        .build(first, stagger)
        .unwrap();
        assert!(p.descriptor().starts_with("periodic:interval10000000000ps"));
        let y = CheckpointPolicyConfig::YoungDaly {
            first: Some(SimTime::from_ms(2)),
            stagger: None,
        }
        .build(first, stagger)
        .unwrap();
        assert_eq!(
            y.descriptor(),
            "young-daly:first2000000000ps:stagger50000000000ps"
        );
        let l = CheckpointPolicyConfig::LogPressure { budget_bytes: 4096 }
            .build(first, stagger)
            .unwrap();
        assert_eq!(l.descriptor(), "log-pressure:budget4096");
    }

    #[test]
    fn descriptors_are_distinct_across_parameters() {
        let d = |p: &dyn CheckpointPolicy| p.descriptor();
        let a = Periodic::new(SimDuration::from_ms(1), SimTime::ZERO, SimDuration::ZERO);
        let b = Periodic::new(SimDuration::from_ms(2), SimTime::ZERO, SimDuration::ZERO);
        let y = YoungDaly::new(SimTime::ZERO, SimDuration::ZERO);
        let l = LogPressure::new(1);
        let set: BTreeSet<String> = [d(&a), d(&b), d(&y), d(&l)].into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
