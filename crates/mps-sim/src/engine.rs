//! The discrete-event execution engine.
//!
//! Each rank interprets its program inside engine events. An `Exec` event
//! runs a rank forward — inline, advancing only its *local* clock — until
//! it blocks (unsatisfied receive), hits a closed send gate, yields after a
//! compute op, or finishes. Message arrivals, control messages, timers and
//! failures are separate events. All ordering is deterministic (see
//! `det_sim::Scheduler`).
//!
//! ## Timing model
//!
//! * A send charges the sender `cost.sender (+ protocol extras)` CPU time
//!   and schedules an arrival at `sender_clock + transit`, bumped so that
//!   arrivals on a directed channel are FIFO. Control messages share the
//!   FIFO order of application messages on the same channel — HydEE's
//!   `LastDate` correctness argument depends on this.
//! * A delivery charges the receiver `cost.receiver` CPU time.
//! * Because ranks run inline ahead of the global clock, a failure injected
//!   at time `T` takes effect at each victim's current local point; the
//!   execution is equivalent to one where the failure struck at
//!   `max(T, local_clock)`. This is documented engine semantics.
//!
//! ## What protocols can do
//!
//! See [`Ctx`]: charge CPU time, send control messages, capture/restore
//! rank snapshots and in-flight channel state, gate sends, replay logged
//! messages, set timers.

use crate::app::{AppState, DetMode};
use crate::failure::FailureModel;
use crate::inbox::Inbox;
use crate::metrics::Metrics;
use crate::program::{Application, Op, RankProgram};
use crate::protocol::{Protocol, SendAction, SendInfo};
use crate::trace::Trace;
use crate::types::{Endpoint, Message, Rank};
use det_sim::{EventHandle, FxHashMap, Scheduler, SimDuration, SimTime};
use net_model::{CostCache, LinkClass, MsgCost, MxModel, NetworkModel, Topology};
use std::collections::BTreeMap;
use std::sync::Arc;
use telemetry::{Gauges, Recorder};

/// Engine configuration. `Clone` so a sharded run can hand every shard
/// the same configuration (the network model is behind an `Arc`).
#[derive(Clone)]
pub struct SimConfig {
    pub det_mode: DetMode,
    pub network: Arc<dyn NetworkModel>,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
    /// Bytes assumed for control messages whose logical payload is small
    /// (rollback notifications, phase reports, ...).
    pub ctl_bytes_default: u64,
    /// Seeded delivery-order perturbation (DESIGN.md §2.8): when set, the
    /// tie-break key of same-timestamp message arrivals is replaced by a
    /// seeded hash, deterministically permuting the order in which
    /// concurrent deliveries on *different* channels are processed.
    /// Per-channel FIFO order is untouched (arrival times on a channel
    /// strictly increase), so send-deterministic digests and containment
    /// integers must be invariant across seeds — the fuzzing lever
    /// `tests/perturbation.rs` turns.
    pub perturb_seed: Option<u64>,
    /// Endpoint-aware pricing (DESIGN.md §2.9). `None` — the default and
    /// every legacy caller — prices all traffic on `network` alone, as
    /// the engine always did. When set, messages between ranks are
    /// priced by `topology.cost(src, dst, bytes)` instead; the topology
    /// must be built over the same base model as `network` (the
    /// scenario executor guarantees this), and its `Flat` kind is a
    /// bit-for-bit oracle of the `None` path. Traffic involving an
    /// auxiliary endpoint is always priced on the local link class.
    pub topology: Option<Arc<Topology>>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            det_mode: DetMode::SendDeterministic,
            network: Arc::new(MxModel::default()),
            max_events: 500_000_000,
            ctl_bytes_default: 32,
            perturb_seed: None,
            topology: None,
        }
    }
}

/// Tie-break key space for same-timestamp events (DESIGN.md §2.8): the
/// top byte is the event *class*, the low 56 bits identify the event
/// within its class. Keys are **content-derived** — a pure function of
/// what the event is, never of when it was inserted — which makes the
/// pop order of same-instant events identical whether they were
/// scheduled by one serial engine or injected across shard boundaries.
pub mod key {
    use super::{Endpoint, Rank};

    pub const CLASS_SHIFT: u32 = 56;
    pub const PAYLOAD_MASK: u64 = (1 << CLASS_SHIFT) - 1;
    pub const CLASS_EXEC: u64 = 0;
    pub const CLASS_APP: u64 = 1;
    pub const CLASS_CTL: u64 = 2;
    pub const CLASS_TIMER: u64 = 3;
    pub const CLASS_FAILURE: u64 = 4;

    #[inline]
    pub fn class(key: u64) -> u64 {
        key >> CLASS_SHIFT
    }

    #[inline]
    pub fn exec(rank: Rank, epoch: u32) -> u64 {
        // class 0: ranks run before same-instant arrivals/timers, ordered
        // by (rank, epoch).
        (CLASS_EXEC << CLASS_SHIFT) | ((rank.0 as u64) << 32) | epoch as u64
    }

    /// 28-bit endpoint encoding: ranks map to their id, aux endpoints
    /// above them.
    #[inline]
    fn endpoint(e: Endpoint) -> u64 {
        match e {
            Endpoint::Rank(r) => r.0 as u64,
            Endpoint::Aux(a) => (1 << 27) | a as u64,
        }
    }

    /// Arrival tie-break: receiver-major, then sender. `perturb` swaps
    /// the channel identity for a seeded hash (class bits preserved so
    /// app arrivals still sort before control arrivals).
    #[inline]
    pub fn arrival(ctl: bool, from: Endpoint, to: Endpoint, perturb: Option<u64>) -> u64 {
        let class = if ctl { CLASS_CTL } else { CLASS_APP };
        let mut payload = (endpoint(to) << 28) | endpoint(from);
        if let Some(seed) = perturb {
            payload = crate::types::mix64(seed ^ ((class << CLASS_SHIFT) | payload)) & PAYLOAD_MASK;
        }
        (class << CLASS_SHIFT) | payload
    }

    #[inline]
    pub fn timer(id: u64) -> u64 {
        (CLASS_TIMER << CLASS_SHIFT) | (id & PAYLOAD_MASK)
    }

    #[inline]
    pub fn failure() -> u64 {
        CLASS_FAILURE << CLASS_SHIFT
    }

    /// Is this the key of a hot (non-timer) event? Timers are excluded
    /// from the drain-termination count: a queue holding nothing but
    /// timers cannot make application progress (DESIGN.md §2.8).
    #[inline]
    pub fn is_hot(key: u64) -> bool {
        class(key) != CLASS_TIMER
    }
}

/// Why a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Every rank finished its program.
    Completed,
    /// The event queue drained with unfinished ranks — the diagnostic lists
    /// each stuck rank and what it was waiting for.
    Deadlock(Vec<String>),
    /// `max_events` exceeded.
    EventLimit,
}

/// Result of a run.
#[derive(Debug)]
pub struct RunReport {
    pub status: RunStatus,
    pub metrics: Metrics,
    pub trace: Trace,
    /// Final application state digest per rank.
    pub digests: Vec<u64>,
    /// Messages still sitting in each rank's inbox at the end of the run.
    /// A completed run should leave every inbox empty; a nonzero count
    /// indicates a duplicate delivery (protocol bug).
    pub inbox_leftover: Vec<usize>,
    pub makespan: SimTime,
    /// Shards the run executed on (1 for the serial engine).
    pub shards: u32,
    /// Synchronization windows the parallel coordinator ran (0 serial).
    pub barrier_rounds: u64,
    /// Per-shard-pair conservative lookahead the parallel coordinator
    /// derived from the run topology: `(shard_i, shard_j, lookahead)`
    /// for `i < j`, the minimum transit over the link classes actually
    /// crossing that shard boundary (DESIGN.md §2.9). Empty for serial
    /// runs and for flat topologies (where the legacy scalar applies).
    pub pair_lookahead: Vec<(u32, u32, SimDuration)>,
}

impl RunReport {
    pub fn completed(&self) -> bool {
        self.status == RunStatus::Completed
    }
}

/// Everything one shard contributes to a merged [`RunReport`]
/// (extracted by [`Sim::shard_finish`], merged by `crates/par-sim`).
/// Vectors are indexed by global rank id and full-length; only the
/// entries for ranks the shard owns are meaningful.
pub struct ShardOutcome {
    pub digests: Vec<u64>,
    pub inbox_leftover: Vec<usize>,
    pub clocks: Vec<SimTime>,
    /// Did every owned rank finish?
    pub done: bool,
    /// `(rank, diagnostic)` for owned unfinished ranks.
    pub stuck: Vec<(u32, String)>,
    /// Sender-log mutation journal in shard-local order (already sorted
    /// by global stamp, since a shard processes events in stamp order).
    pub log_timeline: Vec<LogDelta>,
    pub metrics: Metrics,
    pub trace: Trace,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedRecv,
    WaitingGate,
    Failed,
    Done,
}

/// Checkpointable execution state of one rank (protocol-opaque).
#[derive(Debug, Clone)]
pub struct RankSnapshot {
    pc: usize,
    app: AppState,
    inbox: Inbox,
    send_seq: BTreeMap<Rank, u64>,
}

impl RankSnapshot {
    /// Approximate serialized size of the snapshot (for checkpoint cost
    /// models): program counter + app state + buffered messages.
    pub fn image_bytes(&self) -> u64 {
        64 + self.inbox.iter().map(|a| 64 + a.msg.bytes).sum::<u64>()
    }

    /// Drop buffered (arrived-but-undelivered) messages not satisfying
    /// `pred` from the snapshot.
    ///
    /// Hybrid protocols call this with "same cluster" so the checkpoint
    /// holds only intra-cluster channel state: an arrived-but-undelivered
    /// INTER-cluster message has no RPP record yet (RPP is written at
    /// delivery), so the sender would replay it after a rollback — keeping
    /// the buffered copy too would deliver it twice.
    pub fn retain_messages(&mut self, pred: impl FnMut(&Message) -> bool) {
        self.inbox.retain(pred);
    }
}

/// A message captured in-flight on an intra-cluster channel (Chandy-Lamport
/// channel state) for inclusion in a coordinated checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct InFlightMsg {
    pub msg: Message,
    pub recv_cost: SimDuration,
}

struct RankState {
    clock: SimTime,
    pc: usize,
    epoch: u32,
    status: Status,
    gated: bool,
    app: AppState,
    inbox: Inbox,
    /// Last used per-destination channel sequence number.
    send_seq: BTreeMap<Rank, u64>,
}

pub(crate) enum Event {
    Exec {
        rank: Rank,
        epoch: u32,
    },
    /// `flight` is a slab slot; `seq` is the flight's monotone stamp and
    /// guards against a recycled slot (see [`FlightSlab`]).
    AppArrival {
        flight: u32,
        seq: u64,
    },
    CtlArrival {
        flight: u32,
        seq: u64,
    },
    Timer {
        id: u64,
    },
    Failure {
        ranks: Vec<Rank>,
        /// `true` when this event was pulled from the [`FailureModel`]
        /// (its successor is pulled when it fires); `false` for
        /// [`Sim::inject_failure`] one-shots.
        from_model: bool,
    },
}

enum FlightKind<C> {
    App {
        msg: Message,
        recv_cost: SimDuration,
    },
    Ctl {
        from: Endpoint,
        ctl: C,
    },
}

struct Flight<C> {
    to: Endpoint,
    at: SimTime,
    /// Monotone creation stamp: deterministic tie-break for in-flight
    /// capture ordering, independent of slab slot recycling.
    seq: u64,
    handle: EventHandle,
    kind: FlightKind<C>,
}

/// Slab arena for in-flight messages: O(1) insert/remove with slot reuse,
/// so per-message traffic costs no tree rebalancing and no allocation in
/// steady state (the previous `BTreeMap<u64, Flight>` paid both). Arrival
/// events carry the flight's `seq` stamp and re-validate it, so an event
/// can never resolve to a different flight that recycled its slot.
struct FlightSlab<C> {
    slots: Vec<Option<Flight<C>>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<C> FlightSlab<C> {
    fn new() -> Self {
        FlightSlab {
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Reserve a slot and the next monotone stamp: `(slot, seq)`.
    fn reserve(&mut self) -> (u32, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        (slot, seq)
    }

    fn fill(&mut self, slot: u32, flight: Flight<C>) {
        debug_assert!(self.slots[slot as usize].is_none());
        self.slots[slot as usize] = Some(flight);
    }

    /// Remove the flight in `slot` if its stamp matches `seq`.
    fn remove(&mut self, slot: u32, seq: u64) -> Option<Flight<C>> {
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.as_ref().is_some_and(|f| f.seq == seq) {
            let f = entry.take();
            self.free.push(slot);
            f
        } else {
            None
        }
    }

    fn iter(&self) -> impl Iterator<Item = (u32, &Flight<C>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|f| (i as u32, f)))
    }

    /// Messages currently in flight (every vacant slot is on the free
    /// list, so this is O(1)).
    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// A message crossing a shard boundary: everything the receiving shard
/// needs to re-insert the flight into its own scheduler. Opaque outside
/// the engine — the parallel coordinator only moves envelopes between
/// shards at window barriers (DESIGN.md §2.8). The arrival time was
/// FIFO-adjusted on the *sender* shard (channel FIFO state lives with the
/// sender), so the receiver schedules it verbatim.
pub struct RemoteEnvelope<C> {
    at: SimTime,
    from: Endpoint,
    to: Endpoint,
    kind: FlightKind<C>,
}

impl<C> RemoteEnvelope<C> {
    /// Scheduled arrival time (for coordinator sanity checks).
    pub fn at(&self) -> SimTime {
        self.at
    }

    /// Destination endpoint — what the coordinator routes on. Always a
    /// rank: sends to aux endpoints never cross a shard boundary (the
    /// aux process is pinned to the sending shard).
    pub fn dst(&self) -> Endpoint {
        self.to
    }
}

/// Shard identity of one engine instance inside a sharded run.
struct ShardView {
    my_shard: u32,
    /// rank index → owning shard.
    shard_of_rank: Arc<Vec<u32>>,
    /// Ranks this shard owns (its completion target).
    owned: usize,
}

/// One sender-log mutation, stamped with the global event order it
/// happened under: `(time, event key, intra-event index)`. Shard-local
/// sequences of these merge (k-way, by stamp) into the exact order the
/// serial engine would have applied them in, which is how a sharded run
/// reproduces `logged_bytes_peak` — a running-max over global order that
/// per-shard counters cannot recover (DESIGN.md §2.8).
#[derive(Debug, Clone, Copy)]
pub struct LogDelta {
    pub at: SimTime,
    pub key: u64,
    pub sub: u32,
    pub delta: i64,
}

/// Engine internals shared with protocols through [`Ctx`].
pub struct Core<C> {
    sched: Scheduler<Event>,
    ranks: Vec<RankState>,
    /// One lazy op stream per rank; `op_at(pc)` is pure in `pc`, which is
    /// what makes checkpoint/rollback seeks replay-exact (DESIGN.md §2.2).
    programs: Vec<Arc<dyn RankProgram>>,
    config: SimConfig,
    fifo_last: FxHashMap<(Endpoint, Endpoint), SimTime>,
    flights: FlightSlab<C>,
    /// Memoized network pricing: each delivery burst is priced once per
    /// distinct wire size instead of per message (DESIGN.md §2.1).
    cost_cache: CostCache,
    arrival_counter: u64,
    done_count: usize,
    /// Machine MTBF estimated from the run's failure model (None: no
    /// failures expected). Cached here so protocols can consult it via
    /// [`Ctx::failure_mtbf`] (checkpoint policies size their intervals
    /// from it, DESIGN.md §2.4).
    failure_mtbf: Option<SimDuration>,
    /// Attached telemetry recorder (DESIGN.md §2.5). `None` by default:
    /// every instrumentation point is gated behind this one check, so a
    /// run without telemetry pays a single never-taken branch per site.
    recorder: Option<Box<dyn Recorder>>,
    /// Live non-timer events in `sched`: the drain-termination count.
    /// The run is over when this reaches zero — remaining timers cannot
    /// make application progress on their own (they can only *schedule*
    /// hot events, which would raise the count before the next check).
    pending_hot: u64,
    /// `Some` when this core is one shard of a sharded run.
    shard: Option<ShardView>,
    /// Cross-shard sends produced since the coordinator last drained them.
    outbox: Vec<RemoteEnvelope<C>>,
    /// Sender-log mutation journal (shard mode only; see [`LogDelta`]).
    log_timeline: Option<Vec<LogDelta>>,
    /// Stamp of the event currently dispatching, for [`LogDelta`]s.
    cursor: (SimTime, u64, u32),
    pub metrics: Metrics,
    pub trace: Trace,
}

impl<C: Clone + std::fmt::Debug> Core<C> {
    fn new(app: Application, config: SimConfig, shard: Option<ShardView>) -> Self {
        let n = app.n_ranks();
        let ranks: Vec<RankState> = (0..n)
            .map(|i| RankState {
                clock: SimTime::ZERO,
                pc: 0,
                epoch: 0,
                status: Status::Runnable,
                gated: false,
                app: AppState::new(Rank(i as u32), config.det_mode),
                inbox: Inbox::new(),
                send_seq: BTreeMap::new(),
            })
            .collect();
        let mut core = Core {
            sched: Scheduler::new(),
            ranks,
            programs: app.into_programs(),
            config,
            fifo_last: FxHashMap::default(),
            flights: FlightSlab::new(),
            cost_cache: CostCache::new(),
            arrival_counter: 0,
            done_count: 0,
            failure_mtbf: None,
            recorder: None,
            pending_hot: 0,
            log_timeline: shard.as_ref().map(|_| Vec::new()),
            shard,
            outbox: Vec::new(),
            cursor: (SimTime::ZERO, 0, 0),
            metrics: Metrics::default(),
            trace: Trace::new(n),
        };
        for i in 0..n {
            let rank = Rank(i as u32);
            if core.owns(rank) {
                core.schedule_event(
                    SimTime::ZERO,
                    key::exec(rank, 0),
                    Event::Exec { rank, epoch: 0 },
                );
            }
        }
        core
    }

    fn n(&self) -> usize {
        self.ranks.len()
    }

    /// Does this engine instance execute `rank`? Always true serially; in
    /// a sharded run only the owning shard schedules the rank's events.
    #[inline]
    fn owns(&self, rank: Rank) -> bool {
        match &self.shard {
            None => true,
            Some(v) => v.shard_of_rank[rank.idx()] == v.my_shard,
        }
    }

    /// Ranks this engine must finish for its part of the run to complete.
    #[inline]
    fn done_target(&self) -> usize {
        match &self.shard {
            None => self.ranks.len(),
            Some(v) => v.owned,
        }
    }

    /// Schedule `ev` under tie-break `key`, maintaining the hot count.
    #[inline]
    fn schedule_event(&mut self, at: SimTime, key: u64, ev: Event) -> EventHandle {
        if key::is_hot(key) {
            self.pending_hot += 1;
        }
        self.sched.schedule_keyed(at, key, ev)
    }

    /// Cancel a scheduled event, maintaining the hot count. Only hot
    /// events are ever cancelled (flight retraction, failure-model
    /// replacement), so a successful cancel always decrements.
    #[inline]
    fn cancel_event(&mut self, handle: EventHandle) -> bool {
        match self.sched.cancel(handle) {
            Some(ev) => {
                debug_assert!(!matches!(ev, Event::Timer { .. }));
                self.pending_hot -= 1;
                true
            }
            None => false,
        }
    }

    /// Pop the next event, maintaining the hot count and stamping the
    /// log-journal cursor with the event's global-order identity.
    #[inline]
    fn pop_event(&mut self) -> Option<(SimTime, Event)> {
        let (t, ekey, ev) = self.sched.pop_keyed()?;
        if key::is_hot(ekey) {
            self.pending_hot -= 1;
        }
        self.cursor = (t, ekey, 0);
        Some((t, ev))
    }

    /// Have all ranks this engine is responsible for finished?
    #[inline]
    fn all_done(&self) -> bool {
        self.done_count == self.done_target()
    }

    /// Snapshot the counters a time-series recorder samples. Only built
    /// when a recorder is attached.
    fn gauges(&self) -> Gauges {
        Gauges {
            events: self.metrics.events,
            queue_depth: self.sched.len(),
            inflight_msgs: self.flights.len(),
            logged_bytes: self.metrics.logged_bytes,
            deliveries: self.metrics.deliveries,
            checkpoint_time_ps: self.metrics.checkpoint_time.as_ps(),
            lost_work_ps: self.metrics.lost_work.as_ps(),
        }
    }

    /// Price a wire size on the local link class, memoized. Protocol
    /// estimates ([`Ctx::wire_cost`]) and auxiliary-endpoint traffic go
    /// through here; rank-to-rank traffic uses [`Core::priced_between`].
    #[inline]
    fn priced(&mut self, wire_bytes: u64) -> MsgCost {
        match &self.config.topology {
            Some(topo) => self
                .cost_cache
                .price_class(topo, LinkClass::LOCAL, wire_bytes),
            None => self.cost_cache.price(&*self.config.network, wire_bytes),
        }
    }

    /// Price a wire size between two endpoints, memoized per
    /// `(link_class, size)`. With no topology configured — or whenever
    /// either endpoint is auxiliary — this is exactly [`Core::priced`];
    /// under a flat topology the class is always local, so the three
    /// paths price identically (the oracle guarantee).
    #[inline]
    fn priced_between(&mut self, from: Endpoint, to: Endpoint, wire_bytes: u64) -> MsgCost {
        match (&self.config.topology, from, to) {
            (Some(topo), Endpoint::Rank(s), Endpoint::Rank(d)) => {
                let class = topo.link_class(s.0, d.0);
                self.cost_cache.price_class(topo, class, wire_bytes)
            }
            _ => self.priced(wire_bytes),
        }
    }

    /// Append a sender-log mutation to the shard journal (no-op serially).
    #[inline]
    fn journal_log_delta(&mut self, delta: i64) {
        if let Some(timeline) = self.log_timeline.as_mut() {
            let (at, ekey, sub) = self.cursor;
            timeline.push(LogDelta {
                at,
                key: ekey,
                sub,
                delta,
            });
            self.cursor.2 += 1;
        }
    }

    /// FIFO-adjust an arrival on `(from, to)` and record it.
    fn fifo_adjust(&mut self, from: Endpoint, to: Endpoint, computed: SimTime) -> SimTime {
        let last = self.fifo_last.entry((from, to)).or_insert(SimTime::ZERO);
        let at = computed.max(*last + SimDuration::from_ps(1));
        *last = at;
        at
    }

    /// Shard owning endpoint `e`. Aux endpoints are engine-local: they
    /// only participate in recovery, and failure-bearing runs never shard
    /// (DESIGN.md §2.8).
    #[inline]
    fn shard_of_endpoint(view: &ShardView, e: Endpoint) -> u32 {
        match e {
            Endpoint::Rank(r) => view.shard_of_rank[r.idx()],
            Endpoint::Aux(_) => view.my_shard,
        }
    }

    fn schedule_flight(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        computed: SimTime,
        kind: FlightKind<C>,
    ) {
        let at = self.fifo_adjust(from, to, computed);
        let at = at.max(self.sched.now());
        if let Some(view) = &self.shard {
            if Self::shard_of_endpoint(view, to) != view.my_shard {
                // Cross-shard: hand the flight to the coordinator. FIFO
                // state was already advanced above — the channel's order
                // is fixed sender-side, the receiver schedules verbatim.
                self.outbox.push(RemoteEnvelope { at, from, to, kind });
                return;
            }
        }
        self.insert_flight(RemoteEnvelope { at, from, to, kind });
    }

    /// Insert a flight (local, or delivered by the coordinator from a
    /// remote shard) into this scheduler. No FIFO re-adjustment and no
    /// `max(now)` clamp: both were applied on the sending side, and a
    /// window barrier guarantees `at` has not been passed yet.
    fn insert_flight(&mut self, env: RemoteEnvelope<C>) {
        let RemoteEnvelope { at, from, to, kind } = env;
        let (flight, seq) = self.flights.reserve();
        let (ev, ctl) = match kind {
            FlightKind::App { .. } => (Event::AppArrival { flight, seq }, false),
            FlightKind::Ctl { .. } => (Event::CtlArrival { flight, seq }, true),
        };
        let key = key::arrival(ctl, from, to, self.config.perturb_seed);
        let handle = self.schedule_event(at, key, ev);
        self.flights.fill(
            flight,
            Flight {
                to,
                at,
                seq,
                handle,
                kind,
            },
        );
    }

    /// Transmit an application message from `msg.src`'s current local time.
    fn transmit_app(
        &mut self,
        msg: Message,
        extra_wire_bytes: u64,
        extra_sender_time: SimDuration,
    ) {
        let wire = msg.bytes + extra_wire_bytes;
        let src = msg.src;
        let dst = msg.dst;
        let cost = self.priced_between(Endpoint::Rank(src), Endpoint::Rank(dst), wire);
        {
            let r = &mut self.ranks[src.idx()];
            r.clock += cost.sender + extra_sender_time;
        }
        let computed = self.ranks[src.idx()].clock + cost.transit;
        self.metrics.app_messages += 1;
        self.metrics.app_bytes += msg.bytes;
        self.metrics.wire_bytes += wire;
        if msg.replayed {
            self.metrics.replayed_messages += 1;
            self.metrics.replayed_bytes += msg.bytes;
            self.trace.check_replay(&msg);
        } else {
            self.trace.record_send(&msg);
        }
        if let Some(rec) = self.recorder.as_deref_mut() {
            let now = self.sched.now();
            rec.on_send(now, src.0, dst.0, msg.bytes, msg.replayed);
        }
        self.schedule_flight(
            Endpoint::Rank(src),
            Endpoint::Rank(dst),
            computed,
            FlightKind::App {
                msg,
                recv_cost: cost.receiver,
            },
        );
    }
}

/// The protocol's window into the engine.
pub struct Ctx<'a, C> {
    pub(crate) core: &'a mut Core<C>,
}

impl<'a, C: Clone + std::fmt::Debug> Ctx<'a, C> {
    /// Current global event time.
    pub fn now(&self) -> SimTime {
        self.core.sched.now()
    }

    pub fn n_ranks(&self) -> usize {
        self.core.n()
    }

    /// Local clock of `rank`.
    pub fn clock(&self, rank: Rank) -> SimTime {
        self.core.ranks[rank.idx()].clock
    }

    /// Charge CPU time to `rank` (advances its local clock).
    pub fn charge(&mut self, rank: Rank, d: SimDuration) {
        self.core.ranks[rank.idx()].clock += d;
    }

    /// Is `rank` finished with its program?
    pub fn is_done(&self, rank: Rank) -> bool {
        self.core.ranks[rank.idx()].status == Status::Done
    }

    /// Is `rank` currently failed (crashed, not yet restored)?
    pub fn is_failed(&self, rank: Rank) -> bool {
        self.core.ranks[rank.idx()].status == Status::Failed
    }

    /// Access run metrics (protocols update their own counters here).
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Price a message of `wire_bytes` on the configured network (lets
    /// protocols compute overlap windows, e.g. for the logging memcpy).
    /// Memoized, shared with the engine's own pricing. Deliberately
    /// endpoint-free: protocol estimates price the *local* link class,
    /// so a topology cannot skew overlap windows that were calibrated
    /// against the base model (endpoint-aware transmission pricing
    /// happens in the engine itself).
    pub fn wire_cost(&mut self, wire_bytes: u64) -> net_model::MsgCost {
        self.core.priced(wire_bytes)
    }

    /// Piggyback metadata of messages from `src` that have *arrived* at
    /// `rank` but are not yet delivered to the application (sitting in its
    /// receive buffers). Rollback-recovery protocols must count these as
    /// received when computing reception horizons: they exist physically
    /// at the receiver, so the sender must not re-send them.
    pub fn pending_meta_from(&self, rank: Rank, src: Rank) -> Vec<crate::types::PbMeta> {
        self.core.ranks[rank.idx()]
            .inbox
            .iter()
            .filter(|a| a.msg.src == src)
            .map(|a| a.msg.meta)
            .collect()
    }

    /// Send a control message. When both endpoints are ranks it shares the
    /// channel FIFO with application messages. The sender's clock is
    /// charged (if it is a rank); auxiliary endpoints are timeless.
    pub fn send_ctl(&mut self, from: Endpoint, to: Endpoint, bytes: u64, ctl: C) {
        let bytes = if bytes == 0 {
            self.core.config.ctl_bytes_default
        } else {
            bytes
        };
        let cost = self.core.priced_between(from, to, bytes);
        let base = match from {
            Endpoint::Rank(r) => {
                let rs = &mut self.core.ranks[r.idx()];
                rs.clock += cost.sender;
                rs.clock.max(self.core.sched.now())
            }
            Endpoint::Aux(_) => self.core.sched.now(),
        };
        self.core.metrics.ctl_messages += 1;
        self.core.metrics.ctl_bytes += bytes;
        self.core
            .schedule_flight(from, to, base + cost.transit, FlightKind::Ctl { from, ctl });
    }

    /// Replay a logged application message (HydEE's `NotifySendLog` path).
    /// The message must carry `replayed = true` and its original identity
    /// (`channel_seq`, `payload`, `meta`); the trace oracle verifies it.
    pub fn replay_app(&mut self, msg: Message) {
        debug_assert!(msg.replayed, "replay_app requires msg.replayed = true");
        self.core.transmit_app(msg, 0, SimDuration::ZERO);
    }

    /// Close (`true`) or open (`false`) `rank`'s send gate. Reopening
    /// resumes the rank if it was parked at a send.
    pub fn gate(&mut self, rank: Rank, closed: bool) {
        let now = self.now();
        let rs = &mut self.core.ranks[rank.idx()];
        rs.gated = closed;
        if !closed && rs.status == Status::WaitingGate {
            rs.status = Status::Runnable;
            let at = rs.clock.max(now);
            let epoch = rs.epoch;
            self.core
                .schedule_event(at, key::exec(rank, epoch), Event::Exec { rank, epoch });
        }
    }

    pub fn is_gated(&self, rank: Rank) -> bool {
        self.core.ranks[rank.idx()].gated
    }

    /// Capture `rank`'s execution state for a checkpoint.
    pub fn capture_rank(&self, rank: Rank) -> RankSnapshot {
        let rs = &self.core.ranks[rank.idx()];
        RankSnapshot {
            pc: rs.pc,
            app: rs.app,
            inbox: rs.inbox.clone(),
            send_seq: rs.send_seq.clone(),
        }
    }

    /// Restore `rank` from a snapshot. The rank resumes at the current
    /// event time (add storage read latency with [`Ctx::charge`]). Any
    /// pending execution or gate state is discarded; the send gate is left
    /// closed iff `gated`.
    pub fn restore_rank(&mut self, rank: Rank, snap: &RankSnapshot, gated: bool) {
        let now = self.now();
        let was_done = self.core.ranks[rank.idx()].status == Status::Done;
        if was_done {
            self.core.done_count -= 1;
        }
        let rs = &mut self.core.ranks[rank.idx()];
        rs.pc = snap.pc;
        rs.app = snap.app;
        rs.inbox = snap.inbox.clone();
        rs.send_seq = snap.send_seq.clone();
        rs.clock = now;
        rs.epoch += 1;
        rs.status = Status::Runnable;
        rs.gated = gated;
        let epoch = rs.epoch;
        self.core
            .schedule_event(now, key::exec(rank, epoch), Event::Exec { rank, epoch });
    }

    /// Capture in-flight messages whose source *and* destination are both
    /// in `set` (intra-cluster channel state for a coordinated checkpoint),
    /// ordered by arrival time.
    pub fn capture_inflight_within(&self, set: &[Rank]) -> Vec<InFlightMsg> {
        let member = |r: Rank| set.contains(&r);
        let mut found: Vec<&Flight<C>> = self
            .core
            .flights
            .iter()
            .map(|(_, f)| f)
            .filter(|f| match &f.kind {
                FlightKind::App { msg, .. } => member(msg.src) && member(msg.dst),
                FlightKind::Ctl { .. } => false,
            })
            .collect();
        // `seq` is the flight's creation order — the same deterministic
        // tie-break the pre-slab implementation got from its monotone map
        // keys, immune to slot recycling.
        found.sort_by_key(|f| (f.at, f.seq));
        found
            .into_iter()
            .map(|f| match &f.kind {
                FlightKind::App { msg, recv_cost } => InFlightMsg {
                    msg: *msg,
                    recv_cost: *recv_cost,
                },
                FlightKind::Ctl { .. } => unreachable!(),
            })
            .collect()
    }

    /// Drop every in-flight message (application and control) destined to
    /// any of `ranks`. Used at rollback: messages addressed to the old
    /// incarnation are lost.
    pub fn drop_inflight_to(&mut self, ranks: &[Rank]) {
        let victims: Vec<(u32, u64)> = self
            .core
            .flights
            .iter()
            .filter(|(_, f)| matches!(f.to, Endpoint::Rank(r) if ranks.contains(&r)))
            .map(|(slot, f)| (slot, f.seq))
            .collect();
        for (slot, seq) in victims {
            if let Some(f) = self.core.flights.remove(slot, seq) {
                self.core.cancel_event(f.handle);
            }
        }
    }

    /// Record `bytes` appended to a sender log. Equivalent to
    /// `metrics().log_append(bytes)` plus the journal entry a sharded run
    /// needs to reconstruct the global `logged_bytes_peak` (see
    /// [`LogDelta`]); protocols must route log mutations through these
    /// two methods rather than the raw metrics.
    pub fn log_append(&mut self, bytes: u64) {
        self.core.metrics.log_append(bytes);
        self.core.journal_log_delta(bytes as i64);
    }

    /// Record `messages` log entries totalling `bytes` reclaimed by GC.
    pub fn log_reclaim(&mut self, messages: u64, bytes: u64) {
        let before = self.core.metrics.logged_bytes;
        self.core.metrics.log_reclaim(messages, bytes);
        let delta = self.core.metrics.logged_bytes as i64 - before as i64;
        self.core.journal_log_delta(delta);
    }

    /// Re-inject channel state captured by [`Ctx::capture_inflight_within`]
    /// after a rollback: the messages re-enter their channels now.
    pub fn inject_inflight(&mut self, msgs: &[InFlightMsg]) {
        let now = self.now();
        for m in msgs {
            self.core.schedule_flight(
                Endpoint::Rank(m.msg.src),
                Endpoint::Rank(m.msg.dst),
                now + SimDuration::from_ns(1),
                FlightKind::App {
                    msg: m.msg,
                    recv_cost: m.recv_cost,
                },
            );
        }
    }

    /// Machine MTBF estimated from the run's failure model
    /// ([`crate::failure::estimate_mtbf`]); `None` when no model is set
    /// or the model expects no failures. Checkpoint policies derive
    /// Young/Daly intervals from it.
    pub fn failure_mtbf(&self) -> Option<SimDuration> {
        self.core.failure_mtbf
    }

    /// Arrange for `on_timer(id)` at absolute time `at`.
    pub fn set_timer(&mut self, at: SimTime, id: u64) {
        let at = at.max(self.now());
        self.core
            .schedule_event(at, key::timer(id), Event::Timer { id });
    }

    /// The attached telemetry recorder, if any. Protocols emit their
    /// structural events (checkpoints, recovery phases, storage batches)
    /// through this; `None` is the common case and the caller's `if let`
    /// is the entire disabled-path cost (DESIGN.md §2.5).
    pub fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        self.core.recorder.as_deref_mut()
    }
}

/// The simulator: an [`Application`] + a [`Protocol`] + a [`SimConfig`].
pub struct Sim<P: Protocol> {
    core: Core<P::Ctl>,
    protocol: P,
    failure_model: Option<Box<dyn FailureModel>>,
    /// The one outstanding model-driven failure event (lazy pull).
    model_event: Option<EventHandle>,
}

impl<P: Protocol> Sim<P> {
    pub fn new(app: Application, config: SimConfig, protocol: P) -> Self {
        Sim {
            core: Core::new(app, config, None),
            protocol,
            failure_model: None,
            model_event: None,
        }
    }

    /// Build one shard of a sharded run (DESIGN.md §2.8): this engine
    /// instance holds the full application but only executes the ranks
    /// that `shard_of_rank` maps to `my_shard`; sends to other shards
    /// land in an outbox the parallel coordinator drains at window
    /// barriers. Sharded runs must be failure-free — the coordinator
    /// enforces this before choosing the parallel path.
    pub fn new_sharded(
        app: Application,
        config: SimConfig,
        protocol: P,
        shard_of_rank: Arc<Vec<u32>>,
        my_shard: u32,
    ) -> Self {
        assert_eq!(shard_of_rank.len(), app.n_ranks());
        let owned = shard_of_rank.iter().filter(|&&s| s == my_shard).count();
        Sim {
            core: Core::new(
                app,
                config,
                Some(ShardView {
                    my_shard,
                    shard_of_rank,
                    owned,
                }),
            ),
            protocol,
            failure_model: None,
            model_event: None,
        }
    }

    /// Schedule a fail-stop failure of `ranks` at time `at`. Multiple
    /// ranks in one call fail *concurrently*; calling several times with
    /// increasing times injects sequential failures.
    pub fn inject_failure(&mut self, at: SimTime, ranks: Vec<Rank>) {
        self.core.schedule_event(
            at,
            key::failure(),
            Event::Failure {
                ranks,
                from_model: false,
            },
        );
    }

    /// Drive failure injection from a [`FailureModel`]. The engine pulls
    /// *lazily*: exactly one model event is scheduled at a time, and the
    /// next is requested only when it fires — a stochastic model's tail
    /// is never materialised. A model event whose time is in the past
    /// (the model lagging the clock) fires immediately rather than being
    /// dropped. Replaces any previously set model, cancelling its
    /// pending event.
    pub fn set_failure_model(&mut self, model: Box<dyn FailureModel>) {
        if let Some(handle) = self.model_event.take() {
            self.core.cancel_event(handle);
        }
        self.core.failure_mtbf = crate::failure::estimate_mtbf(&*model);
        self.failure_model = Some(model);
        self.pull_model_event(SimTime::ZERO);
    }

    /// Ask the model for its event after `prev` and schedule it (clamped
    /// to now — never into the past). One model event is outstanding at
    /// a time; `model_event` tracks it for cancellation on replacement.
    fn pull_model_event(&mut self, prev: SimTime) {
        let Some(model) = self.failure_model.as_mut() else {
            return;
        };
        if let Some(ev) = model.next_after(prev) {
            let at = ev.at.max(self.core.sched.now());
            self.model_event = Some(self.core.schedule_event(
                at,
                key::failure(),
                Event::Failure {
                    ranks: ev.ranks,
                    from_model: true,
                },
            ));
        }
    }

    /// Attach a telemetry recorder for this run (DESIGN.md §2.5).
    /// Recorders observe, they never influence: digests, metrics and
    /// makespan are bit-for-bit identical with or without one
    /// (`tests/recorder_neutrality.rs`).
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.core.recorder = Some(recorder);
    }

    /// Access the protocol (for post-run inspection in tests).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Run to completion (or deadlock / event limit).
    pub fn run(self) -> RunReport {
        self.run_with_protocol().0
    }

    /// Run to completion, returning the protocol for post-run inspection
    /// (phases, dates, logs, RPP tables in tests).
    ///
    /// Termination is by **drain** (DESIGN.md §2.8): the run completes
    /// when every rank is done *and* no hot (non-timer) event remains —
    /// post-completion arrivals and protocol acknowledgements are
    /// processed, not abandoned, so serial and sharded runs agree on
    /// every counter. Timers popped after completion are discarded
    /// uncounted; timers remain live before completion (a timer can
    /// reopen a gate).
    pub fn run_with_protocol(mut self) -> (RunReport, P) {
        self.protocol.init(&mut Ctx {
            core: &mut self.core,
        });
        let mut status = None;
        loop {
            let done = self.core.all_done();
            if self.core.pending_hot == 0 && done {
                break;
            }
            let Some((t, ev)) = self.core.pop_event() else {
                break;
            };
            if matches!(ev, Event::Timer { .. }) && done {
                continue; // moot: the run is over, discard uncounted
            }
            self.core.metrics.events += 1;
            if self.core.metrics.events > self.core.config.max_events {
                status = Some(RunStatus::EventLimit);
                break;
            }
            if self.core.recorder.is_some() {
                let g = self.core.gauges();
                if let Some(rec) = self.core.recorder.as_deref_mut() {
                    rec.on_tick(t, &g);
                }
            }
            self.dispatch(t, ev);
        }
        let status = status.unwrap_or_else(|| {
            if self.core.all_done() {
                RunStatus::Completed
            } else {
                RunStatus::Deadlock(self.diagnose().into_iter().map(|(_, d)| d).collect())
            }
        });
        let makespan = self
            .core
            .ranks
            .iter()
            .map(|r| r.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        self.core.metrics.makespan = makespan;
        if self.core.recorder.is_some() {
            let g = self.core.gauges();
            if let Some(rec) = self.core.recorder.as_deref_mut() {
                rec.on_run_end(makespan, &g);
            }
        }
        (
            RunReport {
                status,
                digests: self.core.ranks.iter().map(|r| r.app.digest).collect(),
                inbox_leftover: self.core.ranks.iter().map(|r| r.inbox.len()).collect(),
                makespan,
                metrics: self.core.metrics,
                trace: self.core.trace,
                shards: 1,
                barrier_rounds: 0,
                pair_lookahead: Vec::new(),
            },
            self.protocol,
        )
    }

    /// Process one popped event. Shared verbatim by the serial loop and
    /// the shard window/step paths — the dispatch semantics ARE the
    /// engine's observable behaviour, so there is exactly one copy.
    fn dispatch(&mut self, t: SimTime, ev: Event) {
        match ev {
            Event::Exec { rank, epoch } => {
                let rs = &self.core.ranks[rank.idx()];
                if rs.epoch != epoch || rs.status != Status::Runnable {
                    return; // stale
                }
                if t < rs.clock {
                    // The rank was charged extra time since this event
                    // was scheduled; run it when its clock is reached.
                    let at = rs.clock;
                    self.core.schedule_event(
                        at,
                        key::exec(rank, epoch),
                        Event::Exec { rank, epoch },
                    );
                    return;
                }
                self.step(rank);
            }
            Event::AppArrival { flight, seq } => {
                let Some(f) = self.core.flights.remove(flight, seq) else {
                    return;
                };
                let FlightKind::App { msg, recv_cost } = f.kind else {
                    return;
                };
                let dst = msg.dst;
                let rs = &mut self.core.ranks[dst.idx()];
                if rs.status == Status::Failed {
                    return; // lost on the wire to a dead process
                }
                let seq = self.core.arrival_counter;
                self.core.arrival_counter += 1;
                rs.inbox.push(msg, seq, recv_cost);
                if rs.status == Status::BlockedRecv {
                    rs.clock = rs.clock.max(t);
                    rs.status = Status::Runnable;
                    self.step(dst);
                }
            }
            Event::CtlArrival { flight, seq } => {
                let Some(f) = self.core.flights.remove(flight, seq) else {
                    return;
                };
                let FlightKind::Ctl { from, ctl } = f.kind else {
                    return;
                };
                if let Endpoint::Rank(r) = f.to {
                    let rs = &mut self.core.ranks[r.idx()];
                    if rs.status == Status::Failed {
                        return;
                    }
                    rs.clock = rs.clock.max(t);
                }
                self.protocol.on_control(
                    &mut Ctx {
                        core: &mut self.core,
                    },
                    f.to,
                    from,
                    ctl,
                );
                self.drain_wakeups();
            }
            Event::Timer { id } => {
                self.protocol.on_timer(
                    &mut Ctx {
                        core: &mut self.core,
                    },
                    id,
                );
                self.drain_wakeups();
            }
            Event::Failure { ranks, from_model } => {
                self.core.metrics.failures += 1;
                self.core.metrics.failed_ranks += ranks.len() as u64;
                if let Some(rec) = self.core.recorder.as_deref_mut() {
                    let ids: Vec<u32> = ranks.iter().map(|r| r.0).collect();
                    rec.on_failure(t, &ids);
                }
                for &r in &ranks {
                    let rs = &mut self.core.ranks[r.idx()];
                    if rs.status == Status::Done {
                        self.core.done_count -= 1;
                    }
                    rs.status = Status::Failed;
                    rs.epoch += 1;
                }
                // Messages in flight to the victims die with them.
                Ctx {
                    core: &mut self.core,
                }
                .drop_inflight_to(&ranks);
                self.protocol.on_failure(
                    &mut Ctx {
                        core: &mut self.core,
                    },
                    &ranks,
                );
                self.drain_wakeups();
                // Lazy pull: this model event fired, ask for the next.
                if from_model {
                    self.model_event = None;
                    self.pull_model_event(t);
                }
            }
        }
    }

    // ---- shard driving API -------------------------------------------
    //
    // A sharded run (crates/par-sim) holds one `Sim` per shard, built
    // with [`Sim::new_sharded`], and drives them through these methods:
    // peek the global minimum across shards, run conservative windows,
    // sequence timers globally, exchange outboxes at barriers, and merge
    // the `ShardOutcome`s. The methods deliberately mirror the serial
    // loop's exact bookkeeping — equivalence is the contract
    // (DESIGN.md §2.8).

    /// Run the protocol's `init` hook. The coordinator calls this once
    /// per shard in ascending shard order, so shared-state mutations
    /// during init replay the serial engine's order.
    pub fn shard_init(&mut self) {
        self.protocol.init(&mut Ctx {
            core: &mut self.core,
        });
    }

    /// `(time, key)` of this shard's next live event, if any.
    pub fn shard_peek(&mut self) -> Option<(SimTime, u64)> {
        self.core.sched.peek_keyed()
    }

    /// Live non-timer events in this shard's queue.
    pub fn shard_pending_hot(&self) -> u64 {
        self.core.pending_hot
    }

    /// Have all ranks owned by this shard finished?
    pub fn shard_done(&self) -> bool {
        self.core.all_done()
    }

    /// Events this shard has processed so far (for the coordinator's
    /// global `max_events` budget).
    pub fn shard_events(&self) -> u64 {
        self.core.metrics.events
    }

    /// Pop and process exactly one event — the coordinator's sequential
    /// phase, used to keep timers (shared-ledger mutations) in global
    /// order. Counted exactly like a serial event.
    pub fn shard_step(&mut self) {
        if let Some((t, ev)) = self.core.pop_event() {
            self.note_event(t);
            self.dispatch(t, ev);
        }
    }

    /// Pop and discard the head event, which must be a timer: the serial
    /// engine discards timers uncounted once every rank is done, and the
    /// coordinator mirrors that when *global* completion is reached.
    pub fn shard_discard_timer(&mut self) {
        let popped = self.core.pop_event();
        debug_assert!(
            matches!(popped, Some((_, Event::Timer { .. }))),
            "shard_discard_timer popped a non-timer event"
        );
    }

    /// Process every event strictly before `horizon`, stopping early if
    /// a timer surfaces at the head (timers are globally sequenced by
    /// the coordinator, never run inside a window).
    pub fn shard_run_window(&mut self, horizon: SimTime) {
        while let Some((t, k)) = self.core.sched.peek_keyed() {
            if t >= horizon || key::class(k) == key::CLASS_TIMER {
                break;
            }
            let Some((t, ev)) = self.core.pop_event() else {
                break;
            };
            self.note_event(t);
            self.dispatch(t, ev);
        }
    }

    /// Drain the cross-shard sends produced since the last call.
    pub fn shard_take_outbox(&mut self) -> Vec<RemoteEnvelope<P::Ctl>> {
        std::mem::take(&mut self.core.outbox)
    }

    /// Insert flights routed here from other shards.
    pub fn shard_inject(&mut self, envelopes: Vec<RemoteEnvelope<P::Ctl>>) {
        for env in envelopes {
            self.core.insert_flight(env);
        }
    }

    /// Tear down this shard and extract everything the coordinator needs
    /// for the merged [`RunReport`]. Deliberately does *not* fire the
    /// recorder's `on_run_end` — the coordinator fires it once globally.
    pub fn shard_finish(mut self) -> ShardOutcome {
        let done = self.core.all_done();
        let stuck = if done { Vec::new() } else { self.diagnose() };
        ShardOutcome {
            digests: self.core.ranks.iter().map(|r| r.app.digest).collect(),
            inbox_leftover: self.core.ranks.iter().map(|r| r.inbox.len()).collect(),
            clocks: self.core.ranks.iter().map(|r| r.clock).collect(),
            done,
            stuck,
            log_timeline: self.core.log_timeline.take().unwrap_or_default(),
            metrics: self.core.metrics,
            trace: self.core.trace,
        }
    }

    /// Count one processed event and fire the sampling recorder hook
    /// (shard paths; the serial loop inlines this so its event-limit
    /// check sits between the count and the tick).
    fn note_event(&mut self, t: SimTime) {
        self.core.metrics.events += 1;
        if self.core.recorder.is_some() {
            let g = self.core.gauges();
            if let Some(rec) = self.core.recorder.as_deref_mut() {
                rec.on_tick(t, &g);
            }
        }
    }

    /// No-op hook kept for symmetry; protocol actions that resume ranks
    /// (gate reopening, restores) schedule their own Exec events.
    fn drain_wakeups(&mut self) {}

    /// Per-stuck-rank diagnostics, keyed by rank id so a sharded run can
    /// merge shards' diagnoses into one globally ordered list. Only ranks
    /// this engine owns are reported.
    fn diagnose(&self) -> Vec<(u32, String)> {
        let mut out = Vec::new();
        for (i, rs) in self.core.ranks.iter().enumerate() {
            if rs.status == Status::Done || !self.core.owns(Rank(i as u32)) {
                continue;
            }
            let opdesc = self.core.programs[i]
                .op_at(rs.pc)
                .map(|op| format!("{op:?}"))
                .unwrap_or_else(|| "<end>".into());
            out.push((
                i as u32,
                format!(
                    "P{i}: {:?} at pc={} ({opdesc}), gated={}, inbox={}",
                    rs.status,
                    rs.pc,
                    rs.gated,
                    rs.inbox.len()
                ),
            ));
        }
        out
    }

    /// Interpret `rank`'s program until it blocks, parks, yields or ends.
    fn step(&mut self, rank: Rank) {
        loop {
            let (pc, op) = {
                let rs = &self.core.ranks[rank.idx()];
                if rs.status != Status::Runnable {
                    return;
                }
                match self.core.programs[rank.idx()].op_at(rs.pc) {
                    None => {
                        // Program finished.
                        let rs = &mut self.core.ranks[rank.idx()];
                        rs.status = Status::Done;
                        self.core.done_count += 1;
                        self.protocol.on_done(
                            &mut Ctx {
                                core: &mut self.core,
                            },
                            rank,
                        );
                        return;
                    }
                    Some(op) => (rs.pc, op),
                }
            };
            match op {
                Op::Compute { time } => {
                    let rs = &mut self.core.ranks[rank.idx()];
                    rs.clock += time;
                    rs.pc = pc + 1;
                    let at = rs.clock;
                    let epoch = rs.epoch;
                    self.core.schedule_event(
                        at,
                        key::exec(rank, epoch),
                        Event::Exec { rank, epoch },
                    );
                    return;
                }
                Op::Send { dst, bytes, tag } => {
                    if self.core.ranks[rank.idx()].gated {
                        self.core.ranks[rank.idx()].status = Status::WaitingGate;
                        return;
                    }
                    let seq = self.core.ranks[rank.idx()]
                        .send_seq
                        .get(&dst)
                        .copied()
                        .unwrap_or(0)
                        + 1;
                    let payload = self.core.ranks[rank.idx()]
                        .app
                        .payload_for_send(rank, dst, seq);
                    let info = SendInfo {
                        src: rank,
                        dst,
                        tag,
                        bytes,
                        channel_seq: seq,
                        payload,
                    };
                    let directive = self.protocol.on_send(
                        &mut Ctx {
                            core: &mut self.core,
                        },
                        &info,
                    );
                    match directive.action {
                        SendAction::Gate => {
                            self.core.ranks[rank.idx()].status = Status::WaitingGate;
                            return;
                        }
                        SendAction::Suppress => {
                            let rs = &mut self.core.ranks[rank.idx()];
                            rs.send_seq.insert(dst, seq);
                            rs.pc = pc + 1;
                            rs.clock += directive.extra_sender_time;
                            self.core.metrics.suppressed_sends += 1;
                            // The suppressed send must be identical to the
                            // original (that is the premise of suppression);
                            // verify through the oracle.
                            let msg = Message {
                                src: rank,
                                dst,
                                tag,
                                bytes,
                                payload,
                                channel_seq: seq,
                                meta: directive.meta,
                                replayed: true,
                            };
                            self.core.trace.check_replay(&msg);
                        }
                        SendAction::Proceed => {
                            let rs = &mut self.core.ranks[rank.idx()];
                            rs.send_seq.insert(dst, seq);
                            rs.pc = pc + 1;
                            let msg = Message {
                                src: rank,
                                dst,
                                tag,
                                bytes,
                                payload,
                                channel_seq: seq,
                                meta: directive.meta,
                                replayed: false,
                            };
                            self.core.transmit_app(
                                msg,
                                directive.extra_wire_bytes,
                                directive.extra_sender_time,
                            );
                        }
                    }
                }
                Op::Recv { src, tag } => {
                    let taken = self.core.ranks[rank.idx()].inbox.take_specific(src, tag);
                    match taken {
                        Some(arr) => self.deliver(rank, arr),
                        None => {
                            self.core.ranks[rank.idx()].status = Status::BlockedRecv;
                            return;
                        }
                    }
                }
                Op::RecvAny { tag } => {
                    let taken = self.core.ranks[rank.idx()].inbox.take_any(tag);
                    match taken {
                        Some(arr) => self.deliver(rank, arr),
                        None => {
                            self.core.ranks[rank.idx()].status = Status::BlockedRecv;
                            return;
                        }
                    }
                }
            }
        }
    }

    fn deliver(&mut self, rank: Rank, arr: crate::inbox::Arrived) {
        {
            let rs = &mut self.core.ranks[rank.idx()];
            rs.clock += arr.recv_cost;
            rs.app.deliver(arr.msg.payload);
            rs.pc += 1;
        }
        self.core.metrics.deliveries += 1;
        if let Some(rec) = self.core.recorder.as_deref_mut() {
            let now = self.core.sched.now();
            rec.on_deliver(now, arr.msg.src.0, rank.0, arr.msg.bytes);
        }
        self.protocol.on_deliver(
            &mut Ctx {
                core: &mut self.core,
            },
            &arr.msg,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NullProtocol;
    use crate::types::Tag;

    fn ping_pong(rounds: usize, bytes: u64) -> Application {
        let mut app = Application::new(2);
        for _ in 0..rounds {
            app.rank_mut(Rank(0)).send(Rank(1), bytes, Tag(0));
            app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
            app.rank_mut(Rank(1)).send(Rank(0), bytes, Tag(0));
            app.rank_mut(Rank(0)).recv(Rank(1), Tag(0));
        }
        app
    }

    #[test]
    fn ping_pong_completes() {
        let report = Sim::new(ping_pong(10, 8), SimConfig::default(), NullProtocol).run();
        assert!(report.completed(), "{:?}", report.status);
        assert_eq!(report.metrics.app_messages, 20);
        assert_eq!(report.metrics.deliveries, 20);
        assert!(report.trace.is_consistent());
    }

    #[test]
    fn ping_pong_latency_matches_model() {
        // 1 round of 8-byte ping-pong should take ~2 one-way latencies.
        let report = Sim::new(ping_pong(1, 8), SimConfig::default(), NullProtocol).run();
        let mx = MxModel::default();
        let expect = mx.cost(8).one_way() * 2;
        let got = report.makespan.since(SimTime::ZERO);
        let slack = SimDuration::from_ns(10);
        assert!(
            got >= expect && got <= expect + slack,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Sim::new(ping_pong(50, 100), SimConfig::default(), NullProtocol).run();
        let b = Sim::new(ping_pong(50, 100), SimConfig::default(), NullProtocol).run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.digests, b.digests);
        assert_eq!(a.metrics.events, b.metrics.events);
    }

    #[test]
    fn unmatched_recv_deadlocks_with_diagnostic() {
        let mut app = Application::new(2);
        app.rank_mut(Rank(0)).recv(Rank(1), Tag(0));
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        match report.status {
            RunStatus::Deadlock(diag) => {
                assert_eq!(diag.len(), 1);
                assert!(diag[0].contains("P0"), "{diag:?}");
                assert!(diag[0].contains("BlockedRecv"), "{diag:?}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn fifo_per_channel_ordering() {
        // P0 fires two sends back-to-back; P1 must see them in order even
        // though both are in flight simultaneously.
        let mut app = Application::new(2);
        app.rank_mut(Rank(0)).send(Rank(1), 8, Tag(0));
        app.rank_mut(Rank(0)).send(Rank(1), 8, Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        assert!(report.completed());
        assert!(report.trace.is_consistent());
    }

    #[test]
    fn wildcard_receives_complete() {
        let mut app = Application::new(3);
        app.rank_mut(Rank(0)).send(Rank(2), 64, Tag(1));
        app.rank_mut(Rank(1)).send(Rank(2), 64, Tag(1));
        app.rank_mut(Rank(2)).recv_any(Tag(1)).recv_any(Tag(1));
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        assert!(report.completed());
        assert_eq!(report.metrics.deliveries, 2);
    }

    #[test]
    fn wildcard_digest_is_order_independent() {
        // Two different senders race into a wildcard pair; the final digest
        // of the receiver must match regardless of delivery order because
        // the app is send-deterministic. Run with senders swapped in
        // priority by staggering compute.
        let build = |stagger: bool| {
            let mut app = Application::new(3);
            if stagger {
                app.rank_mut(Rank(0)).compute(SimDuration::from_us(50));
            }
            app.rank_mut(Rank(0)).send(Rank(2), 64, Tag(1));
            if !stagger {
                app.rank_mut(Rank(1)).compute(SimDuration::from_us(50));
            }
            app.rank_mut(Rank(1)).send(Rank(2), 64, Tag(1));
            app.rank_mut(Rank(2)).recv_any(Tag(1)).recv_any(Tag(1));
            app
        };
        let a = Sim::new(build(false), SimConfig::default(), NullProtocol).run();
        let b = Sim::new(build(true), SimConfig::default(), NullProtocol).run();
        assert!(a.completed() && b.completed());
        assert_eq!(
            a.digests[2], b.digests[2],
            "send-deterministic digest must not depend on arrival order"
        );
    }

    #[test]
    fn compute_advances_clock() {
        let mut app = Application::new(1);
        app.rank_mut(Rank(0))
            .compute(SimDuration::from_ms(3))
            .compute(SimDuration::from_ms(2));
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        assert!(report.completed());
        assert_eq!(report.makespan, SimTime::from_ms(5));
    }

    #[test]
    fn failed_rank_without_protocol_deadlocks() {
        let mut app = Application::new(2);
        app.rank_mut(Rank(0))
            .compute(SimDuration::from_ms(10))
            .send(Rank(1), 8, Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        let mut sim = Sim::new(app, SimConfig::default(), NullProtocol);
        sim.inject_failure(SimTime::from_ms(1), vec![Rank(0)]);
        let report = sim.run();
        assert!(matches!(report.status, RunStatus::Deadlock(_)));
        assert_eq!(report.metrics.failures, 1);
    }

    #[test]
    fn flat_topology_is_bit_for_bit_the_legacy_path() {
        // The oracle guarantee at the engine level: attaching a Flat
        // topology must not move a single picosecond or digest relative
        // to the legacy size-only path.
        let base: Arc<dyn NetworkModel> = Arc::new(MxModel::default());
        let cfg = SimConfig {
            topology: Some(Arc::new(Topology::flat(base.clone(), vec![0, 1]))),
            network: base,
            ..SimConfig::default()
        };
        let legacy = Sim::new(ping_pong(25, 4096), SimConfig::default(), NullProtocol).run();
        let flat = Sim::new(ping_pong(25, 4096), cfg, NullProtocol).run();
        assert!(legacy.completed() && flat.completed());
        assert_eq!(legacy.makespan, flat.makespan);
        assert_eq!(legacy.digests, flat.digests);
        assert_eq!(legacy.metrics.events, flat.metrics.events);
    }

    #[test]
    fn topology_prices_inter_cluster_traffic_higher() {
        use net_model::TopologyKind;
        let base: Arc<dyn NetworkModel> = Arc::new(MxModel::default());
        let run = |cluster_of: Vec<u32>| {
            let cfg = SimConfig {
                topology: Some(Arc::new(Topology::new(
                    TopologyKind::TwoLevel,
                    base.clone(),
                    cluster_of,
                ))),
                network: base.clone(),
                ..SimConfig::default()
            };
            Sim::new(ping_pong(10, 1024), cfg, NullProtocol).run()
        };
        let intra = run(vec![0, 0]);
        let inter = run(vec![0, 1]);
        assert!(intra.completed() && inter.completed());
        assert!(
            inter.makespan > intra.makespan,
            "inter-cluster ping-pong must pay the class-1 transit: {} vs {}",
            inter.makespan,
            intra.makespan
        );
        // Same messages, same digests: only the wire time moved.
        assert_eq!(intra.digests, inter.digests);
    }

    #[test]
    fn many_rank_ring_completes() {
        let n = 64u32;
        let mut app = Application::new(n as usize);
        for r in 0..n {
            let next = Rank((r + 1) % n);
            let prev = Rank((r + n - 1) % n);
            for _ in 0..10 {
                app.rank_mut(Rank(r)).send(next, 1024, Tag(0));
                app.rank_mut(Rank(r)).recv(prev, Tag(0));
            }
        }
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        assert!(report.completed(), "{:?}", report.status);
        assert_eq!(report.metrics.app_messages, (n as u64) * 10);
        assert!(report.trace.is_consistent());
    }
}
