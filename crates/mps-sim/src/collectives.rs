//! Collective-operation lowering.
//!
//! MPI collectives are lowered to point-to-point operations at program
//! build time, using the classic algorithms MPICH uses at these scales:
//! binomial trees for broadcast/reduce, recursive doubling for allreduce,
//! pairwise exchange for all-to-all and a dissemination barrier. All
//! receives are source-specific, so per-channel FIFO makes repeated
//! collectives on the same tag safe.
//!
//! The participant list is any subset of ranks (a "communicator"); indices
//! below are positions within that list.

use crate::program::Application;
use crate::types::{Rank, Tag};

/// Broadcast `bytes` from `root` (member of `ranks`) to all of `ranks`
/// via a binomial tree.
pub fn bcast(app: &mut Application, ranks: &[Rank], root: Rank, bytes: u64, tag: Tag) {
    let n = ranks.len();
    if n <= 1 {
        return;
    }
    let root_pos = pos_of(ranks, root);
    // Virtual index: rotate so the root is 0.
    let vrank = |pos: usize| (pos + n - root_pos) % n;
    let actual = |v: usize| ranks[(v + root_pos) % n];
    #[allow(clippy::needless_range_loop)] // pos feeds both vrank() and ranks[]
    for pos in 0..n {
        let v = vrank(pos);
        let me = ranks[pos];
        // Receive from parent (highest set bit cleared), then forward to
        // children in increasing mask order.
        if v != 0 {
            // Parent = v with its highest set bit cleared.
            app.rank_mut(me).recv(actual(v ^ highest_bit(v)), tag);
        }
        let mut mask = if v == 0 { 1 } else { highest_bit(v) << 1 };
        while mask < n {
            let child = v | mask;
            if child < n && (v & mask) == 0 {
                app.rank_mut(me).send(actual(child), bytes, tag);
            }
            if v & mask != 0 {
                break;
            }
            mask <<= 1;
        }
    }
}

fn highest_bit(v: usize) -> usize {
    debug_assert!(v > 0);
    1 << (usize::BITS - 1 - v.leading_zeros())
}

fn pos_of(ranks: &[Rank], r: Rank) -> usize {
    ranks
        .iter()
        .position(|&x| x == r)
        .expect("root must be a member of the communicator")
}

/// Reduce `bytes` from all of `ranks` to `root` via a binomial tree
/// (mirror image of [`bcast`]).
pub fn reduce(app: &mut Application, ranks: &[Rank], root: Rank, bytes: u64, tag: Tag) {
    let n = ranks.len();
    if n <= 1 {
        return;
    }
    let root_pos = pos_of(ranks, root);
    let vrank = |pos: usize| (pos + n - root_pos) % n;
    let actual = |v: usize| ranks[(v + root_pos) % n];
    #[allow(clippy::needless_range_loop)] // pos feeds both vrank() and ranks[]
    for pos in 0..n {
        let v = vrank(pos);
        let me = ranks[pos];
        // Receive from children (in increasing mask order), then send the
        // partial result to the parent.
        let mut mask = 1usize;
        while mask < n {
            if v & mask != 0 {
                break;
            }
            let child = v | mask;
            if child < n {
                app.rank_mut(me).recv(actual(child), tag);
            }
            mask <<= 1;
        }
        if v != 0 {
            // Parent in the reduce tree = v with its LOWEST set bit cleared
            // (the node that will absorb this partial result at the step
            // where this node drops out).
            app.rank_mut(me).send(actual(v & (v - 1)), bytes, tag);
        }
    }
}

/// Allreduce of `bytes` across `ranks`.
///
/// Power-of-two counts use recursive doubling (log2 n exchange rounds);
/// other counts fall back to reduce-then-broadcast rooted at the first
/// member.
pub fn allreduce(app: &mut Application, ranks: &[Rank], bytes: u64, tag: Tag) {
    let n = ranks.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        let mut mask = 1usize;
        while mask < n {
            for (pos, &me) in ranks.iter().enumerate() {
                let partner = ranks[pos ^ mask];
                app.rank_mut(me).send(partner, bytes, tag);
            }
            for (pos, &me) in ranks.iter().enumerate() {
                let partner = ranks[pos ^ mask];
                app.rank_mut(me).recv(partner, tag);
            }
            mask <<= 1;
        }
    } else {
        reduce(app, ranks, ranks[0], bytes, tag);
        bcast(app, ranks, ranks[0], bytes, tag);
    }
}

/// All-to-all personalised exchange: every member sends `bytes` to every
/// other member. Sends are posted first (non-blocking in the engine), then
/// receives in a shifted order to spread load.
pub fn alltoall(app: &mut Application, ranks: &[Rank], bytes: u64, tag: Tag) {
    let n = ranks.len();
    if n <= 1 {
        return;
    }
    for (pos, &me) in ranks.iter().enumerate() {
        for shift in 1..n {
            let dst = ranks[(pos + shift) % n];
            app.rank_mut(me).send(dst, bytes, tag);
        }
        for shift in 1..n {
            let src = ranks[(pos + n - shift) % n];
            app.rank_mut(me).recv(src, tag);
        }
    }
}

/// Dissemination barrier: ceil(log2 n) rounds of 1-byte tokens.
pub fn barrier(app: &mut Application, ranks: &[Rank], tag: Tag) {
    let n = ranks.len();
    if n <= 1 {
        return;
    }
    let rounds = usize::BITS - (n - 1).leading_zeros();
    for round in 0..rounds {
        let dist = 1usize << round;
        for (pos, &me) in ranks.iter().enumerate() {
            let to = ranks[(pos + dist) % n];
            app.rank_mut(me).send(to, 1, tag);
        }
        for (pos, &me) in ranks.iter().enumerate() {
            let from = ranks[(pos + n - dist) % n];
            app.rank_mut(me).recv(from, tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Sim, SimConfig};
    use crate::protocol::NullProtocol;

    fn ranks(n: u32) -> Vec<Rank> {
        (0..n).map(Rank).collect()
    }

    fn run(app: Application) -> crate::engine::RunReport {
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        assert!(report.completed(), "{:?}", report.status);
        assert!(report.trace.is_consistent());
        report
    }

    #[test]
    fn bcast_message_count() {
        for n in [2usize, 3, 4, 7, 8, 16, 17] {
            let mut app = Application::new(n);
            bcast(&mut app, &ranks(n as u32), Rank(0), 100, Tag(0));
            assert!(app.check_balance().is_ok(), "n={n}");
            let report = run(app);
            // A broadcast tree delivers exactly n-1 messages.
            assert_eq!(report.metrics.app_messages, (n - 1) as u64, "n={n}");
        }
    }

    #[test]
    fn bcast_nonzero_root() {
        let mut app = Application::new(5);
        bcast(&mut app, &ranks(5), Rank(3), 64, Tag(2));
        assert!(app.check_balance().is_ok());
        let report = run(app);
        assert_eq!(report.metrics.app_messages, 4);
    }

    #[test]
    fn reduce_message_count() {
        for n in [2usize, 4, 6, 8, 9] {
            let mut app = Application::new(n);
            reduce(&mut app, &ranks(n as u32), Rank(0), 100, Tag(0));
            assert!(app.check_balance().is_ok(), "n={n}");
            let report = run(app);
            assert_eq!(report.metrics.app_messages, (n - 1) as u64, "n={n}");
        }
    }

    #[test]
    fn allreduce_power_of_two_message_count() {
        for n in [2usize, 4, 8, 16] {
            let mut app = Application::new(n);
            allreduce(&mut app, &ranks(n as u32), 256, Tag(0));
            let report = run(app);
            // Recursive doubling: n messages per round, log2(n) rounds.
            let expect = (n * n.trailing_zeros() as usize) as u64;
            assert_eq!(report.metrics.app_messages, expect, "n={n}");
        }
    }

    #[test]
    fn allreduce_non_power_of_two_completes() {
        let mut app = Application::new(6);
        allreduce(&mut app, &ranks(6), 256, Tag(0));
        let report = run(app);
        assert_eq!(report.metrics.app_messages, 2 * 5);
    }

    #[test]
    fn alltoall_message_count() {
        for n in [2usize, 3, 5, 8] {
            let mut app = Application::new(n);
            alltoall(&mut app, &ranks(n as u32), 64, Tag(0));
            let report = run(app);
            assert_eq!(report.metrics.app_messages, (n * (n - 1)) as u64, "n={n}");
        }
    }

    #[test]
    fn barrier_completes_and_synchronises() {
        for n in [2usize, 3, 4, 9, 16] {
            let mut app = Application::new(n);
            barrier(&mut app, &ranks(n as u32), Tag(0));
            run(app);
        }
    }

    #[test]
    fn collectives_on_subcommunicator() {
        // Members 1,3,5 of a 6-rank app; ranks 0,2,4 stay idle.
        let members = vec![Rank(1), Rank(3), Rank(5)];
        let mut app = Application::new(6);
        bcast(&mut app, &members, Rank(3), 32, Tag(0));
        allreduce(&mut app, &members, 32, Tag(1));
        barrier(&mut app, &members, Tag(2));
        run(app);
    }

    #[test]
    fn back_to_back_collectives_same_tag() {
        // FIFO per channel means reusing a tag across iterations is safe.
        let mut app = Application::new(8);
        for _ in 0..5 {
            allreduce(&mut app, &ranks(8), 128, Tag(0));
        }
        run(app);
    }
}
