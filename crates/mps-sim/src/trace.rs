//! Communication tracing and execution oracles.
//!
//! Two consumers:
//!
//! * the **clustering** crate builds its communication graph from the
//!   [`CommMatrix`] (bytes and message counts per directed channel) — the
//!   same information the paper extracts by instrumenting MPICH2;
//! * the **correctness oracles** use the identity map: every application
//!   send is recorded under its stable identity `(channel, channel_seq)`.
//!   A recovered execution re-emits some sends; if any re-emission differs
//!   in size or payload from the original, the execution violated
//!   send-determinism (or the protocol replayed the wrong thing) and the
//!   conflict is recorded.

use crate::types::{ChannelId, Message, Rank};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dense per-channel traffic counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommMatrix {
    n: usize,
    bytes: Vec<u64>,
    msgs: Vec<u64>,
}

impl CommMatrix {
    pub fn new(n: usize) -> Self {
        CommMatrix {
            n,
            bytes: vec![0; n * n],
            msgs: vec![0; n * n],
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, src: Rank, dst: Rank) -> usize {
        src.idx() * self.n + dst.idx()
    }

    pub fn record(&mut self, src: Rank, dst: Rank, bytes: u64) {
        let i = self.idx(src, dst);
        self.bytes[i] += bytes;
        self.msgs[i] += 1;
    }

    pub fn bytes_between(&self, src: Rank, dst: Rank) -> u64 {
        self.bytes[self.idx(src, dst)]
    }

    pub fn msgs_between(&self, src: Rank, dst: Rank) -> u64 {
        self.msgs[self.idx(src, dst)]
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Iterate non-empty directed channels as `(src, dst, bytes, msgs)`.
    pub fn channels(&self) -> impl Iterator<Item = (Rank, Rank, u64, u64)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n).filter_map(move |d| {
                let i = s * self.n + d;
                if self.msgs[i] == 0 {
                    None
                } else {
                    Some((Rank(s as u32), Rank(d as u32), self.bytes[i], self.msgs[i]))
                }
            })
        })
    }
}

/// Identity record of one application send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendIdentity {
    pub bytes: u64,
    pub payload: u64,
}

/// Execution trace with built-in determinism oracle.
///
/// Identities are **interned per channel**: `channel_seq` is consecutive
/// from 1 on every directed channel, so each channel's identities live in
/// a dense arena indexed by `seq - 1` — an O(1) append on first emission
/// and an O(1) probe on re-emission, instead of a per-message tree node
/// (one `BTreeMap` entry per message for the whole run was both the
/// allocation hot spot and the memory hog of large sims). `sparse` catches
/// the out-of-sequence case (a replay racing ahead of the recorded
/// prefix), which cannot happen under the engine's FIFO channels but keeps
/// the oracle total.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    pub matrix: CommMatrix,
    /// First-seen identity of each message, densely interned per channel:
    /// `dense[channel][seq - 1]`.
    dense: BTreeMap<ChannelId, Vec<SendIdentity>>,
    /// Identities whose `channel_seq` arrived beyond the dense prefix.
    sparse: BTreeMap<(ChannelId, u64), SendIdentity>,
    /// Oracle violations discovered during the run.
    pub violations: Vec<String>,
    /// Count of re-emissions that matched their original (replays and
    /// re-executed sends during recovery).
    pub consistent_reemissions: u64,
}

impl Trace {
    pub fn new(n: usize) -> Self {
        Trace {
            matrix: CommMatrix::new(n),
            dense: BTreeMap::new(),
            sparse: BTreeMap::new(),
            violations: Vec::new(),
            consistent_reemissions: 0,
        }
    }

    /// Look up the first-seen identity of `(channel, seq)`.
    fn identity(&self, channel: ChannelId, seq: u64) -> Option<&SendIdentity> {
        if seq == 0 {
            return self.sparse.get(&(channel, seq));
        }
        match self.dense.get(&channel) {
            Some(v) if (seq as usize) <= v.len() => Some(&v[seq as usize - 1]),
            _ => self.sparse.get(&(channel, seq)),
        }
    }

    /// Intern a first emission.
    fn intern(&mut self, channel: ChannelId, seq: u64, id: SendIdentity) {
        if seq >= 1 {
            let v = self.dense.entry(channel).or_default();
            if seq as usize == v.len() + 1 {
                v.push(id);
                return;
            }
        }
        self.sparse.insert((channel, seq), id);
    }

    /// Record a send (fresh, re-executed, or suppressed-as-orphan; replayed
    /// log deliveries are *not* recorded here — they are copies, checked on
    /// delivery instead). Only first emissions count toward the comm
    /// matrix, so the matrix reflects the failure-free communication
    /// pattern.
    pub fn record_send(&mut self, msg: &Message) {
        let channel = msg.channel();
        match self.identity(channel, msg.channel_seq).copied() {
            None => {
                self.intern(
                    channel,
                    msg.channel_seq,
                    SendIdentity {
                        bytes: msg.bytes,
                        payload: msg.payload,
                    },
                );
                self.matrix.record(msg.src, msg.dst, msg.bytes);
            }
            Some(orig) => {
                if orig.bytes == msg.bytes && orig.payload == msg.payload {
                    self.consistent_reemissions += 1;
                } else {
                    self.violations.push(format!(
                        "send-determinism violation on {src}->{dst} seq {seq}: \
                         original ({ob} B, payload {op:#x}), re-emission ({nb} B, payload {np:#x})",
                        src = msg.src,
                        dst = msg.dst,
                        seq = msg.channel_seq,
                        ob = orig.bytes,
                        op = orig.payload,
                        nb = msg.bytes,
                        np = msg.payload,
                    ));
                }
            }
        }
    }

    /// Verify a replayed (logged) message against the original emission.
    pub fn check_replay(&mut self, msg: &Message) {
        match self.identity(msg.channel(), msg.channel_seq).copied() {
            Some(orig) if orig.bytes == msg.bytes && orig.payload == msg.payload => {
                self.consistent_reemissions += 1;
            }
            Some(orig) => self.violations.push(format!(
                "replay mismatch on {src}->{dst} seq {seq}: logged ({nb} B, {np:#x}) vs \
                 original ({ob} B, {op:#x})",
                src = msg.src,
                dst = msg.dst,
                seq = msg.channel_seq,
                nb = msg.bytes,
                np = msg.payload,
                ob = orig.bytes,
                op = orig.payload,
            )),
            None => self.violations.push(format!(
                "replay of never-sent message {src}->{dst} seq {seq}",
                src = msg.src,
                dst = msg.dst,
                seq = msg.channel_seq,
            )),
        }
    }

    /// Merge another shard's trace into this one (sharded runs,
    /// DESIGN.md §2.8). Sends are recorded on the *sender's* shard, and
    /// every directed channel has exactly one sender, so the per-channel
    /// identity maps of two shards are disjoint — the merge is a union,
    /// never a conflict resolution. Matrix cells sum (disjoint channels:
    /// one side is zero), violations concatenate, and re-emission counts
    /// add.
    pub fn absorb(&mut self, other: Trace) {
        assert_eq!(self.matrix.n, other.matrix.n);
        for i in 0..self.matrix.bytes.len() {
            self.matrix.bytes[i] += other.matrix.bytes[i];
            self.matrix.msgs[i] += other.matrix.msgs[i];
        }
        for (channel, v) in other.dense {
            let prev = self.dense.insert(channel, v);
            debug_assert!(prev.is_none(), "channel {channel:?} recorded on two shards");
        }
        for (k, id) in other.sparse {
            let prev = self.sparse.insert(k, id);
            debug_assert!(prev.is_none(), "sparse identity {k:?} on two shards");
        }
        self.violations.extend(other.violations);
        self.consistent_reemissions += other.consistent_reemissions;
    }

    /// Number of distinct application messages observed.
    pub fn distinct_messages(&self) -> usize {
        self.dense.values().map(Vec::len).sum::<usize>() + self.sparse.len()
    }

    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PbMeta, Tag};

    fn msg(seq: u64, bytes: u64, payload: u64) -> Message {
        Message {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(0),
            bytes,
            payload,
            channel_seq: seq,
            meta: PbMeta::default(),
            replayed: false,
        }
    }

    #[test]
    fn matrix_accumulates() {
        let mut m = CommMatrix::new(3);
        m.record(Rank(0), Rank(1), 100);
        m.record(Rank(0), Rank(1), 50);
        m.record(Rank(2), Rank(0), 7);
        assert_eq!(m.bytes_between(Rank(0), Rank(1)), 150);
        assert_eq!(m.msgs_between(Rank(0), Rank(1)), 2);
        assert_eq!(m.total_bytes(), 157);
        assert_eq!(m.total_msgs(), 3);
        let chans: Vec<_> = m.channels().collect();
        assert_eq!(chans.len(), 2);
    }

    #[test]
    fn reemission_identical_is_consistent() {
        let mut t = Trace::new(2);
        t.record_send(&msg(1, 100, 0xAB));
        t.record_send(&msg(1, 100, 0xAB));
        assert!(t.is_consistent());
        assert_eq!(t.consistent_reemissions, 1);
        // matrix counts the message once
        assert_eq!(t.matrix.msgs_between(Rank(0), Rank(1)), 1);
    }

    #[test]
    fn reemission_differing_payload_is_violation() {
        let mut t = Trace::new(2);
        t.record_send(&msg(1, 100, 0xAB));
        t.record_send(&msg(1, 100, 0xCD));
        assert!(!t.is_consistent());
        assert!(t.violations[0].contains("send-determinism violation"));
    }

    #[test]
    fn replay_checks_against_original() {
        let mut t = Trace::new(2);
        t.record_send(&msg(3, 64, 0x1));
        t.check_replay(&msg(3, 64, 0x1));
        assert!(t.is_consistent());
        t.check_replay(&msg(3, 64, 0x2));
        assert!(!t.is_consistent());
    }

    #[test]
    fn replay_of_unknown_message_flagged() {
        let mut t = Trace::new(2);
        t.check_replay(&msg(9, 8, 0x9));
        assert!(t.violations[0].contains("never-sent"));
    }

    #[test]
    fn sequential_sends_intern_densely() {
        let mut t = Trace::new(2);
        for seq in 1..=1000u64 {
            t.record_send(&msg(seq, 8, seq));
        }
        assert_eq!(t.distinct_messages(), 1000);
        assert!(t.sparse.is_empty(), "FIFO seqs must stay in the arena");
        // Re-emissions of interned identities are matched exactly.
        t.record_send(&msg(500, 8, 500));
        assert!(t.is_consistent());
        assert_eq!(t.consistent_reemissions, 1);
        t.record_send(&msg(500, 8, 999));
        assert!(!t.is_consistent());
    }

    #[test]
    fn absorb_unions_disjoint_shard_traces() {
        let mut a = Trace::new(3);
        a.record_send(&msg(1, 100, 0xA));
        a.record_send(&msg(1, 100, 0xA)); // re-emission
        let mut b = Trace::new(3);
        b.record_send(&Message {
            src: Rank(2),
            dst: Rank(0),
            tag: Tag(0),
            bytes: 7,
            payload: 0xB,
            channel_seq: 1,
            meta: PbMeta::default(),
            replayed: false,
        });
        b.violations.push("shard-local violation".into());
        a.absorb(b);
        assert_eq!(a.distinct_messages(), 2);
        assert_eq!(a.consistent_reemissions, 1);
        assert_eq!(a.matrix.total_bytes(), 107);
        assert_eq!(a.matrix.msgs_between(Rank(2), Rank(0)), 1);
        assert_eq!(a.violations.len(), 1);
    }

    #[test]
    fn out_of_sequence_seq_falls_back_to_sparse() {
        let mut t = Trace::new(2);
        t.record_send(&msg(1, 8, 0xA));
        t.record_send(&msg(7, 8, 0xB)); // gap: seqs 2..=6 never seen
        assert_eq!(t.distinct_messages(), 2);
        assert_eq!(t.sparse.len(), 1);
        // Both identities remain addressable.
        t.check_replay(&msg(1, 8, 0xA));
        t.check_replay(&msg(7, 8, 0xB));
        assert!(t.is_consistent());
        t.check_replay(&msg(7, 8, 0xC));
        assert!(!t.is_consistent());
    }
}
