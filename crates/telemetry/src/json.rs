//! A minimal JSON parser for validating exported artefacts.
//!
//! The workspace's vendored `serde_json` stub only *serializes* (the
//! repo builds fully offline), so schema validation — the CI trace-smoke
//! job and the exporter's own tests — needs a reader. This is a strict
//! recursive-descent parser for the standard grammar: no trailing
//! commas, no comments, numbers parsed as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Key order preserved; duplicate keys kept as-is.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Look up `key` in an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parse one complete JSON document; trailing whitespace allowed,
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        // Surrogate pairs are not emitted by our writers;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control char in string at byte {}", self.pos))
                }
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + width)
                            .ok_or("truncated UTF-8 sequence")?;
                        let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(parse(r#""a\"bA""#).unwrap(), Value::String("a\"bA".into()));
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "[1,]", "{", "{\"a\"}", "[1 2]", "tru", "\"abc", "1x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn handles_utf8_and_nesting() {
        let v = parse("{\"k\": \"héllo ✓\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo ✓"));
        let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&deep).is_ok());
    }
}
