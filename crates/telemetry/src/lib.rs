//! # telemetry — virtual-time observability for the simulation engine
//!
//! The engine's end-of-run [`Metrics`](../mps_sim/struct.Metrics.html) are
//! scalars; the paper's §V–§VI claims are *time decompositions* — how a
//! run's makespan splits into compute, logging, checkpoint I/O, rollback
//! and replay per containment domain. This crate provides the layer that
//! captures those timelines without perturbing the simulation:
//!
//! * [`Recorder`] — an object-safe observer trait with no-op defaults.
//!   The engine holds `Option<Box<dyn Recorder>>`; when `None` (the
//!   default) the hot path pays exactly one branch. Recorders receive
//!   **virtual-time** spans and samples; they must never feed anything
//!   back into the engine (see DESIGN.md §2.5).
//! * [`SpanRecorder`] — buffers spans per (cluster, track) and exports
//!   Chrome trace-event JSON loadable in Perfetto (`chrome://tracing`),
//!   with one track per cluster plus storage-pipe and failure-injection
//!   tracks.
//! * [`Sampler`] — periodic virtual-time samples (logged bytes, in-flight
//!   messages, queue depth, cumulative waste) as JSONL time series.
//! * [`Fanout`] — composes several recorders behind one `Box`.
//!
//! IDs are plain integers (`u32` rank/cluster) so this crate sits *below*
//! the engine in the dependency graph and both the engine and the
//! protocols can emit events without a cycle.

pub mod json;
pub mod sampler;
pub mod span;

pub use sampler::{SampleHandle, SampleRow, Sampler};
pub use span::{validate_chrome_trace, SpanHandle, SpanRecorder, TraceEvent, TraceStats};

use det_sim::{SimDuration, SimTime};

/// Engine gauges passed to [`Recorder::on_tick`]: a snapshot of the
/// counters a time-series recorder might sample. Building one is a few
/// integer loads; the engine only does it when a recorder is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauges {
    /// Events processed so far.
    pub events: u64,
    /// Live events in the scheduler queue.
    pub queue_depth: usize,
    /// Messages (app + ctl) currently in flight on the network.
    pub inflight_msgs: usize,
    /// Bytes currently held in sender-side logs.
    pub logged_bytes: u64,
    /// Application messages delivered so far.
    pub deliveries: u64,
    /// Cumulative checkpoint overhead, picoseconds.
    pub checkpoint_time_ps: u64,
    /// Cumulative compute discarded by rollbacks, picoseconds.
    pub lost_work_ps: u64,
}

/// Phases of one cluster's recovery choreography, in order. `Detect` and
/// `Complete` are instants (`begin == end`); `Rollback` and `Replay` are
/// spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryPhase {
    /// Failure observed (instant, at the injection time).
    Detect,
    /// Checkpoint restore: restart latency + storage read.
    Rollback,
    /// Log replay until the cluster rejoins the frontier.
    Replay,
    /// Recovery finished for this cluster (instant).
    Complete,
}

impl RecoveryPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryPhase::Detect => "detect",
            RecoveryPhase::Rollback => "rollback",
            RecoveryPhase::Replay => "replay",
            RecoveryPhase::Complete => "complete",
        }
    }
}

/// Direction of a stable-storage batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageDir {
    Write,
    Read,
}

impl StorageDir {
    pub fn as_str(self) -> &'static str {
        match self {
            StorageDir::Write => "write",
            StorageDir::Read => "read",
        }
    }
}

/// Observer of one simulation run. Every method has a no-op default, so
/// a recorder implements only what it consumes; all times are **virtual**
/// (the engine's picosecond clock), never wall clock.
///
/// Determinism contract (DESIGN.md §2.5): recorders observe, they never
/// influence. The engine calls them *after* state transitions and ignores
/// anything they do; a run with any recorder attached must produce
/// bit-for-bit the digests, metrics and makespan of a run with none
/// (locked in by `tests/recorder_neutrality.rs`).
pub trait Recorder: Send {
    /// One engine event processed at `now`. This is the per-event hook —
    /// the only one on the hot path — so implementations should be O(1).
    fn on_tick(&mut self, _now: SimTime, _gauges: &Gauges) {}

    /// Application message transmitted (`replayed` for log replays).
    fn on_send(&mut self, _now: SimTime, _src: u32, _dst: u32, _bytes: u64, _replayed: bool) {}

    /// Application message delivered to the receiver's program.
    fn on_deliver(&mut self, _now: SimTime, _src: u32, _dst: u32, _bytes: u64) {}

    /// Fail-stop failure of `ranks` injected at `now`.
    fn on_failure(&mut self, _now: SimTime, _ranks: &[u32]) {}

    /// Cluster checkpoint: coordination + storage write spanning
    /// `[begin, end]`, writing `bytes` to stable storage.
    fn on_checkpoint(&mut self, _cluster: u32, _begin: SimTime, _end: SimTime, _bytes: u64) {}

    /// Recovery phase transition for one cluster (see [`RecoveryPhase`]).
    fn on_recovery_phase(
        &mut self,
        _cluster: u32,
        _phase: RecoveryPhase,
        _begin: SimTime,
        _end: SimTime,
    ) {
    }

    /// Stable-storage batch accepted at `begin`: `queued` waiting for the
    /// pipe, then `service` (latency + transfer) moving `bytes`.
    fn on_storage(
        &mut self,
        _dir: StorageDir,
        _begin: SimTime,
        _queued: SimDuration,
        _service: SimDuration,
        _bytes: u64,
    ) {
    }

    /// Run finished (completed, deadlocked or event-limited) with the
    /// final `makespan` and gauges.
    fn on_run_end(&mut self, _makespan: SimTime, _gauges: &Gauges) {}
}

/// A recorder that does nothing. Useful to measure the cost of the
/// instrumentation points themselves (the perf-baseline overhead gate
/// attaches one so every dyn-dispatch site fires).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Broadcast every event to several recorders (e.g. a [`SpanRecorder`]
/// and a [`Sampler`] on the same run).
#[derive(Default)]
pub struct Fanout {
    recorders: Vec<Box<dyn Recorder>>,
}

impl Fanout {
    pub fn new() -> Self {
        Fanout::default()
    }

    pub fn push(mut self, r: Box<dyn Recorder>) -> Self {
        self.recorders.push(r);
        self
    }
}

impl Recorder for Fanout {
    fn on_tick(&mut self, now: SimTime, gauges: &Gauges) {
        for r in &mut self.recorders {
            r.on_tick(now, gauges);
        }
    }

    fn on_send(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64, replayed: bool) {
        for r in &mut self.recorders {
            r.on_send(now, src, dst, bytes, replayed);
        }
    }

    fn on_deliver(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) {
        for r in &mut self.recorders {
            r.on_deliver(now, src, dst, bytes);
        }
    }

    fn on_failure(&mut self, now: SimTime, ranks: &[u32]) {
        for r in &mut self.recorders {
            r.on_failure(now, ranks);
        }
    }

    fn on_checkpoint(&mut self, cluster: u32, begin: SimTime, end: SimTime, bytes: u64) {
        for r in &mut self.recorders {
            r.on_checkpoint(cluster, begin, end, bytes);
        }
    }

    fn on_recovery_phase(
        &mut self,
        cluster: u32,
        phase: RecoveryPhase,
        begin: SimTime,
        end: SimTime,
    ) {
        for r in &mut self.recorders {
            r.on_recovery_phase(cluster, phase, begin, end);
        }
    }

    fn on_storage(
        &mut self,
        dir: StorageDir,
        begin: SimTime,
        queued: SimDuration,
        service: SimDuration,
        bytes: u64,
    ) {
        for r in &mut self.recorders {
            r.on_storage(dir, begin, queued, service, bytes);
        }
    }

    fn on_run_end(&mut self, makespan: SimTime, gauges: &Gauges) {
        for r in &mut self.recorders {
            r.on_run_end(makespan, gauges);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_is_object_safe_with_noop_defaults() {
        struct CountTicks(u64);
        impl Recorder for CountTicks {
            fn on_tick(&mut self, _now: SimTime, _g: &Gauges) {
                self.0 += 1;
            }
        }
        let mut boxed: Box<dyn Recorder> = Box::new(CountTicks(0));
        boxed.on_tick(SimTime::ZERO, &Gauges::default());
        boxed.on_send(SimTime::ZERO, 0, 1, 8, false); // default: no-op
        let mut noop: Box<dyn Recorder> = Box::new(NoopRecorder);
        noop.on_run_end(SimTime::from_ms(1), &Gauges::default());
    }

    #[test]
    fn fanout_broadcasts() {
        struct Tally {
            ticks: std::sync::Arc<std::sync::atomic::AtomicU64>,
        }
        impl Recorder for Tally {
            fn on_tick(&mut self, _now: SimTime, _g: &Gauges) {
                self.ticks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let a = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut f = Fanout::new()
            .push(Box::new(Tally { ticks: a.clone() }))
            .push(Box::new(Tally { ticks: a.clone() }));
        f.on_tick(SimTime::ZERO, &Gauges::default());
        assert_eq!(a.load(std::sync::atomic::Ordering::Relaxed), 2);
    }
}
