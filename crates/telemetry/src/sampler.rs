//! Periodic virtual-time sampling to JSONL time series.
//!
//! A [`Sampler`] turns the engine's per-event [`Gauges`] into a
//! fixed-interval time series: one row per elapsed interval of *virtual*
//! time, sample-and-hold semantics (the row reports the most recent
//! gauges at or before its boundary). Rows serialize as JSON Lines so
//! plotting scripts can stream them without loading the whole run.

use crate::{Gauges, Recorder};
use det_sim::{SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// One sample row. All divisions behind the derived fields are guarded:
/// no NaN or infinity can reach the serialized artefact (ISSUE 6
/// satellite; `tests` lock it in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRow {
    /// Sample boundary, integer picoseconds (exact).
    pub t_ps: u64,
    /// Sample boundary in seconds (for plotting).
    pub t_s: f64,
    pub events: u64,
    pub queue_depth: usize,
    pub inflight_msgs: usize,
    pub logged_bytes: u64,
    pub deliveries: u64,
    /// Cumulative fault-tolerance waste (checkpoint overhead + lost
    /// work), seconds.
    pub cum_waste_s: f64,
    /// Events processed per *virtual* second since the previous row
    /// (0 for the first row or a degenerate zero-length interval).
    pub events_per_vs: f64,
}

impl SampleRow {
    fn from_gauges(t: SimTime, g: &Gauges, prev_events: u64, interval: SimDuration) -> Self {
        let interval_s = interval.as_secs_f64();
        let delta = g.events.saturating_sub(prev_events);
        // Guard: a zero/degenerate interval yields rate 0, never inf/NaN.
        let events_per_vs = if interval_s > 0.0 && delta > 0 {
            delta as f64 / interval_s
        } else {
            0.0
        };
        SampleRow {
            t_ps: t.as_ps(),
            t_s: t.as_secs_f64(),
            events: g.events,
            queue_depth: g.queue_depth,
            inflight_msgs: g.inflight_msgs,
            logged_bytes: g.logged_bytes,
            deliveries: g.deliveries,
            cum_waste_s: SimDuration::from_ps(g.checkpoint_time_ps + g.lost_work_ps).as_secs_f64(),
            events_per_vs,
        }
    }

    /// Render as one JSON object (numbers only — nothing to escape).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"t_ps\":{},\"t_s\":{:.9},\"events\":{},\"queue_depth\":{},",
                "\"inflight_msgs\":{},\"logged_bytes\":{},\"deliveries\":{},",
                "\"cum_waste_s\":{:.9},\"events_per_vs\":{:.3}}}"
            ),
            self.t_ps,
            self.t_s,
            self.events,
            self.queue_depth,
            self.inflight_msgs,
            self.logged_bytes,
            self.deliveries,
            self.cum_waste_s,
            self.events_per_vs,
        )
    }
}

/// Shared row-buffer handle; the caller keeps it and exports after the
/// run (the engine owns the boxed [`Sampler`]).
#[derive(Clone, Default)]
pub struct SampleHandle {
    rows: Arc<Mutex<Vec<SampleRow>>>,
}

impl SampleHandle {
    pub fn rows(&self) -> Vec<SampleRow> {
        self.rows.lock().unwrap().clone()
    }

    /// Render all rows as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let rows = self.rows.lock().unwrap();
        let mut out = String::with_capacity(rows.len() * 128);
        for r in rows.iter() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

/// Emits one [`SampleRow`] per `interval` of virtual time, plus a final
/// row at the makespan.
pub struct Sampler {
    interval: SimDuration,
    next: SimTime,
    prev_events: u64,
    last_emitted: Option<SimTime>,
    handle: SampleHandle,
}

impl Sampler {
    /// `interval` is clamped to at least 1 ps: a zero interval would
    /// otherwise loop forever on the first tick (satellite guard).
    pub fn new(interval: SimDuration) -> (Self, SampleHandle) {
        let interval = interval.max(SimDuration::from_ps(1));
        let handle = SampleHandle::default();
        (
            Sampler {
                interval,
                next: SimTime::ZERO + interval,
                prev_events: 0,
                last_emitted: None,
                handle: handle.clone(),
            },
            handle,
        )
    }

    fn emit(&mut self, t: SimTime, g: &Gauges) {
        let row = SampleRow::from_gauges(t, g, self.prev_events, self.interval);
        self.handle.rows.lock().unwrap().push(row);
        self.prev_events = g.events;
        self.last_emitted = Some(t);
    }
}

impl Recorder for Sampler {
    fn on_tick(&mut self, now: SimTime, gauges: &Gauges) {
        while self.next <= now {
            let t = self.next;
            self.emit(t, gauges);
            self.next = t + self.interval;
        }
    }

    fn on_run_end(&mut self, makespan: SimTime, gauges: &Gauges) {
        if self.last_emitted != Some(makespan) {
            self.emit(makespan, gauges);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(events: u64, logged: u64) -> Gauges {
        Gauges {
            events,
            logged_bytes: logged,
            ..Gauges::default()
        }
    }

    #[test]
    fn samples_on_interval_boundaries() {
        let (mut s, h) = Sampler::new(SimDuration::from_ms(1));
        s.on_tick(SimTime::from_us(500), &g(10, 0));
        assert!(h.rows().is_empty(), "before first boundary");
        s.on_tick(SimTime::from_us(2500), &g(30, 64));
        let rows = h.rows();
        assert_eq!(rows.len(), 2, "boundaries at 1ms and 2ms crossed");
        assert_eq!(rows[0].t_ps, SimTime::from_ms(1).as_ps());
        assert_eq!(rows[1].t_ps, SimTime::from_ms(2).as_ps());
        assert_eq!(rows[0].events, 30, "sample-and-hold of latest gauges");
        s.on_run_end(SimTime::from_ms(3), &g(40, 64));
        assert_eq!(h.rows().len(), 3, "final row at makespan");
    }

    #[test]
    fn zero_interval_is_clamped_not_infinite() {
        let (mut s, h) = Sampler::new(SimDuration::ZERO);
        // With a 0 interval this loop would never terminate; the clamp to
        // 1 ps makes it emit exactly 5 rows.
        s.on_tick(SimTime::from_ps(5), &g(1, 0));
        assert_eq!(h.rows().len(), 5);
    }

    #[test]
    fn rates_and_waste_never_nan_or_inf() {
        let (mut s, h) = Sampler::new(SimDuration::from_ps(1));
        s.on_run_end(SimTime::ZERO, &Gauges::default()); // zero-makespan run
        s.on_tick(SimTime::from_ps(1), &g(0, 0));
        for r in h.rows() {
            for v in [r.t_s, r.cum_waste_s, r.events_per_vs] {
                assert!(v.is_finite(), "{r:?}");
            }
            // NaN/inf are not valid JSON number tokens, so a strict
            // parse rejects any leak.
            crate::json::parse(&r.to_json()).expect("row stays valid JSON");
        }
    }

    #[test]
    fn jsonl_rows_parse_as_json() {
        let (mut s, h) = Sampler::new(SimDuration::from_ms(1));
        s.on_tick(SimTime::from_ms(2), &g(100, 2048));
        s.on_run_end(SimTime::from_ms(2) + SimDuration::from_us(1), &g(120, 0));
        let jsonl = h.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            let v = crate::json::parse(line).expect("row is valid JSON");
            assert!(v.get("t_ps").unwrap().as_number().is_some());
            assert!(v.get("events_per_vs").unwrap().as_number().is_some());
        }
    }

    #[test]
    fn run_end_does_not_duplicate_boundary_row() {
        let (mut s, h) = Sampler::new(SimDuration::from_ms(1));
        s.on_tick(SimTime::from_ms(1), &g(5, 0));
        s.on_run_end(SimTime::from_ms(1), &g(5, 0));
        assert_eq!(h.rows().len(), 1);
    }
}
