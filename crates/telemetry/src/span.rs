//! Virtual-time span buffering and Chrome trace-event export.
//!
//! [`SpanRecorder`] buffers protocol-level spans (checkpoints, recovery
//! phases, storage batches, failure instants) per track and exports the
//! Chrome trace-event JSON array format, which Perfetto and
//! `chrome://tracing` load directly. Tracks map to `tid`s under one
//! `pid`: one track per cluster, plus a storage-pipe track and a
//! failure-injection track; `ph:"M"` metadata events carry the human
//! names.
//!
//! Timestamps: the trace-event format wants microseconds; the engine
//! counts picoseconds. Values are emitted as fractional microseconds with
//! six decimals, so single-picosecond resolution survives the export.

use crate::{Recorder, RecoveryPhase, StorageDir};
use det_sim::{SimDuration, SimTime};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// `tid` of the stable-storage pipe track.
pub const STORAGE_TID: u64 = 9998;
/// `tid` of the failure-injection track.
pub const FAILURES_TID: u64 = 9999;

/// One buffered trace event (span or instant) on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: String,
    /// Trace-event phase: `X` (complete span) or `i` (instant).
    pub ph: char,
    pub ts_ps: u64,
    /// Span duration (0 for instants).
    pub dur_ps: u64,
    pub tid: u64,
    /// Numeric arguments, rendered into the `args` object.
    pub args: Vec<(&'static str, u64)>,
}

/// Shared buffer handle: the engine owns the boxed [`SpanRecorder`], the
/// caller keeps the handle and exports after the run.
#[derive(Clone, Default)]
pub struct SpanHandle {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl SpanHandle {
    /// Snapshot of the buffered events (test/inspection use).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Render the buffer as a Chrome trace-event JSON array.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push('[');
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&s);
            *first = false;
        };
        push(
            r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"hydee-sim (virtual time)"}}"#.to_string(),
            &mut first,
        );
        let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        for tid in &tids {
            push(
                format!(
                    r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{tid},"args":{{"name":"{}"}}}}"#,
                    track_name(*tid)
                ),
                &mut first,
            );
        }
        for e in events.iter() {
            let mut args = String::new();
            for (k, v) in &e.args {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!(r#""{k}":{v}"#));
            }
            let body = match e.ph {
                'X' => format!(
                    r#"{{"name":"{}","cat":"sim","ph":"X","ts":{},"dur":{},"pid":1,"tid":{},"args":{{{args}}}}}"#,
                    escape_json(&e.name),
                    ps_to_us(e.ts_ps),
                    ps_to_us(e.dur_ps),
                    e.tid
                ),
                _ => format!(
                    r#"{{"name":"{}","cat":"sim","ph":"i","s":"t","ts":{},"pid":1,"tid":{},"args":{{{args}}}}}"#,
                    escape_json(&e.name),
                    ps_to_us(e.ts_ps),
                    e.tid
                ),
            };
            push(body, &mut first);
        }
        out.push_str("\n]\n");
        out
    }
}

/// Fixed-point picoseconds → fractional microseconds with 6 decimals
/// (exact: 1 ps == 1e-6 µs), avoiding float formatting entirely.
fn ps_to_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn track_name(tid: u64) -> String {
    match tid {
        STORAGE_TID => "storage pipe".into(),
        FAILURES_TID => "failures".into(),
        t => format!("cluster {}", t - 1),
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Buffers spans per (cluster, track) for Perfetto export. Ignores the
/// per-event hooks (`on_tick`/`on_send`/`on_deliver`) — those belong to
/// the [`Sampler`](crate::Sampler); this recorder captures the sparse,
/// structural timeline the paper's figures draw.
#[derive(Default)]
pub struct SpanRecorder {
    handle: SpanHandle,
}

impl SpanRecorder {
    /// Create the recorder plus the export handle the caller keeps.
    pub fn new() -> (Self, SpanHandle) {
        let rec = SpanRecorder::default();
        let handle = rec.handle.clone();
        (rec, handle)
    }

    fn push(&mut self, e: TraceEvent) {
        self.handle.events.lock().unwrap().push(e);
    }
}

/// Cluster `c` renders on `tid = c + 1` (tid 0 carries process metadata).
fn cluster_tid(cluster: u32) -> u64 {
    cluster as u64 + 1
}

impl Recorder for SpanRecorder {
    fn on_failure(&mut self, now: SimTime, ranks: &[u32]) {
        let label = ranks
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.push(TraceEvent {
            name: format!("failure P{label}"),
            ph: 'i',
            ts_ps: now.as_ps(),
            dur_ps: 0,
            tid: FAILURES_TID,
            args: vec![("ranks", ranks.len() as u64)],
        });
    }

    fn on_checkpoint(&mut self, cluster: u32, begin: SimTime, end: SimTime, bytes: u64) {
        self.push(TraceEvent {
            name: "checkpoint".into(),
            ph: 'X',
            ts_ps: begin.as_ps(),
            dur_ps: end.since(begin).as_ps(),
            tid: cluster_tid(cluster),
            args: vec![("bytes", bytes)],
        });
    }

    fn on_recovery_phase(
        &mut self,
        cluster: u32,
        phase: RecoveryPhase,
        begin: SimTime,
        end: SimTime,
    ) {
        let instant = matches!(phase, RecoveryPhase::Detect | RecoveryPhase::Complete);
        self.push(TraceEvent {
            name: phase.as_str().into(),
            ph: if instant { 'i' } else { 'X' },
            ts_ps: begin.as_ps(),
            dur_ps: end.since(begin).as_ps(),
            tid: cluster_tid(cluster),
            args: vec![],
        });
    }

    fn on_storage(
        &mut self,
        dir: StorageDir,
        begin: SimTime,
        queued: SimDuration,
        service: SimDuration,
        bytes: u64,
    ) {
        // Queueing renders as its own span so a saturated pipe is visible
        // as back-to-back "queued" blocks ahead of the service span.
        if queued > SimDuration::ZERO {
            self.push(TraceEvent {
                name: format!("{} queued", dir.as_str()),
                ph: 'X',
                ts_ps: begin.as_ps(),
                dur_ps: queued.as_ps(),
                tid: STORAGE_TID,
                args: vec![("bytes", bytes)],
            });
        }
        self.push(TraceEvent {
            name: dir.as_str().into(),
            ph: 'X',
            ts_ps: (begin + queued).as_ps(),
            dur_ps: service.as_ps(),
            tid: STORAGE_TID,
            args: vec![("bytes", bytes)],
        });
    }
}

/// Summary counts returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    pub spans: usize,
    pub instants: usize,
    pub metadata: usize,
    pub tracks: usize,
}

/// Validate `text` against the trace-event schema subset this crate
/// emits: a JSON array of objects, each with a string `name`, a `ph` of
/// `M`/`X`/`i`, numeric `pid`/`tid`, numeric `ts` (and `dur` for `X`).
/// Used by unit tests and by the CI trace-smoke job through the
/// `recovery` binary.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let value = crate::json::parse(text)?;
    let events = value.as_array().ok_or("top level is not an array")?;
    let mut stats = TraceStats::default();
    let mut tracks = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_object().ok_or(format!("event {i}: not an object"))?;
        let field = |k: &str| {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or(format!("event {i}: missing \"{k}\""))
        };
        field("name")?
            .as_str()
            .ok_or(format!("event {i}: \"name\" is not a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or(format!("event {i}: \"ph\" is not a string"))?;
        for k in ["pid", "tid"] {
            field(k)?
                .as_number()
                .ok_or(format!("event {i}: \"{k}\" is not a number"))?;
        }
        let tid = field("tid")?.as_number().unwrap();
        match ph {
            "M" => stats.metadata += 1,
            "X" => {
                for k in ["ts", "dur"] {
                    field(k)?
                        .as_number()
                        .ok_or(format!("event {i}: \"{k}\" is not a number"))?;
                }
                tracks.insert(tid.to_bits());
                stats.spans += 1;
            }
            "i" => {
                field("ts")?
                    .as_number()
                    .ok_or(format!("event {i}: \"ts\" is not a number"))?;
                tracks.insert(tid.to_bits());
                stats.instants += 1;
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    stats.tracks = tracks.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn spans_export_and_validate() {
        let (mut rec, handle) = SpanRecorder::new();
        rec.on_checkpoint(0, t(1), t(2), 4096);
        rec.on_failure(t(3), &[5, 6]);
        rec.on_recovery_phase(1, RecoveryPhase::Detect, t(3), t(3));
        rec.on_recovery_phase(1, RecoveryPhase::Rollback, t(3), t(5));
        rec.on_recovery_phase(1, RecoveryPhase::Replay, t(5), t(8));
        rec.on_recovery_phase(1, RecoveryPhase::Complete, t(8), t(8));
        rec.on_storage(
            StorageDir::Write,
            t(1),
            SimDuration::from_ms(1),
            SimDuration::from_ms(2),
            4096,
        );
        let json = handle.to_chrome_json();
        let stats = validate_chrome_trace(&json).expect("valid trace");
        // checkpoint + rollback + replay + write-queued + write spans.
        assert_eq!(stats.spans, 5);
        // failure + detect + complete instants.
        assert_eq!(stats.instants, 3);
        // process_name + one thread_name per used tid (cluster 0, cluster
        // 1, storage, failures).
        assert_eq!(stats.metadata, 1 + 4);
        assert_eq!(stats.tracks, 4);
        assert!(json.contains(r#""name":"rollback""#), "{json}");
        assert!(json.contains(r#""name":"cluster 1""#), "{json}");
    }

    #[test]
    fn timestamps_are_exact_fractional_microseconds() {
        assert_eq!(ps_to_us(1), "0.000001");
        assert_eq!(ps_to_us(1_000_000), "1.000000");
        assert_eq!(ps_to_us(1_234_567), "1.234567");
        // ~3 simulated hours stays exact (u64 arithmetic, no floats).
        assert_eq!(ps_to_us(10_800_000_000_000_000), "10800000000.000000");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[").is_err());
        assert!(validate_chrome_trace(r#"[{"ph":"X"}]"#).is_err());
        assert!(
            validate_chrome_trace(r#"[{"name":"a","ph":"X","pid":1,"tid":1,"ts":0}]"#).is_err(),
            "X span without dur must fail"
        );
        assert!(
            validate_chrome_trace(r#"[{"name":"a","ph":"i","pid":1,"tid":1,"ts":0.5}]"#).is_ok()
        );
    }

    #[test]
    fn names_are_json_escaped() {
        let (mut rec, handle) = SpanRecorder::new();
        rec.push(TraceEvent {
            name: "a\"b\\c".into(),
            ph: 'i',
            ts_ps: 0,
            dur_ps: 0,
            tid: FAILURES_TID,
            args: vec![],
        });
        let json = handle.to_chrome_json();
        validate_chrome_trace(&json).expect("escaped name still parses");
    }
}
