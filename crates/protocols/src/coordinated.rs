//! Global coordinated checkpointing — the classic baseline (§II, \[11\]).
//!
//! All processes checkpoint together (one consistent global cut including
//! channel state) and a failure of *any* process rolls back *all* of them
//! to the last checkpoint. No logging, no piggybacking, no recovery
//! choreography — but zero failure containment and a full-width I/O burst
//! at every checkpoint.

use det_sim::{SimDuration, SimTime};
use mps_sim::{
    CheckpointPolicy, CheckpointPolicyConfig, Ctx, InFlightMsg, PolicyObs, Protocol, Rank,
    RankSnapshot,
};
use net_model::{StableStorage, StorageLedger};

/// Configuration for [`GlobalCoordinated`].
#[derive(Debug, Clone)]
pub struct CoordinatedConfig {
    pub storage: StableStorage,
    /// `None` = only the implicit initial checkpoint at t=0. Sugar for
    /// a periodic [`CheckpointPolicyConfig`]; ignored when
    /// `checkpoint_policy` is set.
    pub checkpoint_interval: Option<SimDuration>,
    /// Checkpoint-scheduling policy (DESIGN.md §2.4). The machine is
    /// one policy "cluster" (id 0). `None`: derive from
    /// `checkpoint_interval`.
    pub checkpoint_policy: Option<CheckpointPolicyConfig>,
    pub first_checkpoint: SimTime,
    /// Per-rank process image bytes written at each checkpoint.
    pub image_bytes: u64,
    /// Fixed restart latency at rollback.
    pub restart_latency: SimDuration,
}

impl Default for CoordinatedConfig {
    fn default() -> Self {
        CoordinatedConfig {
            storage: StableStorage::default(),
            checkpoint_interval: None,
            checkpoint_policy: None,
            first_checkpoint: SimTime::from_ms(100),
            image_bytes: 64 << 20,
            restart_latency: SimDuration::from_ms(10),
        }
    }
}

impl CoordinatedConfig {
    /// The effective policy (`checkpoint_policy` wins over the interval
    /// sugar).
    pub fn resolved_policy(&self) -> CheckpointPolicyConfig {
        self.checkpoint_policy
            .unwrap_or(match self.checkpoint_interval {
                Some(interval) => CheckpointPolicyConfig::Periodic {
                    interval,
                    first: None,
                    stagger: None,
                },
                None => CheckpointPolicyConfig::Disabled,
            })
    }
}

struct GlobalCheckpoint {
    taken_at: SimTime,
    snaps: Vec<RankSnapshot>,
    inflight: Vec<InFlightMsg>,
    bytes: u64,
}

/// The protocol.
pub struct GlobalCoordinated {
    cfg: CoordinatedConfig,
    last: Option<GlobalCheckpoint>,
    /// Time of the previous rollback (`ZERO` = none): lost-work
    /// accounting counts each discarded span once, so a cascade re-roll
    /// adds only the work redone since the prior rollback.
    last_rollback_at: SimTime,
    n: usize,
    /// Checkpoint scheduler; the whole machine is policy cluster 0.
    policy: Option<Box<dyn CheckpointPolicy>>,
    /// Dynamic storage-contention ledger: the machine-wide write burst
    /// and the restart read are priced by actual virtual-time overlap,
    /// from the same mechanism as HydEE's staggered clusters.
    ledger: StorageLedger,
    last_ckpt_cost: SimDuration,
    ckpts_taken: u64,
}

impl GlobalCoordinated {
    pub fn new(cfg: CoordinatedConfig) -> Self {
        // Global coordination has no per-cluster stagger: one cluster.
        let policy = cfg
            .resolved_policy()
            .build(cfg.first_checkpoint, SimDuration::ZERO);
        let ledger = StorageLedger::new(cfg.storage);
        GlobalCoordinated {
            cfg,
            last: None,
            last_rollback_at: SimTime::ZERO,
            n: 0,
            policy,
            ledger,
            last_ckpt_cost: SimDuration::ZERO,
            ckpts_taken: 0,
        }
    }

    /// Route the storage ledger through an interconnect drain path
    /// (DESIGN.md §2.9): the machine-wide checkpoint burst pays the
    /// topology's widest link class on its way to stable storage. A
    /// `(ZERO, 0)` surcharge is a no-op. Call before the run starts.
    pub fn set_drain_surcharge(&mut self, latency: SimDuration, ps_per_byte: u64) {
        self.ledger = self.ledger.with_drain_surcharge(latency, ps_per_byte);
    }

    fn obs(&self, ctx: &Ctx<'_, ()>) -> PolicyObs {
        PolicyObs {
            checkpoints_taken: self.ckpts_taken,
            last_cost: self.last_ckpt_cost,
            est_cost: self
                .cfg
                .storage
                .write_time((self.n as u64).saturating_mul(self.cfg.image_bytes), 1),
            mtbf: ctx.failure_mtbf(),
            // No sender logs under coordinated checkpointing: a
            // LogPressure policy never fires here.
            log_bytes_since_ckpt: 0,
        }
    }

    /// Consult the policy as of `now` and arm the (single) timer.
    fn consult_policy(&mut self, ctx: &mut Ctx<'_, ()>, now: SimTime) {
        let obs = self.obs(ctx);
        if let Some(policy) = self.policy.as_mut() {
            if let Some(at) = policy.next_for(0, now, &obs) {
                ctx.set_timer(at.max(ctx.now()), 0);
            }
        }
    }

    fn all_ranks(&self) -> Vec<Rank> {
        (0..self.n as u32).map(Rank).collect()
    }

    fn capture(&mut self, ctx: &mut Ctx<'_, ()>) -> GlobalCheckpoint {
        let ranks = self.all_ranks();
        let inflight = ctx.capture_inflight_within(&ranks);
        let mut bytes = 0;
        let snaps: Vec<RankSnapshot> = ranks
            .iter()
            .map(|&r| {
                let s = ctx.capture_rank(r);
                bytes += self.cfg.image_bytes + s.image_bytes();
                s
            })
            .collect();
        GlobalCheckpoint {
            taken_at: ctx.now(),
            snaps,
            inflight,
            bytes,
        }
    }
}

impl Protocol for GlobalCoordinated {
    type Ctl = ();

    fn name(&self) -> &'static str {
        "coordinated"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, ()>) {
        self.n = ctx.n_ranks();
        // Implicit cost-free initial checkpoint.
        self.last = Some(self.capture(ctx));
        self.consult_policy(ctx, ctx.now());
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _id: u64) {
        let ckpt = self.capture(ctx);
        // Every rank writes simultaneously — the full-width I/O burst
        // the paper's §VI warns about, priced as one machine-wide batch
        // on the shared pipe (and queued behind anything it overlaps).
        let write = self.ledger.write_batch(ctx.now(), ckpt.bytes);
        // Global coordination barrier: two tree traversals of the machine.
        let levels = (usize::BITS - (self.n.max(1) - 1).leading_zeros()) as u64;
        let coord = ctx.wire_cost(32).one_way() * (2 * levels.max(1));
        let cost = coord + write.total();
        for r in self.all_ranks() {
            ctx.charge(r, cost);
        }
        let now = ctx.now();
        if let Some(rec) = ctx.recorder() {
            rec.on_storage(
                mps_sim::StorageDir::Write,
                now,
                write.queued,
                write.service,
                ckpt.bytes,
            );
            // The whole machine is one containment domain: cluster 0.
            rec.on_checkpoint(0, now, now + cost, ckpt.bytes);
        }
        ctx.metrics().checkpoints += self.n as u64;
        ctx.metrics().checkpoint_bytes += ckpt.bytes;
        ctx.metrics().checkpoint_time += cost * self.n as u64;
        self.last_ckpt_cost = cost;
        self.ckpts_taken += 1;
        self.last = Some(ckpt);
        // Consult the policy after the write completes (see
        // hydee::protocol) so a checkpoint costing more than the
        // interval cannot livelock.
        let resume = self
            .all_ranks()
            .into_iter()
            .map(|r| ctx.clock(r))
            .max()
            .unwrap_or_else(|| ctx.now());
        self.consult_policy(ctx, resume);
    }

    fn on_failure(&mut self, ctx: &mut Ctx<'_, ()>, _failed: &[Rank]) {
        let started = ctx.now();
        let ranks = self.all_ranks();
        ctx.metrics().ranks_rolled_back += self.n as u64;
        // Everything in flight addresses pre-failure state: drop it all,
        // the checkpoint's channel state replaces it.
        ctx.drop_inflight_to(&ranks);
        let ckpt = self.last.as_ref().expect("no global checkpoint");
        let lost_from = ckpt.taken_at.max(self.last_rollback_at);
        ctx.metrics().lost_work += started.since(lost_from) * self.n as u64;
        self.last_rollback_at = started;
        // One machine-wide restart-read batch: priced by the exact
        // checkpoint total (the old `bytes / n × n readers` dropped the
        // remainder) plus whatever it overlaps.
        let total = ckpt.bytes;
        let inflight = ckpt.inflight.clone();
        let snaps: Vec<RankSnapshot> = ckpt.snaps.clone();
        let read = self.ledger.read_batch(started, total);
        for (i, snap) in snaps.iter().enumerate() {
            ctx.restore_rank(Rank(i as u32), snap, false);
            ctx.charge(Rank(i as u32), self.cfg.restart_latency + read.total());
        }
        ctx.inject_inflight(&inflight);
        if let Some(rec) = ctx.recorder() {
            rec.on_storage(
                mps_sim::StorageDir::Read,
                started,
                read.queued,
                read.service,
                total,
            );
            // No log replay under coordinated checkpointing: recovery is
            // detect → machine-wide rollback → complete on cluster 0.
            let restored = started + self.cfg.restart_latency + read.total();
            rec.on_recovery_phase(0, mps_sim::RecoveryPhase::Detect, started, started);
            rec.on_recovery_phase(0, mps_sim::RecoveryPhase::Rollback, started, restored);
            rec.on_recovery_phase(0, mps_sim::RecoveryPhase::Complete, restored, restored);
        }
        let span = ctx.now().since(started);
        ctx.metrics().recovery_time += span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::{Application, Sim, SimConfig, Tag};

    fn ring_app(n: u32, rounds: usize) -> Application {
        let mut app = Application::new(n as usize);
        for r in 0..n {
            let next = Rank((r + 1) % n);
            let prev = Rank((r + n - 1) % n);
            for _ in 0..rounds {
                app.rank_mut(Rank(r)).send(next, 1024, Tag(0));
                app.rank_mut(Rank(r)).recv(prev, Tag(0));
            }
        }
        app
    }

    #[test]
    fn failure_free_adds_no_message_overhead() {
        let report = Sim::new(
            ring_app(8, 20),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        )
        .run();
        assert!(report.completed());
        // No piggyback: wire bytes == payload bytes.
        assert_eq!(report.metrics.wire_bytes, report.metrics.app_bytes);
        assert_eq!(report.metrics.logged_bytes_cumulative, 0);
    }

    #[test]
    fn failure_rolls_back_everyone() {
        let mut sim = Sim::new(
            ring_app(8, 100),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        );
        sim.inject_failure(SimTime::from_us(100), vec![Rank(3)]);
        let report = sim.run();
        assert!(report.completed(), "{:?}", report.status);
        assert_eq!(report.metrics.ranks_rolled_back, 8, "no containment");
        assert!(report.trace.is_consistent());
    }

    #[test]
    fn digests_match_golden_after_recovery() {
        let golden = Sim::new(
            ring_app(6, 60),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        )
        .run();
        let mut sim = Sim::new(
            ring_app(6, 60),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        );
        sim.inject_failure(SimTime::from_us(400), vec![Rank(0)]);
        let report = sim.run();
        assert!(report.completed());
        assert_eq!(report.digests, golden.digests);
    }

    #[test]
    fn periodic_checkpoints_reduce_lost_work() {
        // With periodic checkpoints the failure rolls back to a later cut,
        // so the recovered run finishes sooner than restart-from-zero.
        let mk = |interval: Option<SimDuration>| {
            let mut cfg = CoordinatedConfig {
                checkpoint_interval: interval,
                first_checkpoint: SimTime::from_us(200),
                // Keep checkpoints cheap relative to the interval.
                image_bytes: 4 << 10,
                restart_latency: SimDuration::from_us(10),
                ..Default::default()
            };
            cfg.storage.latency = SimDuration::from_us(10);
            let mut sim = Sim::new(
                ring_app(4, 2000),
                SimConfig::default(),
                GlobalCoordinated::new(cfg),
            );
            sim.inject_failure(SimTime::from_ms(4), vec![Rank(1)]);
            sim.run()
        };
        let without = mk(None);
        let with = mk(Some(SimDuration::from_us(500)));
        assert!(without.completed() && with.completed());
        assert!(
            with.makespan < without.makespan,
            "with={} without={}",
            with.makespan,
            without.makespan
        );
        assert!(with.metrics.checkpoints > 0);
    }

    #[test]
    fn young_daly_policy_drives_the_global_schedule() {
        use mps_sim::{CheckpointPolicyConfig, PoissonPerRank};
        let mk = |with_failures: bool| {
            let mut cfg = CoordinatedConfig {
                checkpoint_policy: Some(CheckpointPolicyConfig::YoungDaly {
                    first: Some(SimTime::from_us(200)),
                    stagger: None,
                }),
                image_bytes: 4 << 10,
                restart_latency: SimDuration::from_us(10),
                ..Default::default()
            };
            cfg.storage.latency = SimDuration::from_us(10);
            let mut sim = Sim::new(
                ring_app(4, 2000),
                SimConfig::default(),
                GlobalCoordinated::new(cfg),
            );
            if with_failures {
                sim.set_failure_model(Box::new(
                    PoissonPerRank::new(4, SimDuration::from_ms(20), 5).with_max_failures(1),
                ));
            }
            sim.run()
        };
        let clean = mk(false);
        assert!(clean.completed());
        assert_eq!(clean.metrics.checkpoints, 0, "no failure rate, no schedule");
        let failing = mk(true);
        assert!(failing.completed(), "{:?}", failing.status);
        assert!(failing.metrics.checkpoints > 0);
        assert!(failing.metrics.checkpoint_time > SimDuration::ZERO);
        assert!(failing.metrics.waste_fraction(4) > 0.0);
    }

    #[test]
    fn failure_of_multiple_ranks_recovers() {
        let mut sim = Sim::new(
            ring_app(8, 100),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        );
        sim.inject_failure(SimTime::from_us(100), vec![Rank(1), Rank(5)]);
        let report = sim.run();
        assert!(report.completed());
        assert_eq!(report.metrics.ranks_rolled_back, 8);
    }
}
