//! Global coordinated checkpointing — the classic baseline (§II, \[11\]).
//!
//! All processes checkpoint together (one consistent global cut including
//! channel state) and a failure of *any* process rolls back *all* of them
//! to the last checkpoint. No logging, no piggybacking, no recovery
//! choreography — but zero failure containment and a full-width I/O burst
//! at every checkpoint.

use det_sim::{SimDuration, SimTime};
use mps_sim::{Ctx, InFlightMsg, Protocol, Rank, RankSnapshot};
use net_model::StableStorage;

/// Configuration for [`GlobalCoordinated`].
#[derive(Debug, Clone)]
pub struct CoordinatedConfig {
    pub storage: StableStorage,
    /// `None` = only the implicit initial checkpoint at t=0.
    pub checkpoint_interval: Option<SimDuration>,
    pub first_checkpoint: SimTime,
    /// Per-rank process image bytes written at each checkpoint.
    pub image_bytes: u64,
    /// Fixed restart latency at rollback.
    pub restart_latency: SimDuration,
}

impl Default for CoordinatedConfig {
    fn default() -> Self {
        CoordinatedConfig {
            storage: StableStorage::default(),
            checkpoint_interval: None,
            first_checkpoint: SimTime::from_ms(100),
            image_bytes: 64 << 20,
            restart_latency: SimDuration::from_ms(10),
        }
    }
}

struct GlobalCheckpoint {
    taken_at: SimTime,
    snaps: Vec<RankSnapshot>,
    inflight: Vec<InFlightMsg>,
    bytes: u64,
}

/// The protocol.
pub struct GlobalCoordinated {
    cfg: CoordinatedConfig,
    last: Option<GlobalCheckpoint>,
    /// Time of the previous rollback (`ZERO` = none): lost-work
    /// accounting counts each discarded span once, so a cascade re-roll
    /// adds only the work redone since the prior rollback.
    last_rollback_at: SimTime,
    n: usize,
}

impl GlobalCoordinated {
    pub fn new(cfg: CoordinatedConfig) -> Self {
        GlobalCoordinated {
            cfg,
            last: None,
            last_rollback_at: SimTime::ZERO,
            n: 0,
        }
    }

    fn all_ranks(&self) -> Vec<Rank> {
        (0..self.n as u32).map(Rank).collect()
    }

    fn capture(&mut self, ctx: &mut Ctx<'_, ()>) -> GlobalCheckpoint {
        let ranks = self.all_ranks();
        let inflight = ctx.capture_inflight_within(&ranks);
        let mut bytes = 0;
        let snaps: Vec<RankSnapshot> = ranks
            .iter()
            .map(|&r| {
                let s = ctx.capture_rank(r);
                bytes += self.cfg.image_bytes + s.image_bytes();
                s
            })
            .collect();
        GlobalCheckpoint {
            taken_at: ctx.now(),
            snaps,
            inflight,
            bytes,
        }
    }
}

impl Protocol for GlobalCoordinated {
    type Ctl = ();

    fn name(&self) -> &'static str {
        "coordinated"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, ()>) {
        self.n = ctx.n_ranks();
        // Implicit cost-free initial checkpoint.
        self.last = Some(self.capture(ctx));
        if self.cfg.checkpoint_interval.is_some() {
            ctx.set_timer(self.cfg.first_checkpoint, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _id: u64) {
        let ckpt = self.capture(ctx);
        // Every rank writes its share simultaneously: the full-width I/O
        // burst the paper's §VI warns about.
        let per = ckpt.bytes / self.n.max(1) as u64;
        let write = self.cfg.storage.write_time(per, self.n as u64);
        // Global coordination barrier: two tree traversals of the machine.
        let levels = (usize::BITS - (self.n.max(1) - 1).leading_zeros()) as u64;
        let coord = ctx.wire_cost(32).one_way() * (2 * levels.max(1));
        for r in self.all_ranks() {
            ctx.charge(r, coord + write);
        }
        ctx.metrics().checkpoints += self.n as u64;
        ctx.metrics().checkpoint_bytes += ckpt.bytes;
        self.last = Some(ckpt);
        if let Some(interval) = self.cfg.checkpoint_interval {
            // Re-arm after the write completes (see hydee::protocol) so a
            // checkpoint costing more than the interval cannot livelock.
            let resume = self
                .all_ranks()
                .into_iter()
                .map(|r| ctx.clock(r))
                .max()
                .unwrap_or_else(|| ctx.now());
            ctx.set_timer(resume + interval, 0);
        }
    }

    fn on_failure(&mut self, ctx: &mut Ctx<'_, ()>, _failed: &[Rank]) {
        let started = ctx.now();
        let ranks = self.all_ranks();
        ctx.metrics().ranks_rolled_back += self.n as u64;
        // Everything in flight addresses pre-failure state: drop it all,
        // the checkpoint's channel state replaces it.
        ctx.drop_inflight_to(&ranks);
        let ckpt = self.last.as_ref().expect("no global checkpoint");
        let lost_from = ckpt.taken_at.max(self.last_rollback_at);
        ctx.metrics().lost_work += started.since(lost_from) * self.n as u64;
        self.last_rollback_at = started;
        let per = ckpt.bytes / self.n.max(1) as u64;
        let read = self.cfg.storage.read_time(per, self.n as u64);
        let inflight = ckpt.inflight.clone();
        let snaps: Vec<RankSnapshot> = ckpt.snaps.clone();
        for (i, snap) in snaps.iter().enumerate() {
            ctx.restore_rank(Rank(i as u32), snap, false);
            ctx.charge(Rank(i as u32), self.cfg.restart_latency + read);
        }
        ctx.inject_inflight(&inflight);
        let span = ctx.now().since(started);
        ctx.metrics().recovery_time += span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::{Application, Sim, SimConfig, Tag};

    fn ring_app(n: u32, rounds: usize) -> Application {
        let mut app = Application::new(n as usize);
        for r in 0..n {
            let next = Rank((r + 1) % n);
            let prev = Rank((r + n - 1) % n);
            for _ in 0..rounds {
                app.rank_mut(Rank(r)).send(next, 1024, Tag(0));
                app.rank_mut(Rank(r)).recv(prev, Tag(0));
            }
        }
        app
    }

    #[test]
    fn failure_free_adds_no_message_overhead() {
        let report = Sim::new(
            ring_app(8, 20),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        )
        .run();
        assert!(report.completed());
        // No piggyback: wire bytes == payload bytes.
        assert_eq!(report.metrics.wire_bytes, report.metrics.app_bytes);
        assert_eq!(report.metrics.logged_bytes_cumulative, 0);
    }

    #[test]
    fn failure_rolls_back_everyone() {
        let mut sim = Sim::new(
            ring_app(8, 100),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        );
        sim.inject_failure(SimTime::from_us(100), vec![Rank(3)]);
        let report = sim.run();
        assert!(report.completed(), "{:?}", report.status);
        assert_eq!(report.metrics.ranks_rolled_back, 8, "no containment");
        assert!(report.trace.is_consistent());
    }

    #[test]
    fn digests_match_golden_after_recovery() {
        let golden = Sim::new(
            ring_app(6, 60),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        )
        .run();
        let mut sim = Sim::new(
            ring_app(6, 60),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        );
        sim.inject_failure(SimTime::from_us(400), vec![Rank(0)]);
        let report = sim.run();
        assert!(report.completed());
        assert_eq!(report.digests, golden.digests);
    }

    #[test]
    fn periodic_checkpoints_reduce_lost_work() {
        // With periodic checkpoints the failure rolls back to a later cut,
        // so the recovered run finishes sooner than restart-from-zero.
        let mk = |interval: Option<SimDuration>| {
            let mut cfg = CoordinatedConfig {
                checkpoint_interval: interval,
                first_checkpoint: SimTime::from_us(200),
                // Keep checkpoints cheap relative to the interval.
                image_bytes: 4 << 10,
                restart_latency: SimDuration::from_us(10),
                ..Default::default()
            };
            cfg.storage.latency = SimDuration::from_us(10);
            let mut sim = Sim::new(
                ring_app(4, 2000),
                SimConfig::default(),
                GlobalCoordinated::new(cfg),
            );
            sim.inject_failure(SimTime::from_ms(4), vec![Rank(1)]);
            sim.run()
        };
        let without = mk(None);
        let with = mk(Some(SimDuration::from_us(500)));
        assert!(without.completed() && with.completed());
        assert!(
            with.makespan < without.makespan,
            "with={} without={}",
            with.makespan,
            without.makespan
        );
        assert!(with.metrics.checkpoints > 0);
    }

    #[test]
    fn failure_of_multiple_ranks_recovers() {
        let mut sim = Sim::new(
            ring_app(8, 100),
            SimConfig::default(),
            GlobalCoordinated::new(CoordinatedConfig::default()),
        );
        sim.inject_failure(SimTime::from_us(100), vec![Rank(1), Rank(5)]);
        let report = sim.run();
        assert!(report.completed());
        assert_eq!(report.metrics.ranks_rolled_back, 8);
    }
}
