//! # protocols — baseline rollback-recovery protocols
//!
//! The comparison points of the HydEE paper, implemented on the same
//! simulated runtime (`mps-sim`):
//!
//! * [`coordinated::GlobalCoordinated`] — classic global coordinated
//!   checkpointing: no logging, no containment, full-machine rollback and
//!   checkpoint I/O bursts.
//! * [`event_logged::EventLogged`] — an overlay charging a reliable
//!   determinant write per delivery; wraps `Hydee` (with per-rank or real
//!   clusters) to obtain classic pessimistic message logging and the
//!   \[8\]-style hybrid-with-event-logging protocol respectively. This is
//!   the ablation for HydEE's "no event logging" claim.
//!
//! Native MPICH2 (no fault tolerance) is `mps_sim::NullProtocol`; HydEE
//! itself with all messages logged (the paper's Fig. 6 "Message Logging"
//! curve) is `Hydee` over `ClusterMap::per_rank`.

pub mod coordinated;
pub mod event_logged;
pub mod factory;

pub use coordinated::{CoordinatedConfig, GlobalCoordinated};
pub use event_logged::{DeterminantCost, EventLogged};
pub use factory::{
    CoordinatedFactory, EventLoggedFactory, FailureEvent, HydeeFactory, HydeeParams, NativeFactory,
    ProtocolFactory, RunRequest,
};
