//! Event-logging overlay — what HydEE removes.
//!
//! Every hybrid protocol before HydEE (Yang et al. \[32\], Meneses et
//! al. \[22\], Bouteiller et al. \[8\]) must log the *determinant* of every
//! non-deterministic event reliably during failure-free execution — in
//! practice a synchronous write per message delivery, either to stable
//! storage or to a remote event-logger node. HydEE's headline contribution
//! is needing none of that (§VI).
//!
//! [`EventLogged`] wraps any inner protocol and charges the receiver a
//! configurable determinant-logging cost per delivery. Wrapping:
//!
//! * `Hydee` with per-rank clusters → classic pessimistic sender-based
//!   message logging (the "full logging + determinants" baseline);
//! * `Hydee` with real clusters → an \[8\]-style hybrid protocol, the
//!   direct ablation for "what does event logging cost" (experiment X2).

use det_sim::SimDuration;
use mps_sim::{Ctx, Endpoint, Message, Protocol, Rank, SendDirective, SendInfo};

/// Determinant-logging cost model.
#[derive(Debug, Clone, Copy)]
pub struct DeterminantCost {
    /// Synchronous cost charged to the receiver per delivery (the
    /// round-trip to the event logger / stable storage). Ropars & Morin
    /// \[29\] measure multi-microsecond penalties even for distributed
    /// in-memory event logging.
    pub per_delivery: SimDuration,
}

impl Default for DeterminantCost {
    fn default() -> Self {
        DeterminantCost {
            per_delivery: SimDuration::from_us(3),
        }
    }
}

/// A protocol with reliable event logging layered on top.
pub struct EventLogged<P> {
    pub inner: P,
    pub cost: DeterminantCost,
    determinants: u64,
}

impl<P> EventLogged<P> {
    pub fn new(inner: P, cost: DeterminantCost) -> Self {
        EventLogged {
            inner,
            cost,
            determinants: 0,
        }
    }

    /// Determinants logged so far.
    pub fn determinants(&self) -> u64 {
        self.determinants
    }
}

impl<P: Protocol> Protocol for EventLogged<P> {
    type Ctl = P::Ctl;

    fn name(&self) -> &'static str {
        "event-logged"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, Self::Ctl>) {
        self.inner.init(ctx);
    }

    fn on_send(&mut self, ctx: &mut Ctx<'_, Self::Ctl>, info: &SendInfo) -> SendDirective {
        self.inner.on_send(ctx, info)
    }

    fn on_deliver(&mut self, ctx: &mut Ctx<'_, Self::Ctl>, msg: &Message) {
        // The determinant (message identifier + delivery order) must be on
        // reliable storage before the delivery is allowed to influence
        // further sends: a synchronous charge on the receiver. Replayed
        // messages during recovery re-log their determinant too.
        ctx.charge(msg.dst, self.cost.per_delivery);
        self.determinants += 1;
        self.inner.on_deliver(ctx, msg);
    }

    fn on_control(
        &mut self,
        ctx: &mut Ctx<'_, Self::Ctl>,
        to: Endpoint,
        from: Endpoint,
        ctl: Self::Ctl,
    ) {
        self.inner.on_control(ctx, to, from, ctl);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Ctl>, id: u64) {
        self.inner.on_timer(ctx, id);
    }

    fn on_failure(&mut self, ctx: &mut Ctx<'_, Self::Ctl>, failed: &[Rank]) {
        self.inner.on_failure(ctx, failed);
    }

    fn on_done(&mut self, ctx: &mut Ctx<'_, Self::Ctl>, rank: Rank) {
        self.inner.on_done(ctx, rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydee::{Hydee, HydeeConfig};
    use mps_sim::{Application, ClusterMap, NullProtocol, Sim, SimConfig, Tag};

    fn exchange_app(rounds: usize) -> Application {
        let mut app = Application::new(4);
        for _ in 0..rounds {
            for s in 0..4u32 {
                let d = (s + 1) % 4;
                app.rank_mut(Rank(s)).send(Rank(d), 512, Tag(0));
            }
            for d in 0..4u32 {
                let s = (d + 3) % 4;
                app.rank_mut(Rank(d)).recv(Rank(s), Tag(0));
            }
        }
        app
    }

    #[test]
    fn event_logging_slows_execution() {
        let native = Sim::new(exchange_app(50), SimConfig::default(), NullProtocol).run();
        let logged = Sim::new(
            exchange_app(50),
            SimConfig::default(),
            EventLogged::new(NullProtocol, DeterminantCost::default()),
        )
        .run();
        assert!(native.completed() && logged.completed());
        assert!(
            logged.makespan > native.makespan,
            "determinant writes must cost time"
        );
    }

    #[test]
    fn counts_one_determinant_per_delivery() {
        let mut sim = Sim::new(
            exchange_app(10),
            SimConfig::default(),
            EventLogged::new(NullProtocol, DeterminantCost::default()),
        );
        let _ = &mut sim;
        let report_msgs;
        let dets;
        {
            let sim = Sim::new(
                exchange_app(10),
                SimConfig::default(),
                EventLogged::new(NullProtocol, DeterminantCost::default()),
            );
            let report = sim.run();
            report_msgs = report.metrics.deliveries;
            dets = report_msgs; // by construction: charged per delivery
            assert!(report.completed());
        }
        assert_eq!(dets, report_msgs);
    }

    #[test]
    fn hybrid_with_event_logging_recovers_like_hydee() {
        let clusters = ClusterMap::new(vec![0, 0, 1, 1]);
        let golden = Sim::new(
            exchange_app(60),
            SimConfig::default(),
            EventLogged::new(
                Hydee::new(HydeeConfig::new(clusters.clone())),
                DeterminantCost::default(),
            ),
        )
        .run();
        let mut sim = Sim::new(
            exchange_app(60),
            SimConfig::default(),
            EventLogged::new(
                Hydee::new(HydeeConfig::new(clusters)),
                DeterminantCost::default(),
            ),
        );
        sim.inject_failure(det_sim::SimTime::from_us(400), vec![Rank(2)]);
        let report = sim.run();
        assert!(report.completed(), "{:?}", report.status);
        assert_eq!(report.digests, golden.digests);
        assert_eq!(report.metrics.ranks_rolled_back, 2);
        assert!(report.trace.is_consistent());
    }
}
