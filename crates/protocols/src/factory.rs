//! Object-safe protocol construction and execution.
//!
//! [`mps_sim::Protocol`] is deliberately *not* object-safe (`Sized` +
//! an associated control-message type), so heterogeneous experiment
//! drivers could not hold "some protocol" and run it. A
//! [`ProtocolFactory`] closes that gap: it owns the protocol's
//! configuration, and `run` instantiates the concrete protocol for a
//! [`RunRequest`] and drives one simulation to completion — erasing the
//! protocol type right after the monomorphic `Sim::run` call.
//!
//! A [`RunRequest`] bundles everything one run needs — the application,
//! engine configuration, cluster map and a [`FailureModel`] — behind a
//! builder, replacing the positional
//! `run(app, config, clusters, failures)` signature that grew a
//! parameter per feature. Fault injection is a first-class model rather
//! than a static list: [`RunRequest::failures`] wraps a hand-written
//! schedule in [`FixedSchedule`] (the equivalence oracle for the old
//! list path), while [`RunRequest::failure_model`] accepts any
//! generator (Poisson, correlated-cluster, cascade, ...).
//!
//! Factories are `Send + Sync` so a parallel executor (the `scenario`
//! crate) can dispatch the same factory across worker threads.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{
    Application, CheckpointPolicyConfig, ClusterMap, FailureModel, FixedSchedule, NullProtocol,
    Protocol, Recorder, RunReport, Sim, SimConfig,
};
use net_model::{StableStorage, StorageLedger};
use std::sync::{Arc, Mutex};

pub use mps_sim::FailureEvent;

use crate::coordinated::{CoordinatedConfig, GlobalCoordinated};
use crate::event_logged::{DeterminantCost, EventLogged};

/// Everything one simulation run needs, behind a builder.
///
/// ```
/// use mps_sim::{Application, ClusterMap, PoissonPerRank, Rank, Tag};
/// use det_sim::SimDuration;
/// use protocols::{HydeeFactory, ProtocolFactory, RunRequest};
///
/// let mut app = Application::new(4);
/// app.rank_mut(Rank(0)).send(Rank(2), 4096, Tag(0));
/// app.rank_mut(Rank(2)).recv(Rank(0), Tag(0));
///
/// let req = RunRequest::new(app)
///     .clusters(ClusterMap::blocks(4, 2))
///     .failure_model(Box::new(PoissonPerRank::new(
///         4,
///         SimDuration::from_secs(1),
///         42,
///     ).with_max_failures(1)));
/// let report = HydeeFactory::default().run(req);
/// assert!(report.completed());
/// ```
pub struct RunRequest {
    pub app: Application,
    pub sim_config: SimConfig,
    pub clusters: ClusterMap,
    pub failure_model: Box<dyn FailureModel>,
    /// Telemetry recorder attached to the run (DESIGN.md §2.5); `None`
    /// (the default) costs one branch per instrumentation point.
    pub recorder: Option<Box<dyn Recorder>>,
    /// Parallel-engine shard count (DESIGN.md §2.8). `1` (the default)
    /// runs the serial engine. Higher values run the `par-sim`
    /// cluster-sharded engine when the run qualifies: counts above the
    /// cluster count are clamped, and a run whose failure model expects
    /// any failures falls back to serial (recovery is cross-cluster by
    /// construction). Either way the results are bit-for-bit identical.
    pub shards: usize,
}

impl RunRequest {
    /// A clean run: default engine config, every rank in one cluster, no
    /// failures.
    pub fn new(app: Application) -> Self {
        let n = app.n_ranks();
        RunRequest {
            app,
            sim_config: SimConfig::default(),
            clusters: ClusterMap::single(n),
            failure_model: Box::new(FixedSchedule::none()),
            recorder: None,
            shards: 1,
        }
    }

    pub fn sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    pub fn clusters(mut self, clusters: ClusterMap) -> Self {
        self.clusters = clusters;
        self
    }

    /// Inject failures from an arbitrary deterministic generator.
    pub fn failure_model(mut self, model: Box<dyn FailureModel>) -> Self {
        self.failure_model = model;
        self
    }

    /// Inject a hand-written failure schedule (sugar for a
    /// [`FixedSchedule`] model).
    pub fn failures(self, events: Vec<FailureEvent>) -> Self {
        self.failure_model(Box::new(FixedSchedule::new(events)))
    }

    /// Attach a telemetry recorder (a `telemetry::SpanRecorder`, a
    /// `telemetry::Sampler`, or a [`mps_sim::Fanout`] of several). The
    /// caller keeps the recorder's export handle and reads it after
    /// [`ProtocolFactory::run`].
    pub fn recorder(mut self, recorder: Box<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Request the parallel engine with `n` cluster shards (see the
    /// field docs for when the request downgrades to serial).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }
}

/// Decide the parallel path for a request: `Some(effective shard
/// count)` when more than one shard was requested, the failure model
/// expects no failures over the whole representable horizon, and the
/// cluster map supports at least two shards.
fn parallel_shards(req: &RunRequest) -> Option<usize> {
    if req.shards <= 1 {
        return None;
    }
    if req
        .failure_model
        .expected_failures(SimTime::from_ps(u64::MAX))
        != 0.0
    {
        return None;
    }
    let (n, _) = par_sim::effective_shards(req.shards, req.clusters.n_clusters());
    (n > 1).then_some(n)
}

/// Checkpoint-drain surcharge for the request's topology: storage
/// batches cross the topology's widest link class on their way to the
/// storage tier (DESIGN.md §2.9). `(ZERO, 0)` — a no-op on the ledger —
/// for flat topologies and topology-less requests.
fn drain_surcharge(req: &RunRequest) -> (SimDuration, u64) {
    req.sim_config
        .topology
        .as_deref()
        .map(|t| t.drain_surcharge())
        .unwrap_or((SimDuration::ZERO, 0))
}

/// Runtime-interchangeable protocol constructor/runner (object-safe).
pub trait ProtocolFactory: Send + Sync {
    /// Short name for records and reports.
    fn name(&self) -> String;

    /// Instantiate the protocol for the request's cluster map and drive
    /// its application to completion under the request's failure model.
    fn run(&self, req: RunRequest) -> RunReport;
}

fn run_sim<P: Protocol>(req: RunRequest, protocol: P) -> RunReport {
    let mut sim = Sim::new(req.app, req.sim_config, protocol);
    sim.set_failure_model(req.failure_model);
    if let Some(recorder) = req.recorder {
        sim.set_recorder(recorder);
    }
    sim.run()
}

/// Native MPICH2: no fault tolerance (ignores the cluster map).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeFactory;

impl ProtocolFactory for NativeFactory {
    fn name(&self) -> String {
        "native".into()
    }

    fn run(&self, req: RunRequest) -> RunReport {
        if let Some(n) = parallel_shards(&req) {
            let RunRequest {
                app,
                sim_config,
                clusters,
                recorder,
                ..
            } = req;
            return par_sim::run_sharded(app, sim_config, &clusters, n, |_| NullProtocol, recorder);
        }
        run_sim(req, NullProtocol)
    }
}

/// HydEE parameterisation minus the cluster map (which arrives with the
/// [`RunRequest`]). `None` fields keep [`HydeeConfig`]'s defaults.
#[derive(Debug, Clone, Default)]
pub struct HydeeParams {
    pub checkpoint_interval: Option<SimDuration>,
    /// Checkpoint-scheduling policy (DESIGN.md §2.4); wins over the
    /// `checkpoint_interval` sugar when set.
    pub checkpoint_policy: Option<CheckpointPolicyConfig>,
    pub image_bytes: Option<u64>,
    pub storage: Option<StableStorage>,
    pub first_checkpoint: Option<SimTime>,
    pub checkpoint_stagger: Option<SimDuration>,
    pub restart_latency: Option<SimDuration>,
    /// Disable the §III-E log garbage collection.
    pub disable_gc: bool,
}

impl HydeeParams {
    pub fn config_for(&self, clusters: ClusterMap) -> HydeeConfig {
        let mut cfg = HydeeConfig::new(clusters);
        cfg.checkpoint_interval = self.checkpoint_interval;
        cfg.checkpoint_policy = self.checkpoint_policy;
        if let Some(b) = self.image_bytes {
            cfg.image_bytes = b;
        }
        if let Some(s) = self.storage {
            cfg.storage = s;
        }
        if let Some(t) = self.first_checkpoint {
            cfg.first_checkpoint = t;
        }
        if let Some(d) = self.checkpoint_stagger {
            cfg.checkpoint_stagger = d;
        }
        if let Some(d) = self.restart_latency {
            cfg.restart_latency = d;
        }
        cfg.gc = !self.disable_gc;
        cfg
    }
}

/// HydEE over whatever cluster map the request supplies.
#[derive(Debug, Clone, Default)]
pub struct HydeeFactory {
    pub params: HydeeParams,
}

impl HydeeFactory {
    pub fn new(params: HydeeParams) -> Self {
        HydeeFactory { params }
    }
}

impl ProtocolFactory for HydeeFactory {
    fn name(&self) -> String {
        "hydee".into()
    }

    fn run(&self, req: RunRequest) -> RunReport {
        let (drain_lat, drain_pb) = drain_surcharge(&req);
        if let Some(n) = parallel_shards(&req) {
            let RunRequest {
                app,
                sim_config,
                clusters,
                recorder,
                ..
            } = req;
            // One ledger shared by all shard-local protocol copies:
            // stable storage is the only machine-global resource, and
            // the coordinator sequences every timer (= every policy
            // consultation) in global order, so sharing it is safe.
            let ledger = Arc::new(Mutex::new(
                StorageLedger::new(self.params.config_for(clusters.clone()).storage)
                    .with_drain_surcharge(drain_lat, drain_pb),
            ));
            return par_sim::run_sharded(
                app,
                sim_config,
                &clusters,
                n,
                |slice| {
                    Hydee::sharded(
                        self.params.config_for(clusters.clone()),
                        ledger.clone(),
                        slice.clusters.clone(),
                    )
                },
                recorder,
            );
        }
        let mut protocol = Hydee::new(self.params.config_for(req.clusters.clone()));
        protocol.set_drain_surcharge(drain_lat, drain_pb);
        run_sim(req, protocol)
    }
}

/// Global coordinated checkpointing (ignores the cluster map: the
/// "cluster" is the whole machine).
#[derive(Debug, Clone, Default)]
pub struct CoordinatedFactory {
    pub config: CoordinatedConfig,
}

impl CoordinatedFactory {
    pub fn new(config: CoordinatedConfig) -> Self {
        CoordinatedFactory { config }
    }
}

impl ProtocolFactory for CoordinatedFactory {
    fn name(&self) -> String {
        "coordinated".into()
    }

    fn run(&self, req: RunRequest) -> RunReport {
        // Always serial: the coordinated protocol's "cluster" is the
        // whole machine and it owns a private storage ledger, so there
        // is no shard decomposition to exploit.
        let (drain_lat, drain_pb) = drain_surcharge(&req);
        let mut protocol = GlobalCoordinated::new(self.config.clone());
        protocol.set_drain_surcharge(drain_lat, drain_pb);
        run_sim(req, protocol)
    }
}

/// HydEE plus reliable determinant writes on every delivery — the
/// event-logging ablation (\[8\]/\[22\]-style hybrid; with per-rank clusters,
/// classic pessimistic message logging).
#[derive(Debug, Clone, Default)]
pub struct EventLoggedFactory {
    pub params: HydeeParams,
    pub cost: DeterminantCost,
}

impl EventLoggedFactory {
    pub fn new(params: HydeeParams, cost: DeterminantCost) -> Self {
        EventLoggedFactory { params, cost }
    }
}

impl ProtocolFactory for EventLoggedFactory {
    fn name(&self) -> String {
        "event-logged".into()
    }

    fn run(&self, req: RunRequest) -> RunReport {
        let (drain_lat, drain_pb) = drain_surcharge(&req);
        if let Some(n) = parallel_shards(&req) {
            let RunRequest {
                app,
                sim_config,
                clusters,
                recorder,
                ..
            } = req;
            let ledger = Arc::new(Mutex::new(
                StorageLedger::new(self.params.config_for(clusters.clone()).storage)
                    .with_drain_surcharge(drain_lat, drain_pb),
            ));
            return par_sim::run_sharded(
                app,
                sim_config,
                &clusters,
                n,
                |slice| {
                    // The determinant wrapper holds only shard-local
                    // state (a counter and per-delivery charges), so it
                    // shards by wrapping the sharded inner protocol.
                    EventLogged::new(
                        Hydee::sharded(
                            self.params.config_for(clusters.clone()),
                            ledger.clone(),
                            slice.clusters.clone(),
                        ),
                        self.cost,
                    )
                },
                recorder,
            );
        }
        let mut inner = Hydee::new(self.params.config_for(req.clusters.clone()));
        inner.set_drain_surcharge(drain_lat, drain_pb);
        run_sim(req, EventLogged::new(inner, self.cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::{PoissonPerRank, Rank, Tag};

    fn ping_pong() -> Application {
        let mut app = Application::new(4);
        app.rank_mut(Rank(1)).send(Rank(2), 4096, Tag(0));
        app.rank_mut(Rank(2)).recv(Rank(1), Tag(0));
        app
    }

    /// The point of the trait: heterogeneous factories behind one type.
    #[test]
    fn factories_are_object_safe_and_interchangeable() {
        let factories: Vec<Box<dyn ProtocolFactory>> = vec![
            Box::new(NativeFactory),
            Box::new(HydeeFactory::default()),
            Box::new(CoordinatedFactory::default()),
            Box::new(EventLoggedFactory::default()),
        ];
        for f in &factories {
            let req = RunRequest::new(ping_pong()).clusters(ClusterMap::blocks(4, 2));
            let report = f.run(req);
            assert!(report.completed(), "{}: {:?}", f.name(), report.status);
        }
    }

    #[test]
    fn hydee_factory_logs_inter_cluster_only() {
        let f = HydeeFactory::default();
        let report =
            f.run(RunRequest::new(ping_pong()).clusters(ClusterMap::new(vec![0, 0, 1, 1])));
        assert_eq!(report.metrics.logged_bytes_cumulative, 4096);
        let report = f.run(RunRequest::new(ping_pong()).clusters(ClusterMap::single(4)));
        assert_eq!(report.metrics.logged_bytes_cumulative, 0);
    }

    #[test]
    fn failures_are_injected() {
        let f = HydeeFactory::new(HydeeParams {
            image_bytes: Some(1 << 16),
            ..Default::default()
        });
        let mut app = Application::new(2);
        for i in 0..50 {
            app.rank_mut(Rank(0)).send(Rank(1), 1 << 16, Tag(i));
            app.rank_mut(Rank(1)).recv(Rank(0), Tag(i));
        }
        let clean = f.run(RunRequest::new(app.clone()).clusters(ClusterMap::per_rank(2)));
        assert!(clean.completed());
        let fail_at = SimTime::from_ps(clean.makespan.as_ps() / 2);
        let failed = f.run(
            RunRequest::new(app)
                .clusters(ClusterMap::per_rank(2))
                .failures(vec![FailureEvent {
                    at: fail_at,
                    ranks: vec![Rank(1)],
                }]),
        );
        assert!(failed.completed(), "{:?}", failed.status);
        assert_eq!(failed.metrics.failures, 1);
        assert_eq!(failed.metrics.failed_ranks, 1);
        assert!(failed.metrics.ranks_rolled_back >= 1);
        assert!(failed.metrics.lost_work > SimDuration::ZERO);
        assert!(failed.metrics.recovery_time > SimDuration::ZERO);
        assert_eq!(clean.digests, failed.digests);
    }

    /// The `shards` knob must be transparent: every factory that
    /// accepts it returns a bit-identical report, and runs that cannot
    /// shard (failure models, single cluster) silently stay serial.
    #[test]
    fn sharded_requests_match_serial_per_factory() {
        let mut app = Application::new(8);
        for i in 0..20 {
            app.rank_mut(Rank(0)).send(Rank(5), 4096, Tag(i));
            app.rank_mut(Rank(5)).recv(Rank(0), Tag(i));
            app.rank_mut(Rank(3)).send(Rank(6), 2048, Tag(i));
            app.rank_mut(Rank(6)).recv(Rank(3), Tag(i));
        }
        let factories: Vec<Box<dyn ProtocolFactory>> = vec![
            Box::new(NativeFactory),
            Box::new(HydeeFactory::new(HydeeParams {
                checkpoint_interval: Some(SimDuration::from_us(200)),
                image_bytes: Some(1 << 14),
                ..Default::default()
            })),
            Box::new(CoordinatedFactory::default()),
            Box::new(EventLoggedFactory::default()),
        ];
        for f in &factories {
            let mk = || RunRequest::new(app.clone()).clusters(ClusterMap::blocks(8, 4));
            let serial = f.run(mk());
            let sharded = f.run(mk().shards(4));
            assert!(serial.completed(), "{}: {:?}", f.name(), serial.status);
            assert_eq!(serial.digests, sharded.digests, "{}", f.name());
            assert_eq!(
                serde_json::to_string(&serial.metrics).unwrap(),
                serde_json::to_string(&sharded.metrics).unwrap(),
                "{}: metrics diverge",
                f.name()
            );
        }
    }

    /// A failure model with nonzero expectation forces the serial
    /// engine even when shards were requested — and still completes.
    #[test]
    fn failure_runs_fall_back_to_serial() {
        let f = HydeeFactory::new(HydeeParams {
            image_bytes: Some(1 << 14),
            ..Default::default()
        });
        let mut app = Application::new(4);
        for i in 0..30 {
            app.rank_mut(Rank(0)).send(Rank(3), 1 << 14, Tag(i));
            app.rank_mut(Rank(3)).recv(Rank(0), Tag(i));
        }
        let req = RunRequest::new(app)
            .clusters(ClusterMap::per_rank(4))
            .failure_model(Box::new(
                PoissonPerRank::new(4, SimDuration::from_ms(2), 7).with_max_failures(1),
            ))
            .shards(4);
        assert!(parallel_shards(&req).is_none());
        let report = f.run(req);
        assert!(report.completed(), "{:?}", report.status);
        assert_eq!(report.shards, 1, "fell back to the serial engine");
    }

    #[test]
    fn stochastic_model_through_the_factory() {
        let f = HydeeFactory::new(HydeeParams {
            image_bytes: Some(1 << 14),
            ..Default::default()
        });
        let mut app = Application::new(4);
        for i in 0..40 {
            app.rank_mut(Rank(0)).send(Rank(3), 1 << 14, Tag(i));
            app.rank_mut(Rank(3)).recv(Rank(0), Tag(i));
        }
        let run = |seed: u64| {
            f.run(
                RunRequest::new(app.clone())
                    .clusters(ClusterMap::blocks(4, 2))
                    .failure_model(Box::new(
                        PoissonPerRank::new(4, SimDuration::from_ms(2), seed).with_max_failures(2),
                    )),
            )
        };
        let a = run(11);
        let b = run(11);
        assert!(a.completed(), "{:?}", a.status);
        assert_eq!(a.digests, b.digests, "same seed, same run");
        assert_eq!(a.metrics.events, b.metrics.events);
        assert_eq!(a.metrics.failures, b.metrics.failures);
    }
}
