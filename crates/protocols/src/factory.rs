//! Object-safe protocol construction and execution.
//!
//! [`mps_sim::Protocol`] is deliberately *not* object-safe (`Sized` +
//! an associated control-message type), so heterogeneous experiment
//! drivers could not hold "some protocol" and run it. A
//! [`ProtocolFactory`] closes that gap: it owns the protocol's
//! configuration, and `run` instantiates the concrete protocol for a
//! given cluster map and drives one simulation to completion — erasing
//! the protocol type right after the monomorphic `Sim::run` call.
//!
//! Factories are `Send + Sync` so a parallel executor (the `scenario`
//! crate) can dispatch the same factory across worker threads.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{Application, ClusterMap, NullProtocol, Protocol, Rank, RunReport, Sim, SimConfig};
use net_model::StableStorage;

use crate::coordinated::{CoordinatedConfig, GlobalCoordinated};
use crate::event_logged::{DeterminantCost, EventLogged};

/// A fail-stop failure injection: `ranks` crash concurrently at `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureEvent {
    pub at: SimTime,
    pub ranks: Vec<Rank>,
}

impl FailureEvent {
    pub fn at_ms(ms: u64, ranks: Vec<Rank>) -> Self {
        FailureEvent {
            at: SimTime::from_ms(ms),
            ranks,
        }
    }
}

/// Runtime-interchangeable protocol constructor/runner (object-safe).
pub trait ProtocolFactory: Send + Sync {
    /// Short name for records and reports.
    fn name(&self) -> String;

    /// Instantiate the protocol for `clusters` and run `app` under it,
    /// injecting `failures`.
    fn run(
        &self,
        app: Application,
        config: SimConfig,
        clusters: &ClusterMap,
        failures: &[FailureEvent],
    ) -> RunReport;
}

fn run_sim<P: Protocol>(
    app: Application,
    config: SimConfig,
    protocol: P,
    failures: &[FailureEvent],
) -> RunReport {
    let mut sim = Sim::new(app, config, protocol);
    for f in failures {
        sim.inject_failure(f.at, f.ranks.clone());
    }
    sim.run()
}

/// Native MPICH2: no fault tolerance (ignores the cluster map).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeFactory;

impl ProtocolFactory for NativeFactory {
    fn name(&self) -> String {
        "native".into()
    }

    fn run(
        &self,
        app: Application,
        config: SimConfig,
        _clusters: &ClusterMap,
        failures: &[FailureEvent],
    ) -> RunReport {
        run_sim(app, config, NullProtocol, failures)
    }
}

/// HydEE parameterisation minus the cluster map (which arrives at `run`
/// time). `None` fields keep [`HydeeConfig`]'s defaults.
#[derive(Debug, Clone, Default)]
pub struct HydeeParams {
    pub checkpoint_interval: Option<SimDuration>,
    pub image_bytes: Option<u64>,
    pub storage: Option<StableStorage>,
    pub first_checkpoint: Option<SimTime>,
    pub checkpoint_stagger: Option<SimDuration>,
    pub restart_latency: Option<SimDuration>,
    /// Disable the §III-E log garbage collection.
    pub disable_gc: bool,
}

impl HydeeParams {
    pub fn config_for(&self, clusters: ClusterMap) -> HydeeConfig {
        let mut cfg = HydeeConfig::new(clusters);
        cfg.checkpoint_interval = self.checkpoint_interval;
        if let Some(b) = self.image_bytes {
            cfg.image_bytes = b;
        }
        if let Some(s) = self.storage {
            cfg.storage = s;
        }
        if let Some(t) = self.first_checkpoint {
            cfg.first_checkpoint = t;
        }
        if let Some(d) = self.checkpoint_stagger {
            cfg.checkpoint_stagger = d;
        }
        if let Some(d) = self.restart_latency {
            cfg.restart_latency = d;
        }
        cfg.gc = !self.disable_gc;
        cfg
    }
}

/// HydEE over whatever cluster map the run supplies.
#[derive(Debug, Clone, Default)]
pub struct HydeeFactory {
    pub params: HydeeParams,
}

impl HydeeFactory {
    pub fn new(params: HydeeParams) -> Self {
        HydeeFactory { params }
    }
}

impl ProtocolFactory for HydeeFactory {
    fn name(&self) -> String {
        "hydee".into()
    }

    fn run(
        &self,
        app: Application,
        config: SimConfig,
        clusters: &ClusterMap,
        failures: &[FailureEvent],
    ) -> RunReport {
        let protocol = Hydee::new(self.params.config_for(clusters.clone()));
        run_sim(app, config, protocol, failures)
    }
}

/// Global coordinated checkpointing (ignores the cluster map: the
/// "cluster" is the whole machine).
#[derive(Debug, Clone, Default)]
pub struct CoordinatedFactory {
    pub config: CoordinatedConfig,
}

impl CoordinatedFactory {
    pub fn new(config: CoordinatedConfig) -> Self {
        CoordinatedFactory { config }
    }
}

impl ProtocolFactory for CoordinatedFactory {
    fn name(&self) -> String {
        "coordinated".into()
    }

    fn run(
        &self,
        app: Application,
        config: SimConfig,
        _clusters: &ClusterMap,
        failures: &[FailureEvent],
    ) -> RunReport {
        run_sim(
            app,
            config,
            GlobalCoordinated::new(self.config.clone()),
            failures,
        )
    }
}

/// HydEE plus reliable determinant writes on every delivery — the
/// event-logging ablation (\[8\]/\[22\]-style hybrid; with per-rank clusters,
/// classic pessimistic message logging).
#[derive(Debug, Clone, Default)]
pub struct EventLoggedFactory {
    pub params: HydeeParams,
    pub cost: DeterminantCost,
}

impl EventLoggedFactory {
    pub fn new(params: HydeeParams, cost: DeterminantCost) -> Self {
        EventLoggedFactory { params, cost }
    }
}

impl ProtocolFactory for EventLoggedFactory {
    fn name(&self) -> String {
        "event-logged".into()
    }

    fn run(
        &self,
        app: Application,
        config: SimConfig,
        clusters: &ClusterMap,
        failures: &[FailureEvent],
    ) -> RunReport {
        let inner = Hydee::new(self.params.config_for(clusters.clone()));
        run_sim(app, config, EventLogged::new(inner, self.cost), failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::Tag;

    fn ping_pong() -> Application {
        let mut app = Application::new(4);
        app.rank_mut(Rank(1)).send(Rank(2), 4096, Tag(0));
        app.rank_mut(Rank(2)).recv(Rank(1), Tag(0));
        app
    }

    /// The point of the trait: heterogeneous factories behind one type.
    #[test]
    fn factories_are_object_safe_and_interchangeable() {
        let factories: Vec<Box<dyn ProtocolFactory>> = vec![
            Box::new(NativeFactory),
            Box::new(HydeeFactory::default()),
            Box::new(CoordinatedFactory::default()),
            Box::new(EventLoggedFactory::default()),
        ];
        let clusters = ClusterMap::blocks(4, 2);
        for f in &factories {
            let report = f.run(ping_pong(), SimConfig::default(), &clusters, &[]);
            assert!(report.completed(), "{}: {:?}", f.name(), report.status);
        }
    }

    #[test]
    fn hydee_factory_logs_inter_cluster_only() {
        let f = HydeeFactory::default();
        let report = f.run(
            ping_pong(),
            SimConfig::default(),
            &ClusterMap::new(vec![0, 0, 1, 1]),
            &[],
        );
        assert_eq!(report.metrics.logged_bytes_cumulative, 4096);
        let report = f.run(
            ping_pong(),
            SimConfig::default(),
            &ClusterMap::single(4),
            &[],
        );
        assert_eq!(report.metrics.logged_bytes_cumulative, 0);
    }

    #[test]
    fn failures_are_injected() {
        let f = HydeeFactory::new(HydeeParams {
            image_bytes: Some(1 << 16),
            ..Default::default()
        });
        let mut app = Application::new(2);
        for i in 0..50 {
            app.rank_mut(Rank(0)).send(Rank(1), 1 << 16, Tag(i));
            app.rank_mut(Rank(1)).recv(Rank(0), Tag(i));
        }
        let clean = f.run(
            app.clone(),
            SimConfig::default(),
            &ClusterMap::per_rank(2),
            &[],
        );
        assert!(clean.completed());
        let fail_at = SimTime::from_ps(clean.makespan.as_ps() / 2);
        let failed = f.run(
            app,
            SimConfig::default(),
            &ClusterMap::per_rank(2),
            &[FailureEvent {
                at: fail_at,
                ranks: vec![Rank(1)],
            }],
        );
        assert!(failed.completed(), "{:?}", failed.status);
        assert_eq!(failed.metrics.failures, 1);
        assert!(failed.metrics.ranks_rolled_back >= 1);
        assert_eq!(clean.digests, failed.digests);
    }
}
