//! Equivalence oracle (ISSUE 4 acceptance): driving failures through the
//! lazy `FixedSchedule` model reproduces the old eager
//! `Sim::inject_failure` list path **bit-for-bit** — digests, makespan
//! and event counts — across protocols, schedules (single, concurrent,
//! sequential multi-failure) and checkpoint regimes. This is what
//! licenses replacing the static failure list with the model API while
//! keeping every PR 3 golden digest valid.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{
    Application, ClusterMap, FailureEvent, FixedSchedule, NullProtocol, Rank, RunReport, Sim,
    SimConfig, Tag,
};
use protocols::{CoordinatedConfig, GlobalCoordinated};

fn ring(n: u32, rounds: usize, bytes: u64) -> Application {
    let mut app = Application::new(n as usize);
    for round in 0..rounds {
        let tag = Tag((round % 3) as u32);
        for r in 0..n {
            app.rank_mut(Rank(r)).send(Rank((r + 1) % n), bytes, tag);
        }
        for r in 0..n {
            app.rank_mut(Rank(r)).recv(Rank((r + n - 1) % n), tag);
        }
    }
    app
}

fn schedules() -> Vec<Vec<FailureEvent>> {
    vec![
        vec![],
        // Single mid-run failure.
        vec![FailureEvent::at_us(300, vec![Rank(2)])],
        // Concurrent multi-rank failure.
        vec![FailureEvent::at_us(300, vec![Rank(0), Rank(5)])],
        // Sequential failures (second long after the first recovery).
        vec![
            FailureEvent::at_us(200, vec![Rank(1)]),
            FailureEvent::at_us(1500, vec![Rank(6)]),
        ],
        // Three failures, deliberately constructed unsorted.
        vec![
            FailureEvent::at_us(900, vec![Rank(3)]),
            FailureEvent::at_us(250, vec![Rank(7)]),
            FailureEvent::at_us(2000, vec![Rank(0)]),
        ],
    ]
}

fn assert_equivalent(name: &str, eager: &RunReport, lazy: &RunReport) {
    assert_eq!(
        eager.digests, lazy.digests,
        "{name}: digests diverged between inject_failure and FixedSchedule"
    );
    assert_eq!(eager.makespan, lazy.makespan, "{name}: makespan diverged");
    assert_eq!(
        eager.metrics.events, lazy.metrics.events,
        "{name}: event count diverged"
    );
    assert_eq!(eager.metrics.failures, lazy.metrics.failures, "{name}");
    assert_eq!(
        eager.metrics.ranks_rolled_back, lazy.metrics.ranks_rolled_back,
        "{name}"
    );
    assert_eq!(eager.status, lazy.status, "{name}: status diverged");
}

#[test]
fn hydee_fixed_schedule_matches_inject_failure() {
    let clusters = ClusterMap::blocks(8, 2);
    let mk = |ckpt: Option<SimDuration>| {
        let mut cfg = HydeeConfig::new(clusters.clone()).with_image_bytes(1 << 18);
        cfg.first_checkpoint = SimTime::from_us(300);
        cfg.checkpoint_stagger = SimDuration::from_us(100);
        cfg.restart_latency = SimDuration::from_us(100);
        if let Some(interval) = ckpt {
            cfg = cfg.with_checkpoints(interval);
        }
        Hydee::new(cfg)
    };
    for ckpt in [None, Some(SimDuration::from_ms(1))] {
        for (i, schedule) in schedules().into_iter().enumerate() {
            let eager = {
                let mut sim = Sim::new(ring(8, 400, 2048), SimConfig::default(), mk(ckpt));
                for ev in &schedule {
                    sim.inject_failure(ev.at, ev.ranks.clone());
                }
                sim.run()
            };
            let lazy = {
                let mut sim = Sim::new(ring(8, 400, 2048), SimConfig::default(), mk(ckpt));
                sim.set_failure_model(Box::new(FixedSchedule::new(schedule)));
                sim.run()
            };
            assert!(eager.completed(), "hydee/{ckpt:?}/{i}: {:?}", eager.status);
            assert_equivalent(&format!("hydee/ckpt={ckpt:?}/schedule {i}"), &eager, &lazy);
        }
    }
}

#[test]
fn coordinated_fixed_schedule_matches_inject_failure() {
    let mk = || {
        GlobalCoordinated::new(CoordinatedConfig {
            image_bytes: 1 << 18,
            restart_latency: SimDuration::from_us(100),
            ..Default::default()
        })
    };
    for (i, schedule) in schedules().into_iter().enumerate() {
        let eager = {
            let mut sim = Sim::new(ring(8, 200, 1024), SimConfig::default(), mk());
            for ev in &schedule {
                sim.inject_failure(ev.at, ev.ranks.clone());
            }
            sim.run()
        };
        let lazy = {
            let mut sim = Sim::new(ring(8, 200, 1024), SimConfig::default(), mk());
            sim.set_failure_model(Box::new(FixedSchedule::new(schedule)));
            sim.run()
        };
        assert!(eager.completed(), "coordinated/{i}: {:?}", eager.status);
        assert_equivalent(&format!("coordinated/schedule {i}"), &eager, &lazy);
    }
}

#[test]
fn native_fixed_schedule_matches_inject_failure() {
    // No recovery: failed runs deadlock identically on both paths.
    for (i, schedule) in schedules().into_iter().enumerate() {
        let eager = {
            let mut sim = Sim::new(ring(8, 50, 512), SimConfig::default(), NullProtocol);
            for ev in &schedule {
                sim.inject_failure(ev.at, ev.ranks.clone());
            }
            sim.run()
        };
        let lazy = {
            let mut sim = Sim::new(ring(8, 50, 512), SimConfig::default(), NullProtocol);
            sim.set_failure_model(Box::new(FixedSchedule::new(schedule)));
            sim.run()
        };
        assert_equivalent(&format!("native/schedule {i}"), &eager, &lazy);
    }
}
