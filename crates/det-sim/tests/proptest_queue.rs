//! The slab-heap scheduler against the implementation it replaced.
//!
//! The PR that introduced the index-heap-over-slab-arena `Scheduler`
//! (DESIGN.md §2.1) must not change *any* observable ordering: the old
//! `BinaryHeap<Reverse<(time, seq)>>`-with-tombstones implementation is
//! kept here as the reference model, and random interleavings of
//! schedule / pop / cancel must produce identical pop sequences, clocks
//! and cancel results on both.

use det_sim::{EventHandle, Scheduler, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-slab scheduler, verbatim in behaviour: a `BinaryHeap` of
/// `(time, seq)` keys over an append-only slot vector with lazy tombstone
/// deletion.
struct RefScheduler<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    slots: Vec<Option<E>>,
    now: SimTime,
    live: usize,
}

impl<E> RefScheduler<E> {
    fn new() -> Self {
        RefScheduler {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            now: SimTime::ZERO,
            live: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, event: E) -> usize {
        let seq = self.slots.len() as u64;
        self.slots.push(Some(event));
        self.heap.push(Reverse((at, seq)));
        self.live += 1;
        seq as usize
    }

    fn cancel(&mut self, handle: usize) -> Option<E> {
        let taken = self.slots.get_mut(handle)?.take();
        if taken.is_some() {
            self.live -= 1;
        }
        taken
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let Reverse((time, seq)) = self.heap.pop()?;
            if let Some(event) = self.slots[seq as usize].take() {
                self.live -= 1;
                self.now = time;
                return Some((time, event));
            }
        }
    }
}

/// One step of the interleaving, decoded from fuzz input.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + offset`.
    Schedule { offset: u64 },
    /// Pop one event.
    Pop,
    /// Cancel the pending handle at `index % pending.len()`.
    Cancel { index: usize },
}

fn decode(raw: &[(u8, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, arg)| match kind % 4 {
            // Scheduling twice as likely as the others keeps queues deep.
            0 | 1 => Op::Schedule {
                offset: arg % 1_000,
            },
            2 => Op::Pop,
            _ => Op::Cancel {
                index: arg as usize,
            },
        })
        .collect()
}

/// Drive both schedulers through the same interleaving and compare every
/// observable: pop order, clock, cancel results, live counts. (The
/// vendored proptest's `prop_assert*` are plain asserts, so this helper
/// panics on divergence.)
fn run_equivalence(ops: &[Op]) {
    let mut new: Scheduler<u64> = Scheduler::new();
    let mut old: RefScheduler<u64> = RefScheduler::new();
    // Handles of not-yet-cancelled, not-yet-popped schedules, in creation
    // order (popped entries are lazily discovered via cancel returning
    // None on both).
    let mut pending: Vec<(EventHandle, usize)> = Vec::new();
    let mut next_payload = 0u64;

    for &op in ops {
        match op {
            Op::Schedule { offset } => {
                let at = new.now() + det_sim::SimDuration::from_ps(offset);
                let payload = next_payload;
                next_payload += 1;
                let hn = new.schedule(at, payload);
                let ho = old.schedule(at, payload);
                pending.push((hn, ho));
            }
            Op::Pop => {
                let got_new = new.pop();
                let got_old = old.pop();
                prop_assert_eq!(got_new, got_old, "pop order diverged");
                prop_assert_eq!(new.now(), old.now, "clock diverged");
            }
            Op::Cancel { index } => {
                if pending.is_empty() {
                    continue;
                }
                let (hn, ho) = pending.remove(index % pending.len());
                let got_new = new.cancel(hn);
                let got_old = old.cancel(ho);
                prop_assert_eq!(got_new, got_old, "cancel result diverged");
            }
        }
        prop_assert_eq!(new.len(), old.live, "live count diverged");
    }
    // Drain both to the end: the full residual order must also agree.
    loop {
        let got_new = new.pop();
        let got_old = old.pop();
        prop_assert_eq!(got_new, got_old, "drain order diverged");
        if got_new.is_none() {
            break;
        }
    }
    prop_assert!(new.is_empty());
}

proptest! {
    #[test]
    fn slab_heap_pops_identically_to_binary_heap(
        raw in prop::collection::vec((any::<u8>(), any::<u64>()), 0..400)
    ) {
        run_equivalence(&decode(&raw));
    }

    /// Same-instant storms: many events at few distinct times, so
    /// insertion-order tie-breaking carries the whole ordering.
    #[test]
    fn tie_break_survives_the_slab_rewrite(
        raw in prop::collection::vec((any::<u8>(), 0u64..3), 0..400)
    ) {
        run_equivalence(&decode(&raw));
    }
}
