//! Property tests for the simulation core: the scheduler against a
//! reference model, and RNG distribution invariants.

use det_sim::{DetRng, Scheduler, SimTime};
use proptest::prelude::*;

/// Reference model: a stable sort by (time, insertion index).
fn reference_order(items: &[(u64, u32)]) -> Vec<u32> {
    let mut indexed: Vec<(u64, usize, u32)> = items
        .iter()
        .enumerate()
        .map(|(i, &(t, v))| (t, i, v))
        .collect();
    indexed.sort();
    indexed.into_iter().map(|(_, _, v)| v).collect()
}

proptest! {
    #[test]
    fn scheduler_matches_reference_model(
        items in prop::collection::vec((0u64..1_000_000, any::<u32>()), 0..200)
    ) {
        let mut s = Scheduler::new();
        for &(t, v) in &items {
            s.schedule(SimTime::from_ps(t), v);
        }
        let got: Vec<u32> = s.drain().into_iter().map(|(_, v)| v).collect();
        prop_assert_eq!(got, reference_order(&items));
    }

    #[test]
    fn scheduler_with_cancellations_matches_reference(
        items in prop::collection::vec((0u64..1_000_000, any::<u32>()), 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut s = Scheduler::new();
        let handles: Vec<_> = items
            .iter()
            .map(|&(t, v)| s.schedule(SimTime::from_ps(t), v))
            .collect();
        let mut kept = Vec::new();
        for (i, (&(t, v), h)) in items.iter().zip(&handles).enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                let cancelled = s.cancel(*h);
                prop_assert_eq!(cancelled, Some(v));
            } else {
                kept.push((t, v));
            }
        }
        let got: Vec<u32> = s.drain().into_iter().map(|(_, v)| v).collect();
        // Cancellation must not disturb relative order of survivors.
        let mut expected_input: Vec<(u64, u32)> = Vec::new();
        for (i, &(t, v)) in items.iter().enumerate() {
            if !*cancel_mask.get(i).unwrap_or(&false) {
                expected_input.push((t, v));
            }
        }
        // Note: reference indices change after filtering, but relative
        // insertion order is preserved, which is what matters for ties.
        prop_assert_eq!(got, reference_order(&expected_input));
    }

    #[test]
    fn pop_times_never_decrease(
        items in prop::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut s = Scheduler::new();
        for &t in &items {
            s.schedule(SimTime::from_ps(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = s.pop() {
            prop_assert!(t >= last);
            last = t;
            prop_assert_eq!(s.now(), t);
        }
    }

    #[test]
    fn rng_gen_range_always_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = DetRng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.gen_range(bound) < bound);
        }
    }

    #[test]
    fn rng_fork_is_stable(seed in any::<u64>(), stream in any::<u64>()) {
        let root = DetRng::new(seed);
        let mut a = root.fork(stream);
        let mut b = root.fork(stream);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(any::<u16>(), 0..64)) {
        let mut r = DetRng::new(seed);
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        r.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }
}
