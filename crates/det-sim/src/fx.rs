//! Deterministic fast hashing for hot-path lookup tables.
//!
//! `std::collections::HashMap`'s default hasher is seeded from OS
//! randomness, which the determinism contract (DESIGN.md §2) forbids even
//! where iteration order never escapes: a deterministic system should not
//! consume entropy at all. [`FxHashMap`] swaps in the Firefox `FxHasher`
//! (multiply-rotate over machine words) with a fixed zero seed — same
//! O(1) lookups, no per-process randomness, and several times faster than
//! SipHash on the small fixed-width keys the engine uses (wire sizes,
//! endpoint pairs, flight ids).
//!
//! The maps are used for *lookup only* on the simulation hot path; nothing
//! deterministic-ordering-sensitive ever iterates them.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" hash: one multiply-rotate per word of input.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i as u64);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 2)), Some(&(i as u64)));
        }
        assert_eq!(m.get(&(7, 15)), None);
    }

    #[test]
    fn byte_stream_matches_wordwise_padding() {
        // write() must not change results run-to-run (no ambient state).
        let mut a = FxHasher::default();
        a.write(b"hello world, hydee");
        let first = a.finish();
        let mut b = FxHasher::default();
        b.write(b"hello world, hydee");
        assert_eq!(first, b.finish());
    }
}
