//! Deterministic event queue.
//!
//! An index-based binary heap over a **slab arena** (DESIGN.md §2.1). Every
//! scheduled event lives in a fixed slot of the arena; the heap itself is a
//! flat `Vec<u32>` of slot indices ordered by `(SimTime, key, sequence)`.
//! The optional caller-supplied `key` ([`Scheduler::schedule_keyed`]) lets
//! an engine impose a *content-derived* order on same-instant events that
//! is independent of insertion order — the property the sharded engine
//! needs so that events inserted by different shards still pop in one
//! global order (DESIGN.md §2.8). The monotonically increasing sequence
//! number remains the final tie-break, resolving same-`(time, key)`
//! events in *insertion order*, which keeps the simulation schedule a
//! pure function of the call sequence — a plain binary heap gives no
//! ordering guarantee for equal keys.
//!
//! Freed slots are recycled through an intrusive free list, so steady-state
//! operation performs **zero allocations** and memory is bounded by the
//! peak number of simultaneously live events (the previous implementation
//! appended one slot per scheduled event and paid an O(dead-prefix) scan on
//! every pop to decide when to compact).
//!
//! Events can be cancelled in O(1) via [`EventHandle`] (lazy deletion: the
//! slot is tombstoned, its key is kept so the heap invariant holds, and the
//! slot is recycled when its heap entry surfaces), which the
//! message-passing layer uses for retracting in-flight deliveries to a
//! failed rank. Handles carry a per-slot generation, so a handle to a
//! consumed event can never cancel an unrelated event that happens to reuse
//! the slot.

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Internally packs `(slot index, slot generation)`; a handle is
/// invalidated the moment its event fires or is cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    #[inline]
    fn new(slot: u32, generation: u32) -> Self {
        EventHandle(((generation as u64) << 32) | slot as u64)
    }
    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }
    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

const NIL: u32 = u32::MAX;

/// A heap entry: the full ordering key plus the arena slot it points at.
/// Keys are *inline* so sift comparisons never chase the arena pointer,
/// and `seq` doubles as the staleness check — a cancelled event frees its
/// slot immediately, and any heap entry whose `seq` no longer matches the
/// slot's is recognised as stale when it surfaces.
#[derive(Clone, Copy)]
struct Entry {
    time: SimTime,
    key: u64,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64, u64) {
        (self.time, self.key, self.seq)
    }
}

struct Slot<E> {
    /// Insertion stamp of the occupying event; `u64::MAX` while free.
    seq: u64,
    /// Bumped whenever the slot is recycled; validates [`EventHandle`]s.
    generation: u32,
    /// Next slot in the free list (only meaningful while free).
    next_free: u32,
    event: Option<E>,
}

/// A deterministic future-event list.
///
/// `pop` never returns an event earlier than the last popped time, and the
/// queue tracks `now` — the timestamp of the most recently popped event —
/// as the simulation clock.
pub struct Scheduler<E> {
    /// Binary heap ordered by `(time, key, seq)` with keys held inline.
    heap: Vec<Entry>,
    slots: Vec<Slot<E>>,
    free_head: u32,
    next_seq: u64,
    now: SimTime,
    live: usize,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Scheduler {
            heap: Vec::new(),
            slots: Vec::new(),
            free_head: NIL,
            next_seq: 0,
            now: SimTime::ZERO,
            live: 0,
        }
    }

    /// Current simulated time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (scheduled, not-yet-popped, not-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `event` at absolute time `at` with the neutral tie-break
    /// key `0` (insertion order resolves same-instant events).
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        self.schedule_keyed(at, 0, event)
    }

    /// Schedule `event` at absolute time `at` under tie-break `key`.
    ///
    /// Same-instant events pop in ascending `key` order regardless of the
    /// order they were scheduled in; only same-`(time, key)` events fall
    /// back to insertion order. A content-derived key therefore makes the
    /// pop order independent of *who* inserted the event — the determinism
    /// contract the cluster-sharded engine relies on (DESIGN.md §2.8).
    ///
    /// # Panics
    /// Panics in debug builds if `at` is in the past — the engine never
    /// rewrites history.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, event: E) -> EventHandle {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next_free;
            slot.seq = seq;
            slot.next_free = NIL;
            slot.event = Some(event);
            idx
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "slab arena exhausted");
            self.slots.push(Slot {
                seq,
                generation: 0,
                next_free: NIL,
                event: Some(event),
            });
            idx
        };
        self.live += 1;
        self.heap.push(Entry {
            time: at,
            key,
            seq,
            slot: idx,
        });
        self.sift_up(self.heap.len() - 1);
        EventHandle::new(idx, self.slots[idx as usize].generation)
    }

    /// Cancel a previously scheduled event. Returns the event if it was
    /// still pending, `None` if it already fired or was already cancelled.
    ///
    /// O(1): the slot is freed immediately (its heap entry turns stale and
    /// is dropped when it surfaces — `seq` no longer matches).
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        let idx = handle.slot();
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.generation != handle.generation() {
            return None;
        }
        let taken = slot.event.take();
        if taken.is_some() {
            self.live -= 1;
            self.release(idx);
        }
        taken
    }

    /// Does the heap entry still name the event it was pushed for?
    #[inline]
    fn is_live(&self, e: &Entry) -> bool {
        let s = &self.slots[e.slot as usize];
        s.seq == e.seq && s.event.is_some()
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_stale();
        self.heap.first().map(|e| e.time)
    }

    /// `(time, key)` of the next live event, if any — the cross-shard
    /// comparison key the parallel coordinator uses to locate the globally
    /// minimal event without popping it.
    pub fn peek_keyed(&mut self) -> Option<(SimTime, u64)> {
        self.skip_stale();
        self.heap.first().map(|e| (e.time, e.key))
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(t, _, e)| (t, e))
    }

    /// Pop the next event together with its tie-break key.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        loop {
            let entry = *self.heap.first()?;
            self.remove_top();
            if !self.is_live(&entry) {
                continue; // stale: the event was cancelled
            }
            let event = self.slots[entry.slot as usize].event.take().unwrap();
            self.release(entry.slot);
            self.live -= 1;
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            return Some((entry.time, entry.key, event));
        }
    }

    /// Return a consumed slot to the free list, invalidating its handles.
    #[inline]
    fn release(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.seq = u64::MAX;
        slot.generation = slot.generation.wrapping_add(1);
        slot.next_free = self.free_head;
        self.free_head = idx;
    }

    /// Drop stale entries sitting at the heap top so `peek_time` sees a
    /// live event.
    fn skip_stale(&mut self) {
        while let Some(e) = self.heap.first() {
            if self.is_live(e) {
                return;
            }
            self.remove_top();
        }
    }

    /// Remove the root heap entry, restoring the heap invariant.
    fn remove_top(&mut self) {
        let last = self.heap.pop().expect("remove_top on empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        let moved = self.heap[pos];
        let key = moved.key();
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[parent].key() <= key {
                break;
            }
            self.heap[pos] = self.heap[parent];
            pos = parent;
        }
        self.heap[pos] = moved;
    }

    fn sift_down(&mut self, mut pos: usize) {
        let moved = self.heap[pos];
        let key = moved.key();
        let len = self.heap.len();
        loop {
            let mut child = 2 * pos + 1;
            if child >= len {
                break;
            }
            let right = child + 1;
            if right < len && self.heap[right].key() < self.heap[child].key() {
                child = right;
            }
            if key <= self.heap[child].key() {
                break;
            }
            self.heap[pos] = self.heap[child];
            pos = child;
        }
        self.heap[pos] = moved;
    }

    /// Drain all remaining events in deterministic order (for shutdown and
    /// for tests).
    pub fn drain(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.live);
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(5), 5u32);
        s.schedule(SimTime::from_us(1), 1u32);
        s.schedule(SimTime::from_us(3), 3u32);
        let order: Vec<u32> = s.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::from_us(7);
        for i in 0..100u32 {
            s.schedule(t, i);
        }
        let order: Vec<u32> = s.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(2), ());
        s.schedule(SimTime::from_us(9), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_us(2));
        s.pop();
        assert_eq!(s.now(), SimTime::from_us(9));
    }

    #[test]
    fn cancel_removes_event() {
        let mut s = Scheduler::new();
        let h1 = s.schedule(SimTime::from_us(1), "a");
        s.schedule(SimTime::from_us(2), "b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.cancel(h1), Some("a"));
        assert_eq!(s.len(), 1);
        // double-cancel is a no-op
        assert_eq!(s.cancel(h1), None);
        let order: Vec<&str> = s.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b"]);
    }

    #[test]
    fn cancel_after_fire_is_none() {
        let mut s = Scheduler::new();
        let h = s.schedule(SimTime::from_us(1), 42);
        s.pop();
        assert_eq!(s.cancel(h), None);
    }

    #[test]
    fn stale_handle_cannot_cancel_recycled_slot() {
        let mut s = Scheduler::new();
        let h = s.schedule(SimTime::from_us(1), 1u32);
        s.pop();
        // The slot is recycled for a new event; the old handle must not
        // reach it.
        let h2 = s.schedule(SimTime::from_us(2), 2u32);
        assert_eq!(h.slot(), h2.slot(), "slot should be recycled");
        assert_eq!(s.cancel(h), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.cancel(h2), Some(2));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let h = s.schedule(SimTime::from_us(1), ());
        s.schedule(SimTime::from_us(5), ());
        s.cancel(h);
        assert_eq!(s.peek_time(), Some(SimTime::from_us(5)));
    }

    #[test]
    fn slot_arena_is_bounded_by_peak_live() {
        let mut s = Scheduler::new();
        let mut t = SimTime::ZERO;
        // Steady-state traffic: 100 live events at a time, 5000 total.
        for i in 0..100u64 {
            t += SimDuration::from_ns(1);
            s.schedule(t, i);
        }
        for round in 0..49u64 {
            for i in 0..100u64 {
                t += SimDuration::from_ns(1);
                s.schedule(t, round * 100 + i);
            }
            for _ in 0..100 {
                s.pop().unwrap();
            }
        }
        assert_eq!(s.slots.len(), 200, "arena must recycle, not grow");
        while s.pop().is_some() {}
        assert!(s.is_empty());
        // Scheduling still works after heavy recycling.
        s.schedule(t + SimDuration::from_ns(1), 0);
        assert_eq!(s.pop().map(|(_, e)| e), Some(0));
    }

    #[test]
    fn keyed_schedule_orders_same_instant_events_by_key_not_insertion() {
        let t = SimTime::from_us(3);
        // Two insertion orders of the same keyed events pop identically.
        let run = |perm: &[(u64, &'static str)]| {
            let mut s = Scheduler::new();
            for &(key, ev) in perm {
                s.schedule_keyed(t, key, ev);
            }
            s.schedule(SimTime::from_us(1), "first");
            assert_eq!(s.peek_keyed(), Some((SimTime::from_us(1), 0)));
            s.drain().into_iter().map(|(_, e)| e).collect::<Vec<_>>()
        };
        let a = run(&[(2, "b"), (9, "c"), (1, "a")]);
        let b = run(&[(9, "c"), (1, "a"), (2, "b")]);
        assert_eq!(a, vec!["first", "a", "b", "c"]);
        assert_eq!(a, b);
        // Equal (time, key) still resolves in insertion order.
        let mut s = Scheduler::new();
        s.schedule_keyed(t, 5, "x");
        s.schedule_keyed(t, 5, "y");
        let order: Vec<&str> = s.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["x", "y"]);
    }

    #[test]
    fn interleaved_schedule_pop_is_deterministic() {
        let run = || {
            let mut s = Scheduler::new();
            let mut log = Vec::new();
            s.schedule(SimTime::from_ns(10), 0u64);
            while let Some((t, e)) = s.pop() {
                log.push((t, e));
                if e < 20 {
                    // Two children at the same future instant.
                    s.schedule(t + SimDuration::from_ns(5), 2 * e + 1);
                    s.schedule(t + SimDuration::from_ns(5), 2 * e + 2);
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
