//! Deterministic event queue.
//!
//! A thin wrapper over a binary heap keyed by `(SimTime, sequence)`. The
//! monotonically increasing sequence number breaks ties between events
//! scheduled for the same instant in *insertion order*, which makes the
//! simulation schedule a pure function of the call sequence — `BinaryHeap`
//! alone gives no ordering guarantee for equal keys.
//!
//! Events can be cancelled in O(1) via [`EventHandle`] (lazy deletion: the
//! slot is tombstoned and skipped on pop), which the message-passing layer
//! uses for retracting in-flight deliveries to a failed rank.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventHandle(u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
}

struct Slot<E> {
    event: Option<E>, // None => cancelled (tombstone)
}

/// A deterministic future-event list.
///
/// `pop` never returns an event earlier than the last popped time, and the
/// queue tracks `now` — the timestamp of the most recently popped event —
/// as the simulation clock.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Key>>,
    slots: Vec<Slot<E>>,
    // Maps seq -> index into `slots`; slots of consumed events are freed.
    // We keep it simple: slots indexed by seq directly via offset.
    base_seq: u64,
    next_seq: u64,
    now: SimTime,
    live: usize,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            base_seq: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            live: 0,
        }
    }

    /// Current simulated time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (scheduled, not-yet-popped, not-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics in debug builds if `at` is in the past — the engine never
    /// rewrites history.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = Key { time: at, seq };
        self.slots.push(Slot { event: Some(event) });
        self.heap.push(Reverse(key));
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Returns the event if it was
    /// still pending, `None` if it already fired or was already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        let idx = self.slot_index(handle.0)?;
        let taken = self.slots[idx].event.take();
        if taken.is_some() {
            self.live -= 1;
        }
        taken
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_tombstones();
        self.heap.peek().map(|Reverse(k)| k.time)
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let Reverse(key) = self.heap.pop()?;
            let idx = self
                .slot_index(key.seq)
                .expect("heap key without backing slot");
            if let Some(event) = self.slots[idx].event.take() {
                self.live -= 1;
                debug_assert!(key.time >= self.now);
                self.now = key.time;
                self.compact();
                return Some((key.time, event));
            }
            // tombstone: cancelled event, keep popping
        }
    }

    fn slot_index(&self, seq: u64) -> Option<usize> {
        if seq < self.base_seq {
            return None;
        }
        let idx = (seq - self.base_seq) as usize;
        if idx >= self.slots.len() {
            return None;
        }
        Some(idx)
    }

    fn skip_tombstones(&mut self) {
        while let Some(Reverse(key)) = self.heap.peek() {
            let idx = match self.slot_index(key.seq) {
                Some(i) => i,
                None => {
                    self.heap.pop();
                    continue;
                }
            };
            if self.slots[idx].event.is_some() {
                return;
            }
            self.heap.pop();
        }
    }

    /// Drop fully-consumed slots from the front to bound memory. Amortised
    /// O(1): only runs when at least half the slot arena is dead prefix.
    fn compact(&mut self) {
        let dead_prefix = self.slots.iter().take_while(|s| s.event.is_none()).count();
        if dead_prefix >= 1024 && dead_prefix * 2 >= self.slots.len() {
            self.slots.drain(..dead_prefix);
            self.base_seq += dead_prefix as u64;
        }
    }

    /// Drain all remaining events in deterministic order (for shutdown and
    /// for tests).
    pub fn drain(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.live);
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(5), 5u32);
        s.schedule(SimTime::from_us(1), 1u32);
        s.schedule(SimTime::from_us(3), 3u32);
        let order: Vec<u32> = s.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::from_us(7);
        for i in 0..100u32 {
            s.schedule(t, i);
        }
        let order: Vec<u32> = s.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(2), ());
        s.schedule(SimTime::from_us(9), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_us(2));
        s.pop();
        assert_eq!(s.now(), SimTime::from_us(9));
    }

    #[test]
    fn cancel_removes_event() {
        let mut s = Scheduler::new();
        let h1 = s.schedule(SimTime::from_us(1), "a");
        s.schedule(SimTime::from_us(2), "b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.cancel(h1), Some("a"));
        assert_eq!(s.len(), 1);
        // double-cancel is a no-op
        assert_eq!(s.cancel(h1), None);
        let order: Vec<&str> = s.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b"]);
    }

    #[test]
    fn cancel_after_fire_is_none() {
        let mut s = Scheduler::new();
        let h = s.schedule(SimTime::from_us(1), 42);
        s.pop();
        assert_eq!(s.cancel(h), None);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let h = s.schedule(SimTime::from_us(1), ());
        s.schedule(SimTime::from_us(5), ());
        s.cancel(h);
        assert_eq!(s.peek_time(), Some(SimTime::from_us(5)));
    }

    #[test]
    fn compaction_keeps_behaviour() {
        let mut s = Scheduler::new();
        let mut t = SimTime::ZERO;
        // Enough traffic to trigger several compactions.
        for round in 0..50u64 {
            for i in 0..100u64 {
                t += SimDuration::from_ns(1);
                s.schedule(t, round * 100 + i);
            }
            for _ in 0..100 {
                s.pop().unwrap();
            }
        }
        assert!(s.is_empty());
        // Scheduling still works after compaction.
        s.schedule(t + SimDuration::from_ns(1), 0);
        assert_eq!(s.pop().map(|(_, e)| e), Some(0));
    }

    #[test]
    fn interleaved_schedule_pop_is_deterministic() {
        let run = || {
            let mut s = Scheduler::new();
            let mut log = Vec::new();
            s.schedule(SimTime::from_ns(10), 0u64);
            while let Some((t, e)) = s.pop() {
                log.push((t, e));
                if e < 20 {
                    // Two children at the same future instant.
                    s.schedule(t + SimDuration::from_ns(5), 2 * e + 1);
                    s.schedule(t + SimDuration::from_ns(5), 2 * e + 2);
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
