//! Small online statistics used by the experiment harnesses.
//!
//! [`OnlineStats`] is a Welford accumulator (numerically stable mean and
//! variance in one pass, O(1) memory); [`Summary`] additionally keeps the
//! samples to report medians and percentiles, which the paper-style tables
//! need for "mean of 8 executions" rows.

use serde::{Deserialize, Serialize};

/// One-pass mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sample-retaining summary with percentile queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    stats: OnlineStats,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            samples: Vec::new(),
            stats: OnlineStats::new(),
        }
    }

    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.stats.push(x);
    }

    pub fn count(&self) -> u64 {
        self.stats.count()
    }
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }
    pub fn stddev(&self) -> f64 {
        self.stats.stddev()
    }
    pub fn min(&self) -> f64 {
        self.stats.min()
    }
    pub fn max(&self) -> f64 {
        self.stats.max()
    }
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Linear-interpolated percentile, `q` in \[0,100\]. NaN when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let q = q.clamp(0.0, 100.0) / 100.0;
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive sample variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.percentile(25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary() {
        let mut s = Summary::new();
        s.push(42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stddev(), 0.0);
    }
}
