//! Deterministic pseudo-random number generation.
//!
//! A self-contained xoshiro256** generator seeded through SplitMix64, as
//! recommended by its authors. We implement it locally (~40 lines) rather
//! than pulling `rand` into the simulation core so that the engine's
//! determinism does not depend on an external crate's version-to-version
//! stream stability. Workload *generation* (outside the hot loop) still uses
//! `rand` where convenient.
//!
//! Each simulated entity derives its own independent stream with
//! [`DetRng::fork`], so adding RNG draws to one rank can never perturb the
//! stream seen by another.

/// Deterministic RNG (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Derive an independent child stream, keyed by `stream_id`. Children of
    /// distinct ids (or of distinct parents) produce unrelated sequences.
    pub fn fork(&self, stream_id: u64) -> DetRng {
        // Mix the parent state with the stream id through SplitMix64.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(34)
            ^ self.s[3].rotate_left(51)
            ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        DetRng { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Widening-multiply rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to \[0,1\]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Pick a uniformly random element of `slice`.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.gen_range(slice.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let root = DetRng::new(7);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let mut c1b = root.fork(0);
        let a: Vec<u64> = (0..10).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| c2.next_u64()).collect();
        let a2: Vec<u64> = (0..10).map(|_| c1b.next_u64()).collect();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = DetRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = DetRng::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval_and_roughly_uniform() {
        let mut r = DetRng::new(11);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = DetRng::new(17);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
