//! Virtual time.
//!
//! Simulated time is kept in integer **picoseconds** (`u64`). Picoseconds
//! give sub-byte resolution on a 10 Gb/s link (0.8 ns/byte) while still
//! covering ~213 days of simulated time before overflow — far beyond any
//! experiment in this workspace. Integer time is essential for determinism:
//! floating-point accumulation order would otherwise leak into event
//! ordering.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in picoseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as "never" sentinel by schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    #[inline]
    pub fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    #[inline]
    pub fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    #[inline]
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_S)
    }

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating difference between two instants.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    #[inline]
    pub fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    #[inline]
    pub fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    #[inline]
    pub fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }
    /// Build a duration from fractional nanoseconds, rounding to the nearest
    /// picosecond. Used by cost models whose parameters are naturally
    /// expressed as floats (e.g. bytes / bandwidth).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration: {ns}");
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Self::from_ns_f64(us * 1_000.0)
    }

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_S {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_us(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, t + d);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(5);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_us(4));
    }

    #[test]
    fn duration_from_float_rounds() {
        assert_eq!(SimDuration::from_ns_f64(0.8).as_ps(), 800);
        assert_eq!(SimDuration::from_ns_f64(3.3).as_ps(), 3_300);
        // rounding, not truncation
        assert_eq!(SimDuration::from_ns_f64(0.0004).as_ps(), 0);
        assert_eq!(SimDuration::from_ns_f64(0.0006).as_ps(), 1);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_ns(10);
        assert_eq!(d * 3, SimDuration::from_ns(30));
        assert_eq!(d / 2, SimDuration::from_ns(5));
        assert_eq!(
            [d, d, d].into_iter().sum::<SimDuration>(),
            SimDuration::from_ns(30)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_ns(500)), "500.000ns");
        assert_eq!(format!("{}", SimDuration::from_us(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_ps(7)), "7ps");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_ns(1) < SimTime::from_us(1));
        assert!(SimDuration::from_ms(1) > SimDuration::from_us(999));
    }
}
