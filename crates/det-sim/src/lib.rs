//! # det-sim — deterministic discrete-event simulation engine
//!
//! Foundation for the hydee-rs workspace: a virtual clock with picosecond
//! resolution, an event queue with *stable* (fully deterministic) ordering,
//! deterministic pseudo-random number streams, and small online-statistics
//! helpers used by the experiment harnesses.
//!
//! Everything in this crate is deterministic by construction: given the same
//! seed and the same sequence of API calls, a simulation replays
//! bit-for-bit. That property is what lets the fault-tolerance tests compare
//! a recovered execution against the golden failure-free run of the same
//! seed.
//!
//! ```
//! use det_sim::prelude::*;
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule(SimTime::from_us(3), "late");
//! sched.schedule(SimTime::from_us(1), "early");
//! let (t, ev) = sched.pop().unwrap();
//! assert_eq!(ev, "early");
//! assert_eq!(t, SimTime::from_us(1));
//! ```

pub mod fx;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use fx::{FxHashMap, FxHasher};
pub use queue::{EventHandle, Scheduler};
pub use rng::DetRng;
pub use stats::{OnlineStats, Summary};
pub use time::{SimDuration, SimTime};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::queue::{EventHandle, Scheduler};
    pub use crate::rng::DetRng;
    pub use crate::stats::{OnlineStats, Summary};
    pub use crate::time::{SimDuration, SimTime};
}
