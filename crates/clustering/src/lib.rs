//! # clustering — process clustering for partial message logging
//!
//! The role of Ropars et al.'s clustering tool \[28\] in the HydEE paper:
//! given an application's communication graph, find a partition of the
//! processes that balances cluster size (failure containment) against
//! inter-cluster traffic (logged bytes). Regenerates the paper's Table I
//! together with the `workloads` NAS skeletons.
//!
//! ```
//! use clustering::{partition, CommGraph, ClusteringStats, PartitionConfig};
//! use mps_sim::{Application, Rank, Tag};
//!
//! let mut app = Application::new(4);
//! app.rank_mut(Rank(0)).send(Rank(1), 1000, Tag(0));
//! app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
//! app.rank_mut(Rank(2)).send(Rank(3), 1000, Tag(0));
//! app.rank_mut(Rank(3)).recv(Rank(2), Tag(0));
//!
//! let graph = CommGraph::from_application(&app);
//! let map = partition(&graph, &PartitionConfig::with_k(2));
//! let stats = ClusteringStats::evaluate(&app, &map);
//! assert_eq!(stats.logged_bytes, 0); // perfect split: nothing crosses
//! ```

pub mod graph;
pub mod partition;
pub mod stats;

pub use graph::CommGraph;
pub use partition::{partition, PartitionConfig};
pub use stats::ClusteringStats;
