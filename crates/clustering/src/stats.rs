//! Clustering quality statistics — the columns of the paper's Table I.

use crate::graph::CommGraph;
use mps_sim::{Application, ClusterMap, Rank};
use serde::{Deserialize, Serialize};

/// Table-I-style statistics of one clustering on one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusteringStats {
    pub n_clusters: usize,
    /// Expected % of processes rolled back by a uniformly placed single
    /// failure.
    pub avg_rollback_pct: f64,
    /// Bytes crossing cluster boundaries (= logged by HydEE).
    pub logged_bytes: u64,
    /// Total bytes sent by the application.
    pub total_bytes: u64,
}

impl ClusteringStats {
    pub fn logged_pct(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            100.0 * self.logged_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Evaluate a clustering against an application's declared traffic,
    /// streaming aggregated send totals (closed form for generated
    /// programs — no per-op walk).
    pub fn evaluate(app: &Application, map: &ClusterMap) -> Self {
        assert_eq!(app.n_ranks(), map.n_ranks());
        let mut logged = 0u64;
        let mut total = 0u64;
        app.send_summary(|src, dst, bytes, _msgs| {
            total += bytes;
            if !map.same_cluster(src, dst) {
                logged += bytes;
            }
        });
        ClusteringStats {
            n_clusters: map.n_clusters(),
            avg_rollback_pct: 100.0 * map.avg_rollback_fraction(),
            logged_bytes: logged,
            total_bytes: total,
        }
    }

    /// Evaluate against a communication graph (undirected totals).
    pub fn evaluate_graph(graph: &CommGraph, map: &ClusterMap) -> Self {
        let n = graph.n_ranks();
        assert_eq!(n, map.n_ranks());
        let mut logged = 0u64;
        for i in 0..n {
            for (j, w) in graph.neighbors(Rank(i as u32)) {
                if j.idx() > i && !map.same_cluster(Rank(i as u32), j) {
                    logged += w;
                }
            }
        }
        ClusteringStats {
            n_clusters: map.n_clusters(),
            avg_rollback_pct: 100.0 * map.avg_rollback_fraction(),
            logged_bytes: logged,
            total_bytes: graph.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::Tag;

    fn app_two_groups() -> Application {
        // 0<->1 heavy intra, 1->2 light inter (when clustered {0,1},{2,3}).
        let mut app = Application::new(4);
        app.rank_mut(Rank(0)).send(Rank(1), 900, Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        app.rank_mut(Rank(1)).send(Rank(2), 100, Tag(0));
        app.rank_mut(Rank(2)).recv(Rank(1), Tag(0));
        app
    }

    #[test]
    fn evaluate_counts_inter_cluster_bytes() {
        let app = app_two_groups();
        let map = ClusterMap::new(vec![0, 0, 1, 1]);
        let s = ClusteringStats::evaluate(&app, &map);
        assert_eq!(s.total_bytes, 1000);
        assert_eq!(s.logged_bytes, 100);
        assert!((s.logged_pct() - 10.0).abs() < 1e-12);
        assert_eq!(s.n_clusters, 2);
        assert!((s.avg_rollback_pct - 50.0).abs() < 1e-12);
    }

    #[test]
    fn graph_and_app_evaluation_agree() {
        let app = app_two_groups();
        let map = ClusterMap::new(vec![0, 0, 1, 1]);
        let g = CommGraph::from_application(&app);
        let a = ClusteringStats::evaluate(&app, &map);
        let b = ClusteringStats::evaluate_graph(&g, &map);
        assert_eq!(a.logged_bytes, b.logged_bytes);
        assert_eq!(a.total_bytes, b.total_bytes);
    }

    #[test]
    fn single_cluster_logs_nothing() {
        let app = app_two_groups();
        let s = ClusteringStats::evaluate(&app, &ClusterMap::single(4));
        assert_eq!(s.logged_bytes, 0);
        assert_eq!(s.logged_pct(), 0.0);
    }

    #[test]
    fn per_rank_clusters_log_everything() {
        let app = app_two_groups();
        let s = ClusteringStats::evaluate(&app, &ClusterMap::per_rank(4));
        assert_eq!(s.logged_bytes, 1000);
        assert!((s.logged_pct() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_app_is_safe() {
        let app = Application::new(2);
        let s = ClusteringStats::evaluate(&app, &ClusterMap::single(2));
        assert_eq!(s.logged_pct(), 0.0);
    }
}
