//! Weighted communication graphs.
//!
//! The paper's clustering tool (Ropars et al. \[28\]) consumes "a graph
//! defining the amount of data sent in each application channel",
//! collected by instrumenting MPICH2. We build the same graph two ways:
//!
//! * from a [`mps_sim::CommMatrix`] produced by actually running the
//!   application (the paper's method), or
//! * statically from an [`mps_sim::Application`]'s op streams (no run
//!   needed — our programs declare their traffic).

use mps_sim::{Application, CommMatrix, Rank};

/// Undirected weighted communication graph over ranks.
#[derive(Debug, Clone)]
pub struct CommGraph {
    n: usize,
    /// Symmetric weights, row-major; `w[i*n+j]` = bytes exchanged between
    /// i and j (both directions).
    w: Vec<u64>,
}

impl CommGraph {
    pub fn new(n: usize) -> Self {
        CommGraph {
            n,
            w: vec![0; n * n],
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.n
    }

    /// Add `bytes` of traffic between `a` and `b` (order irrelevant).
    pub fn add(&mut self, a: Rank, b: Rank, bytes: u64) {
        if a == b {
            return;
        }
        self.w[a.idx() * self.n + b.idx()] += bytes;
        self.w[b.idx() * self.n + a.idx()] += bytes;
    }

    #[inline]
    pub fn weight(&self, a: Rank, b: Rank) -> u64 {
        self.w[a.idx() * self.n + b.idx()]
    }

    /// Total traffic (each undirected pair counted once).
    pub fn total(&self) -> u64 {
        self.w.iter().sum::<u64>() / 2
    }

    /// Build from a measured communication matrix.
    pub fn from_matrix(m: &CommMatrix) -> Self {
        let mut g = CommGraph::new(m.n_ranks());
        for (src, dst, bytes, _msgs) in m.channels() {
            g.add(src, dst, bytes);
        }
        g
    }

    /// Build statically from an application's programs, streaming each
    /// rank's aggregated send totals — closed form for generated
    /// programs, so graph extraction is O(ranks × pattern), not
    /// O(ranks × pattern × iterations).
    pub fn from_application(app: &Application) -> Self {
        let mut g = CommGraph::new(app.n_ranks());
        app.send_summary(|src, dst, bytes, _msgs| g.add(src, dst, bytes));
        g
    }

    /// Neighbours of `r` with nonzero weight.
    pub fn neighbors(&self, r: Rank) -> impl Iterator<Item = (Rank, u64)> + '_ {
        let base = r.idx() * self.n;
        (0..self.n).filter_map(move |j| {
            let w = self.w[base + j];
            if w > 0 {
                Some((Rank(j as u32), w))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::Tag;

    #[test]
    fn add_is_symmetric_and_ignores_self() {
        let mut g = CommGraph::new(3);
        g.add(Rank(0), Rank(1), 10);
        g.add(Rank(1), Rank(0), 5);
        g.add(Rank(2), Rank(2), 100);
        assert_eq!(g.weight(Rank(0), Rank(1)), 15);
        assert_eq!(g.weight(Rank(1), Rank(0)), 15);
        assert_eq!(g.weight(Rank(2), Rank(2)), 0);
        assert_eq!(g.total(), 15);
    }

    #[test]
    fn from_application_counts_sends() {
        let mut app = Application::new(3);
        app.rank_mut(Rank(0)).send(Rank(1), 100, Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        app.rank_mut(Rank(1)).send(Rank(2), 50, Tag(0));
        app.rank_mut(Rank(2)).recv(Rank(1), Tag(0));
        let g = CommGraph::from_application(&app);
        assert_eq!(g.weight(Rank(0), Rank(1)), 100);
        assert_eq!(g.weight(Rank(1), Rank(2)), 50);
        assert_eq!(g.weight(Rank(0), Rank(2)), 0);
        assert_eq!(g.total(), 150);
    }

    #[test]
    fn neighbors_iterates_nonzero() {
        let mut g = CommGraph::new(4);
        g.add(Rank(0), Rank(2), 7);
        g.add(Rank(0), Rank(3), 9);
        let nb: Vec<_> = g.neighbors(Rank(0)).collect();
        assert_eq!(nb, vec![(Rank(2), 7), (Rank(3), 9)]);
    }
}
