//! Process-clustering partitioners.
//!
//! Reimplementation of the role of Ropars et al.'s clustering tool \[28\]:
//! find a partition of the ranks into `k` clusters that keeps clusters
//! small (bounding rollback) while minimising the inter-cluster traffic
//! (bounding logged bytes).
//!
//! Two phases:
//!
//! 1. **Greedy agglomeration** — start from singletons, repeatedly merge
//!    the pair of clusters with the heaviest connecting traffic, subject
//!    to a maximum cluster size, until `k` clusters remain.
//! 2. **Kernighan–Lin-style refinement** — move individual ranks between
//!    clusters whenever that strictly reduces the edge cut and respects
//!    the size bound.
//!
//! Both phases are deterministic (ties break toward smaller indices).

use crate::graph::CommGraph;
use mps_sim::{ClusterMap, Rank};

/// Partitioning constraints.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Target number of clusters.
    pub k: usize,
    /// Maximum ranks per cluster (`None` = unbounded, i.e. `n`).
    pub max_cluster_size: Option<usize>,
    /// Refinement passes over all ranks.
    pub refine_passes: usize,
}

impl PartitionConfig {
    pub fn with_k(k: usize) -> Self {
        PartitionConfig {
            k,
            max_cluster_size: None,
            refine_passes: 4,
        }
    }

    /// Balanced clusters: cap at `ceil(n/k) * slack_num/slack_den`.
    pub fn balanced(k: usize, n: usize) -> Self {
        PartitionConfig {
            k,
            max_cluster_size: Some((n.div_ceil(k) * 5).div_ceil(4)),
            refine_passes: 4,
        }
    }
}

/// Partition `graph` into `cfg.k` clusters.
///
/// # Panics
/// Panics if `k` is 0 or exceeds the rank count, or if the size bound
/// makes `k` clusters infeasible.
pub fn partition(graph: &CommGraph, cfg: &PartitionConfig) -> ClusterMap {
    let n = graph.n_ranks();
    assert!(cfg.k >= 1 && cfg.k <= n, "need 1 <= k <= n");
    let max_size = cfg.max_cluster_size.unwrap_or(n);
    assert!(
        max_size * cfg.k >= n,
        "size bound {max_size} x {k} clusters cannot hold {n} ranks",
        k = cfg.k
    );
    let mut assignment = greedy_agglomerate(graph, cfg.k, max_size);
    for _ in 0..cfg.refine_passes {
        if !refine_once(graph, &mut assignment, max_size) {
            break;
        }
    }
    ClusterMap::new(compact_ids(assignment))
}

/// Greedy agglomeration down to `k` clusters.
fn greedy_agglomerate(graph: &CommGraph, k: usize, max_size: usize) -> Vec<u32> {
    let n = graph.n_ranks();
    // cluster id per rank; ids are initially rank ids.
    let mut cl: Vec<u32> = (0..n as u32).collect();
    let mut size: Vec<usize> = vec![1; n];
    // inter-cluster weights, dense (n small: 256 in the paper).
    let mut w: Vec<u64> = graph.to_dense();
    let mut alive: Vec<bool> = vec![true; n];
    let mut n_clusters = n;
    while n_clusters > k {
        // Find the heaviest feasible pair (a < b), preferring, on ties,
        // the pair whose merged size is smallest, then smallest indices.
        let mut best: Option<(u64, usize, usize)> = None;
        for a in 0..n {
            if !alive[a] {
                continue;
            }
            for b in (a + 1)..n {
                if !alive[b] || size[a] + size[b] > max_size {
                    continue;
                }
                let weight = w[a * n + b];
                let cand = (weight, usize::MAX - (size[a] + size[b]), usize::MAX - a);
                let cur = best
                    .map(|(bw, a0, b0)| (bw, usize::MAX - (size[a0] + size[b0]), usize::MAX - a0));
                if cur.is_none() || cand > cur.unwrap() {
                    best = Some((weight, a, b));
                }
            }
        }
        let Some((_, a, b)) = best else {
            // No feasible merge (size bound); accept more clusters.
            break;
        };
        // Merge b into a.
        for j in 0..n {
            if alive[j] && j != a && j != b {
                w[a * n + j] += w[b * n + j];
                w[j * n + a] = w[a * n + j];
            }
        }
        size[a] += size[b];
        alive[b] = false;
        for c in cl.iter_mut() {
            if *c == b as u32 {
                *c = a as u32;
            }
        }
        n_clusters -= 1;
    }
    cl
}

/// One KL refinement pass; returns true if any move was made.
fn refine_once(graph: &CommGraph, assignment: &mut [u32], max_size: usize) -> bool {
    let n = assignment.len();
    let mut sizes = std::collections::BTreeMap::<u32, usize>::new();
    for &c in assignment.iter() {
        *sizes.entry(c).or_default() += 1;
    }
    let mut moved = false;
    for r in 0..n {
        let me = Rank(r as u32);
        let my_cluster = assignment[r];
        if sizes[&my_cluster] == 1 {
            continue; // would empty a cluster
        }
        // Traffic toward each cluster.
        let mut toward = std::collections::BTreeMap::<u32, u64>::new();
        for (nb, weight) in graph.neighbors(me) {
            *toward.entry(assignment[nb.idx()]).or_default() += weight;
        }
        let home = toward.get(&my_cluster).copied().unwrap_or(0);
        // Best alternative cluster.
        let best = toward
            .iter()
            .filter(|(&c, _)| c != my_cluster && sizes[&c] < max_size)
            .max_by_key(|(&c, &w)| (w, std::cmp::Reverse(c)));
        if let Some((&c, &w)) = best {
            if w > home {
                assignment[r] = c;
                *sizes.get_mut(&my_cluster).unwrap() -= 1;
                *sizes.get_mut(&c).unwrap() += 1;
                moved = true;
            }
        }
    }
    moved
}

/// Renumber cluster ids densely (0..k), ordered by smallest member rank.
fn compact_ids(assignment: Vec<u32>) -> Vec<u32> {
    let mut mapping = std::collections::BTreeMap::<u32, u32>::new();
    let mut next = 0u32;
    let mut out = Vec::with_capacity(assignment.len());
    for c in assignment {
        let id = *mapping.entry(c).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        out.push(id);
    }
    out
}

impl CommGraph {
    /// Dense copy of the weight matrix (partitioner workspace).
    fn to_dense(&self) -> Vec<u64> {
        let n = self.n_ranks();
        let mut w = vec![0u64; n * n];
        for i in 0..n {
            for (j, weight) in self.neighbors(Rank(i as u32)) {
                w[i * n + j.idx()] = weight;
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tightly-coupled groups with a thin bridge.
    fn two_communities() -> CommGraph {
        let mut g = CommGraph::new(8);
        for grp in 0..2u32 {
            let base = grp * 4;
            for i in 0..4u32 {
                for j in (i + 1)..4u32 {
                    g.add(Rank(base + i), Rank(base + j), 1000);
                }
            }
        }
        g.add(Rank(3), Rank(4), 1); // bridge
        g
    }

    #[test]
    fn finds_obvious_communities() {
        let g = two_communities();
        let map = partition(&g, &PartitionConfig::with_k(2));
        assert_eq!(map.n_clusters(), 2);
        for i in 0..4u32 {
            assert!(map.same_cluster(Rank(0), Rank(i)), "rank {i}");
            assert!(map.same_cluster(Rank(4), Rank(4 + i)), "rank {}", 4 + i);
        }
        assert!(!map.same_cluster(Rank(0), Rank(4)));
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let g = two_communities();
        let map = partition(&g, &PartitionConfig::with_k(8));
        assert_eq!(map.n_clusters(), 8);
    }

    #[test]
    fn k_equals_one_gives_single_cluster() {
        let g = two_communities();
        let map = partition(&g, &PartitionConfig::with_k(1));
        assert_eq!(map.n_clusters(), 1);
    }

    #[test]
    fn size_bound_is_respected() {
        let g = two_communities();
        let cfg = PartitionConfig {
            k: 4,
            max_cluster_size: Some(2),
            refine_passes: 4,
        };
        let map = partition(&g, &cfg);
        assert!(map.max_cluster_size() <= 2);
        assert_eq!(map.n_clusters(), 4);
    }

    #[test]
    fn deterministic_output() {
        let g = two_communities();
        let a = partition(&g, &PartitionConfig::with_k(3));
        let b = partition(&g, &PartitionConfig::with_k(3));
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn refinement_reduces_cut_on_ring() {
        // A ring of 8 with strong links; k=2 should produce two contiguous
        // arcs (minimal cut = 2 edges).
        let mut g = CommGraph::new(8);
        for i in 0..8u32 {
            g.add(Rank(i), Rank((i + 1) % 8), 100);
        }
        let map = partition(&g, &PartitionConfig::balanced(2, 8));
        let cut: u64 = (0..8u32)
            .map(|i| {
                let j = (i + 1) % 8;
                if map.same_cluster(Rank(i), Rank(j)) {
                    0
                } else {
                    100
                }
            })
            .sum();
        assert_eq!(cut, 200, "minimal ring cut is two edges");
    }

    #[test]
    #[should_panic(expected = "need 1 <= k <= n")]
    fn zero_k_panics() {
        let g = CommGraph::new(4);
        let _ = partition(&g, &PartitionConfig::with_k(0));
    }
}
