//! Property tests for the partitioner: structural validity, determinism,
//! bound respect, and the quality relation against trivial partitions.

use clustering::{partition, ClusteringStats, CommGraph, PartitionConfig};
use mps_sim::{ClusterMap, Rank};
use proptest::prelude::*;

fn arb_graph(n: usize) -> impl Strategy<Value = CommGraph> {
    prop::collection::vec((0..n, 0..n, 1u64..10_000), 0..200).prop_map(move |edges| {
        let mut g = CommGraph::new(n);
        for (a, b, w) in edges {
            if a != b {
                g.add(Rank(a as u32), Rank(b as u32), w);
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn partition_is_structurally_valid(g in arb_graph(24), k in 1usize..24) {
        let map = partition(&g, &PartitionConfig::with_k(k));
        prop_assert_eq!(map.n_ranks(), 24);
        // At most k clusters (fewer only if the size bound blocked merges,
        // impossible here), all non-empty by ClusterMap construction.
        prop_assert!(map.n_clusters() >= k.min(24) || map.n_clusters() <= 24);
        prop_assert_eq!(map.n_clusters(), k);
        // Dense ids.
        let max_id = map.assignment().iter().max().copied().unwrap();
        prop_assert_eq!(max_id as usize + 1, map.n_clusters());
    }

    #[test]
    fn partition_is_deterministic(g in arb_graph(16), k in 1usize..16) {
        let a = partition(&g, &PartitionConfig::with_k(k));
        let b = partition(&g, &PartitionConfig::with_k(k));
        prop_assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn size_bound_respected(g in arb_graph(20), k in 2usize..10) {
        let cfg = PartitionConfig::balanced(k, 20);
        let map = partition(&g, &cfg);
        prop_assert!(
            map.max_cluster_size() <= cfg.max_cluster_size.unwrap(),
            "cluster of {} exceeds bound {:?}",
            map.max_cluster_size(),
            cfg.max_cluster_size
        );
    }

    #[test]
    fn partition_cut_no_worse_than_blocks(g in arb_graph(16), k in 2usize..8) {
        // The optimiser must not lose to the naive contiguous-blocks
        // partition it could trivially emit.
        let smart = partition(&g, &PartitionConfig::with_k(k));
        let naive = ClusterMap::blocks(16, k);
        let s_cut = ClusteringStats::evaluate_graph(&g, &smart).logged_bytes;
        let n_cut = ClusteringStats::evaluate_graph(&g, &naive).logged_bytes;
        prop_assert!(
            s_cut <= n_cut,
            "partitioner cut {} worse than naive blocks {}",
            s_cut,
            n_cut
        );
    }

    #[test]
    fn logged_fraction_monotone_at_extremes(g in arb_graph(12)) {
        let one = partition(&g, &PartitionConfig::with_k(1));
        let all = partition(&g, &PartitionConfig::with_k(12));
        let s1 = ClusteringStats::evaluate_graph(&g, &one);
        let sn = ClusteringStats::evaluate_graph(&g, &all);
        prop_assert_eq!(s1.logged_bytes, 0);
        prop_assert_eq!(sn.logged_bytes, g.total());
    }
}
