//! The generator equivalence oracle (ISSUE 3 satellite 1).
//!
//! Every registry workload now builds lazy `RankProgram` generators; the
//! seed-era materialised builders survive as `*_unrolled`. These tests pin
//! the redesign's core promise: for every workload family the streamed op
//! sequence is **op-for-op identical** to the unrolled oracle, the
//! closed-form metadata agrees with a full walk, and the engine produces
//! bit-for-bit identical digests from either representation.

use mps_sim::{NullProtocol, Op, Rank, Sim, SimConfig};
use workloads::WorkloadSpec;

/// Small-but-representative instances of every registry family (all six
/// NAS benches, netpipe, stencil with and without wildcards, and the
/// non-send-deterministic master/worker).
fn oracle_specs() -> Vec<WorkloadSpec> {
    let mut specs: Vec<WorkloadSpec> = ["BT", "CG", "FT", "LU", "MG", "SP"]
        .iter()
        .map(|b| WorkloadSpec::parse(&format!("nas:{b}:scale=0.0001:iters=2")).unwrap())
        .collect();
    specs.extend(
        [
            "netpipe:1024",
            "netpipe:8192:rounds=5",
            "stencil:16x10:face=65536:compute_us=200",
            "stencil:12x7:face=4096:compute_us=50:wildcard",
            "master_worker:8:tasks=4",
        ]
        .iter()
        .map(|n| WorkloadSpec::parse(n).unwrap()),
    );
    specs
}

#[test]
fn streamed_op_sequences_match_the_unrolled_oracle() {
    for spec in oracle_specs() {
        let streamed = spec.build();
        let unrolled = spec.build_unrolled();
        assert_eq!(streamed.n_ranks(), unrolled.n_ranks(), "{}", spec.name());
        for r in 0..streamed.n_ranks() {
            let r = Rank(r as u32);
            let a: Vec<Op> = streamed.ops(r).collect();
            let b: Vec<Op> = unrolled.ops(r).collect();
            assert_eq!(a, b, "{}: rank {} op stream diverged", spec.name(), r.0);
        }
    }
}

#[test]
fn closed_form_metadata_matches_the_unrolled_oracle() {
    for spec in oracle_specs() {
        let streamed = spec.build();
        let unrolled = spec.build_unrolled();
        assert_eq!(
            streamed.total_bytes(),
            unrolled.total_bytes(),
            "{}",
            spec.name()
        );
        assert_eq!(
            streamed.total_messages(),
            unrolled.total_messages(),
            "{}",
            spec.name()
        );
        for r in 0..streamed.n_ranks() {
            let r = Rank(r as u32);
            let (s, u) = (streamed.rank(r), unrolled.rank(r));
            assert_eq!(s.len(), u.len(), "{} rank {}", spec.name(), r.0);
            assert_eq!(
                s.send_count(),
                u.send_count(),
                "{} rank {}",
                spec.name(),
                r.0
            );
            assert_eq!(
                s.recv_count(),
                u.recv_count(),
                "{} rank {}",
                spec.name(),
                r.0
            );
            assert_eq!(
                s.bytes_sent(),
                u.bytes_sent(),
                "{} rank {}",
                spec.name(),
                r.0
            );
        }
        // The balance oracle must accept both forms.
        assert!(streamed.check_balance().is_ok(), "{}", spec.name());
        assert!(unrolled.check_balance().is_ok(), "{}", spec.name());
    }
}

#[test]
fn engine_digests_are_identical_across_representations() {
    // A subset that simulates quickly; digests (and event counts) must be
    // bit-for-bit equal, which is what keeps the committed
    // `BENCH_engine.json` digests valid across the API redesign.
    for name in [
        "netpipe:4096:rounds=10",
        "stencil:16x6:face=1024:compute_us=20",
        "stencil:9x4:face=512:compute_us=10:wildcard",
        "master_worker:6:tasks=3",
        "nas:MG:scale=0.0001:iters=2",
    ] {
        let spec = WorkloadSpec::parse(name).unwrap();
        let a = Sim::new(spec.build(), SimConfig::default(), NullProtocol).run();
        let b = Sim::new(spec.build_unrolled(), SimConfig::default(), NullProtocol).run();
        assert!(a.completed() && b.completed(), "{name}");
        assert_eq!(a.digests, b.digests, "{name}: digests diverged");
        assert_eq!(a.makespan, b.makespan, "{name}: makespan diverged");
        assert_eq!(
            a.metrics.events, b.metrics.events,
            "{name}: event count diverged"
        );
    }
}

#[test]
fn streamed_representation_is_smaller_for_iterative_workloads() {
    for spec in oracle_specs() {
        let app = spec.build();
        assert!(
            app.resident_bytes() <= app.unrolled_bytes(),
            "{}: streamed form larger than unrolled",
            spec.name()
        );
    }
    // At long horizons the win is the point: 200 iterations ≥ 50×.
    let spec = WorkloadSpec::parse("stencil:64x200:face=4096:compute_us=100").unwrap();
    let app = spec.build();
    assert!(app.resident_bytes() * 50 <= app.unrolled_bytes());
}
