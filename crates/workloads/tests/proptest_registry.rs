//! Round-trip property test for the workload registry name grammar
//! (ISSUE 3 satellite 2): `WorkloadSpec::parse(spec.name()) == spec` for
//! every representable spec. The `sweep` CLI and the scenario matrices
//! address workloads exclusively by these names, so a rename or a
//! formatting drift in `name()` would silently orphan them — this test
//! turns that into a hard failure.

use proptest::prelude::*;
use workloads::{NasBench, WorkloadSpec};

/// Deterministically decode one arbitrary spec from a tuple of raw draws
/// (the vendored proptest stub has no `prop_oneof`, so variant selection
/// is an explicit integer).
fn decode_spec(
    variant: u8,
    a: u32, // rank-ish / bench selector
    b: u32, // iterations / rounds / tasks
    c: u64, // bytes
    d: u32, // scale numerator / compute_us
    flags: u8,
) -> WorkloadSpec {
    match variant % 4 {
        0 => WorkloadSpec::Nas {
            bench: NasBench::all()[(a % 6) as usize],
            // Exact binary fractions (and 1.0, the name-eliding default)
            // exercise the f64 Display/parse round trip.
            scale: (1 + d % 512) as f64 / 256.0,
            iterations: if flags & 1 == 0 {
                None
            } else {
                Some((b % 1000) as usize)
            },
        },
        1 => WorkloadSpec::NetPipe {
            // Includes 20, the default the name elides.
            rounds: (1 + b % 40) as usize,
            bytes: 1 + c % (1 << 22),
        },
        2 => WorkloadSpec::Stencil {
            n_ranks: (1 + a % 256) as usize,
            iterations: (1 + b % 2000) as usize,
            face_bytes: 1 + c % (1 << 26),
            compute_us: (d % 10_000) as u64,
            wildcard_recv: flags & 1 != 0,
        },
        _ => WorkloadSpec::MasterWorker {
            n_ranks: (2 + a % 256) as usize,
            // Includes 4, the default value (always printed).
            tasks_per_worker: (1 + b % 64) as usize,
        },
    }
}

proptest! {
    #[test]
    fn parse_name_round_trips(
        variant in any::<u8>(),
        a in any::<u32>(),
        b in any::<u32>(),
        c in any::<u64>(),
        d in any::<u32>(),
        flags in any::<u8>(),
    ) {
        let spec = decode_spec(variant, a, b, c, d, flags);
        let name = spec.name();
        let reparsed = WorkloadSpec::parse(&name);
        prop_assert!(
            reparsed.is_ok(),
            "`{}` failed to reparse: {:?}", name, reparsed
        );
        prop_assert_eq!(reparsed.unwrap(), spec, "`{}` round-tripped to a different spec", name);
    }

    #[test]
    fn names_are_injective_across_random_pairs(
        v1 in any::<u8>(), a1 in any::<u32>(), b1 in any::<u32>(),
        c1 in any::<u64>(), d1 in any::<u32>(), f1 in any::<u8>(),
        v2 in any::<u8>(), a2 in any::<u32>(), b2 in any::<u32>(),
        c2 in any::<u64>(), d2 in any::<u32>(), f2 in any::<u8>(),
    ) {
        let s1 = decode_spec(v1, a1, b1, c1, d1, f1);
        let s2 = decode_spec(v2, a2, b2, c2, d2, f2);
        // Distinct specs must never share a canonical name (matrix labels
        // and summary cells key on it).
        if s1 != s2 {
            prop_assert_ne!(s1.name(), s2.name());
        } else {
            prop_assert_eq!(s1.name(), s2.name());
        }
    }
}
