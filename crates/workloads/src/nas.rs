//! NAS Parallel Benchmark communication skeletons.
//!
//! The paper evaluates HydEE on six class-D NAS benchmarks over 256
//! processes (Table I, Figure 6). We reproduce each benchmark's
//! *communication skeleton*: the per-iteration point-to-point/collective
//! pattern of the kernel, with message sizes calibrated so that at
//! `size_scale = 1.0` the total bytes moved match the paper's Table I
//! totals (BT 791 GB, CG 2318 GB, FT 860 GB, LU 337 GB, MG 66 GB,
//! SP 1446 GB). Experiments default to a smaller `size_scale` — byte
//! *ratios* (Table I) are scale-invariant, and `EXPERIMENTS.md` records
//! the scale used.
//!
//! Pattern sources (communication structure only):
//!
//! * **BT/SP** — square process grid, directional sweeps exchanging faces
//!   with torus neighbours (BT adds the two diagonal partners of its
//!   multipartition scheme).
//! * **CG** — rows of a square grid perform recursive-halving exchanges
//!   (`log2(cols)` stages) plus one transpose-partner exchange: exactly
//!   the structure that makes row-clusters log ~19 % (Table I).
//! * **FT** — a global all-to-all transpose each iteration: any
//!   bipartition logs ~50 %, which is why the paper's tool stops at two
//!   clusters.
//! * **LU** — pipelined wavefront sweeps with *small* messages (the
//!   benchmark that stresses per-message overhead) plus per-iteration
//!   halo exchanges.
//! * **MG** — V-cycles on a 3D grid with face exchanges shrinking by
//!   level.

use crate::grid::{Grid2D, Grid3D};
use det_sim::SimDuration;
use mps_sim::collectives;
use mps_sim::{Application, Rank, Tag};
use serde::Serialize;

/// Which NAS benchmark skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum NasBench {
    BT,
    CG,
    FT,
    LU,
    MG,
    SP,
}

impl NasBench {
    pub fn all() -> [NasBench; 6] {
        [
            NasBench::BT,
            NasBench::CG,
            NasBench::FT,
            NasBench::LU,
            NasBench::MG,
            NasBench::SP,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            NasBench::BT => "BT",
            NasBench::CG => "CG",
            NasBench::FT => "FT",
            NasBench::LU => "LU",
            NasBench::MG => "MG",
            NasBench::SP => "SP",
        }
    }

    /// Inverse of [`NasBench::name`] (case-insensitive).
    pub fn from_name(name: &str) -> Option<NasBench> {
        NasBench::all()
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Cluster count the paper's tool chose on 256 processes (Table I).
    pub fn paper_clusters(&self) -> usize {
        match self {
            NasBench::BT => 5,
            NasBench::CG => 16,
            NasBench::FT => 2,
            NasBench::LU => 8,
            NasBench::MG => 4,
            NasBench::SP => 6,
        }
    }

    /// Paper's Table I: % of processes rolled back on a single failure.
    pub fn paper_rollback_pct(&self) -> f64 {
        match self {
            NasBench::BT => 21.78,
            NasBench::CG => 6.25,
            NasBench::FT => 50.0,
            NasBench::LU => 12.5,
            NasBench::MG => 25.0,
            NasBench::SP => 18.56,
        }
    }

    /// Paper's Table I: % of bytes logged under its clustering.
    pub fn paper_logged_pct(&self) -> f64 {
        match self {
            NasBench::BT => 18.09,
            NasBench::CG => 18.98,
            NasBench::FT => 50.19,
            NasBench::LU => 13.26,
            NasBench::MG => 19.63,
            NasBench::SP => 20.04,
        }
    }

    /// Paper's Table I: total data moved in GB (class D, 256 ranks).
    pub fn paper_total_gb(&self) -> f64 {
        match self {
            NasBench::BT => 791.0,
            NasBench::CG => 2318.0,
            NasBench::FT => 860.0,
            NasBench::LU => 337.0,
            NasBench::MG => 66.0,
            NasBench::SP => 1446.0,
        }
    }

    /// Calibrated configuration for `n_ranks = 256`; `size_scale` shrinks
    /// large-message sizes (and compute) for tractable simulation while
    /// preserving byte ratios and message counts.
    pub fn paper_config(&self, size_scale: f64) -> NasConfig {
        let (iterations, compute_ms) = match self {
            NasBench::BT => (40, 250.0),
            NasBench::CG => (75, 150.0),
            NasBench::FT => (25, 300.0),
            NasBench::LU => (50, 260.0),
            NasBench::MG => (20, 60.0),
            NasBench::SP => (100, 110.0),
        };
        NasConfig {
            n_ranks: 256,
            iterations,
            size_scale,
            compute_per_iter: SimDuration::from_us_f64(compute_ms * 1000.0 * size_scale),
        }
    }

    /// Build the skeleton application (lazy per-rank generators).
    pub fn build(&self, cfg: &NasConfig) -> Application {
        match self {
            NasBench::BT => bt(cfg),
            NasBench::CG => cg(cfg),
            NasBench::FT => ft(cfg),
            NasBench::LU => lu(cfg),
            NasBench::MG => mg(cfg),
            NasBench::SP => sp(cfg),
        }
    }

    /// Seed-era materialised build — the equivalence oracle for
    /// [`NasBench::build`] (`crates/workloads/tests/equivalence.rs`).
    pub fn build_unrolled(&self, cfg: &NasConfig) -> Application {
        let f = match self {
            NasBench::BT => bt_iter,
            NasBench::CG => cg_iter,
            NasBench::FT => ft_iter,
            NasBench::LU => lu_iter,
            NasBench::MG => mg_iter,
            NasBench::SP => sp_iter,
        };
        let mut app = Application::new(cfg.n_ranks);
        for _ in 0..cfg.iterations {
            f(cfg, &mut app);
        }
        app
    }
}

/// Build one iteration with `f`, then repeat it lazily `cfg.iterations`
/// times: every NAS skeleton's iterations are op-identical, so its
/// program is one iteration's ops plus a repeat count — memory
/// O(pattern), not O(pattern × iterations).
fn lazily(cfg: &NasConfig, f: fn(&NasConfig, &mut Application)) -> Application {
    let mut one = Application::new(cfg.n_ranks);
    f(cfg, &mut one);
    one.repeated(cfg.iterations)
}

/// Skeleton generation parameters.
#[derive(Debug, Clone)]
pub struct NasConfig {
    pub n_ranks: usize,
    pub iterations: usize,
    /// Multiplies the calibrated (paper-volume) large-message sizes.
    pub size_scale: f64,
    /// Local computation inserted once per iteration per rank.
    pub compute_per_iter: SimDuration,
}

impl NasConfig {
    /// Small configuration for tests.
    pub fn test(n_ranks: usize, iterations: usize) -> Self {
        NasConfig {
            n_ranks,
            iterations,
            size_scale: 1e-4,
            compute_per_iter: SimDuration::from_us(10),
        }
    }
}

fn scaled(base: f64, scale: f64) -> u64 {
    (base * scale).max(1.0).round() as u64
}

/// Symmetric pairwise exchange: both partners send then receive.
pub fn exchange(app: &mut Application, a: Rank, b: Rank, bytes: u64, tag: Tag) {
    app.rank_mut(a).send(b, bytes, tag);
    app.rank_mut(b).send(a, bytes, tag);
    app.rank_mut(a).recv(b, tag);
    app.rank_mut(b).recv(a, tag);
}

/// BT: square torus grid, per iteration three "sweeps" — E/W faces, N/S
/// faces, and the two diagonal multipartition partners. 6 sends per rank
/// per iteration. Calibration: 256 ranks x 6 x 40 iters x 12.87 MB
/// ~ 791 GB.
pub fn bt(cfg: &NasConfig) -> Application {
    lazily(cfg, bt_iter)
}

fn bt_iter(cfg: &NasConfig, app: &mut Application) {
    let g = Grid2D::squarest(cfg.n_ranks);
    let face = scaled(12.87e6, cfg.size_scale);
    for i in 0..cfg.n_ranks {
        app.rank_mut(Rank(i as u32)).compute(cfg.compute_per_iter);
    }
    for dir in 0..6usize {
        let (dr, dc) = [(0, 1), (0, -1), (1, 0), (-1, 0), (1, 1), (-1, -1)][dir];
        let tag = Tag(dir as u32);
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            let to = g.torus_neighbor(me, dr, dc);
            if to != me {
                app.rank_mut(me).send(to, face, tag);
            }
        }
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            let from = g.torus_neighbor(me, -dr, -dc);
            if from != me {
                app.rank_mut(me).recv(from, tag);
            }
        }
    }
}

/// SP: like BT but only the four axis neighbours and more, smaller
/// exchanges. Calibration: 256 x 4 x 100 x 14.12 MB ~ 1446 GB.
pub fn sp(cfg: &NasConfig) -> Application {
    lazily(cfg, sp_iter)
}

fn sp_iter(cfg: &NasConfig, app: &mut Application) {
    let g = Grid2D::squarest(cfg.n_ranks);
    let face = scaled(14.12e6, cfg.size_scale);
    for i in 0..cfg.n_ranks {
        app.rank_mut(Rank(i as u32)).compute(cfg.compute_per_iter);
    }
    for dir in 0..4usize {
        let (dr, dc) = [(0, 1), (0, -1), (1, 0), (-1, 0)][dir];
        let tag = Tag(dir as u32);
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            let to = g.torus_neighbor(me, dr, dc);
            if to != me {
                app.rank_mut(me).send(to, face, tag);
            }
        }
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            let from = g.torus_neighbor(me, -dr, -dc);
            if from != me {
                app.rank_mut(me).recv(from, tag);
            }
        }
    }
}

/// CG: rows of a square grid run `log2(cols)` recursive-halving exchange
/// stages plus one transpose-partner exchange per iteration. With
/// one-cluster-per-row partitioning only the transpose traffic crosses
/// clusters (~19 %, Table I). Calibration: 75 iters x 1264 msgs x
/// 24.45 MB ~ 2318 GB.
pub fn cg(cfg: &NasConfig) -> Application {
    lazily(cfg, cg_iter)
}

fn cg_iter(cfg: &NasConfig, app: &mut Application) {
    let g = Grid2D::squarest(cfg.n_ranks);
    let bytes = scaled(24.45e6, cfg.size_scale);
    let stages = (usize::BITS - 1 - g.cols.leading_zeros()) as usize;
    for i in 0..cfg.n_ranks {
        app.rank_mut(Rank(i as u32)).compute(cfg.compute_per_iter);
    }
    // Row-internal recursive halving (reduction of q = A.p slices).
    for stage in 0..stages {
        let tag = Tag(10 + stage as u32);
        for row in 0..g.rows {
            for col in 0..g.cols {
                let partner_col = col ^ (1 << stage);
                if partner_col < g.cols {
                    let me = g.rank(row, col);
                    let to = g.rank(row, partner_col);
                    app.rank_mut(me).send(to, bytes, tag);
                }
            }
        }
        for row in 0..g.rows {
            for col in 0..g.cols {
                let partner_col = col ^ (1 << stage);
                if partner_col < g.cols {
                    let me = g.rank(row, col);
                    let from = g.rank(row, partner_col);
                    app.rank_mut(me).recv(from, tag);
                }
            }
        }
    }
    // Transpose-partner exchange (inter-row).
    // Only index-transposable positions pair up; the pairing is an
    // involution so sends and receives balance.
    let tag = Tag(20);
    for row in 0..g.rows {
        for col in 0..g.cols {
            if row < g.cols && col < g.rows {
                let me = g.rank(row, col);
                let partner = g.rank(col, row);
                if partner != me {
                    app.rank_mut(me).send(partner, bytes, tag);
                }
            }
        }
    }
    for row in 0..g.rows {
        for col in 0..g.cols {
            if row < g.cols && col < g.rows {
                let me = g.rank(row, col);
                let partner = g.rank(col, row);
                if partner != me {
                    app.rank_mut(me).recv(partner, tag);
                }
            }
        }
    }
}

/// FT: one global all-to-all transpose per iteration — the pattern that
/// defeats clustering (any bipartition cuts half the traffic, hence the
/// paper's 2 clusters / 50 %). Calibration: 25 iters x 256x255 msgs x
/// 512 KiB ~ 860 GB (class D FT's transpose chunk on 256 ranks is
/// exactly 512 KiB).
pub fn ft(cfg: &NasConfig) -> Application {
    lazily(cfg, ft_iter)
}

fn ft_iter(cfg: &NasConfig, app: &mut Application) {
    let bytes = scaled(524_288.0, cfg.size_scale);
    let ranks: Vec<Rank> = (0..cfg.n_ranks as u32).map(Rank).collect();
    for i in 0..cfg.n_ranks {
        app.rank_mut(Rank(i as u32)).compute(cfg.compute_per_iter);
    }
    collectives::alltoall(app, &ranks, bytes, Tag(0));
}

/// LU: pipelined wavefront (SSOR) — the small-message benchmark. Each
/// iteration: `sweeps` lower-triangular waves (recv N,W / send S,E with
/// ~2 KiB pencils, *not* scaled: their smallness is the point) and the
/// mirrored upper waves, plus four larger halo exchanges. Calibration:
/// halo ~6.5 MB x 4 x 50 iters x 256 + small traffic ~ 337 GB.
pub fn lu(cfg: &NasConfig) -> Application {
    lazily(cfg, lu_iter)
}

fn lu_iter(cfg: &NasConfig, app: &mut Application) {
    let g = Grid2D::squarest(cfg.n_ranks);
    let pencil = 2048u64; // fixed: LU's wavefront messages are small
    let halo = scaled(6.5e6, cfg.size_scale);
    let sweeps = 4usize;
    for i in 0..cfg.n_ranks {
        app.rank_mut(Rank(i as u32)).compute(cfg.compute_per_iter);
    }
    for s in 0..sweeps {
        // Lower-triangular wave: flows from (0,0) to (R,C).
        let tag = Tag(30 + s as u32);
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            if let Some(w) = g.neighbor(me, 0, -1) {
                app.rank_mut(me).recv(w, tag);
            }
            if let Some(n) = g.neighbor(me, -1, 0) {
                app.rank_mut(me).recv(n, tag);
            }
            if let Some(e) = g.neighbor(me, 0, 1) {
                app.rank_mut(me).send(e, pencil, tag);
            }
            if let Some(s2) = g.neighbor(me, 1, 0) {
                app.rank_mut(me).send(s2, pencil, tag);
            }
        }
        // Upper-triangular wave: flows back from (R,C) to (0,0).
        let tag = Tag(40 + s as u32);
        for i in (0..cfg.n_ranks).rev() {
            let me = Rank(i as u32);
            if let Some(e) = g.neighbor(me, 0, 1) {
                app.rank_mut(me).recv(e, tag);
            }
            if let Some(s2) = g.neighbor(me, 1, 0) {
                app.rank_mut(me).recv(s2, tag);
            }
            if let Some(w) = g.neighbor(me, 0, -1) {
                app.rank_mut(me).send(w, pencil, tag);
            }
            if let Some(n) = g.neighbor(me, -1, 0) {
                app.rank_mut(me).send(n, pencil, tag);
            }
        }
    }
    // Halo exchange of the four faces.
    let tag = Tag(50);
    for i in 0..cfg.n_ranks {
        let me = Rank(i as u32);
        for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0)] {
            if let Some(nb) = g.neighbor(me, dr, dc) {
                app.rank_mut(me).send(nb, halo, tag);
            }
        }
    }
    for i in 0..cfg.n_ranks {
        let me = Rank(i as u32);
        for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0)] {
            if let Some(nb) = g.neighbor(me, dr, dc) {
                app.rank_mut(me).recv(nb, tag);
            }
        }
    }
}

/// MG: V-cycles on a 3D grid; each level exchanges the six faces with
/// sizes shrinking 4x per level (areas), down then up. Calibration:
/// 20 iters x ~12 exchanges x 256 x geometric(808 KB) ~ 66 GB.
pub fn mg(cfg: &NasConfig) -> Application {
    lazily(cfg, mg_iter)
}

fn mg_iter(cfg: &NasConfig, app: &mut Application) {
    let g = pick_grid3d(cfg.n_ranks);
    let base = scaled(970e3, cfg.size_scale);
    let levels = 4usize;
    let dirs: [(isize, isize, isize); 6] = [
        (1, 0, 0),
        (-1, 0, 0),
        (0, 1, 0),
        (0, -1, 0),
        (0, 0, 1),
        (0, 0, -1),
    ];
    for i in 0..cfg.n_ranks {
        app.rank_mut(Rank(i as u32)).compute(cfg.compute_per_iter);
    }
    // Down the V then back up: level sizes base/4^l.
    let schedule: Vec<usize> = (0..levels).chain((0..levels).rev()).collect();
    for (step, &level) in schedule.iter().enumerate() {
        let bytes = (base >> (2 * level)).max(1);
        let tag = Tag(60 + step as u32);
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            for &(dx, dy, dz) in &dirs {
                if let Some(nb) = g.neighbor(me, dx, dy, dz) {
                    app.rank_mut(me).send(nb, bytes, tag);
                }
            }
        }
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            for &(dx, dy, dz) in &dirs {
                if let Some(nb) = g.neighbor(me, dx, dy, dz) {
                    app.rank_mut(me).recv(nb, tag);
                }
            }
        }
    }
}

/// Factor `n` into the most cubic 3D grid.
fn pick_grid3d(n: usize) -> Grid3D {
    let mut best = (1, 1, n);
    let mut best_score = usize::MAX;
    let mut x = 1;
    while x * x * x <= n {
        if n.is_multiple_of(x) {
            let rest = n / x;
            let mut y = x;
            while y * y <= rest {
                if rest.is_multiple_of(y) {
                    let z = rest / y;
                    let score = z - x; // minimise spread
                    if score < best_score {
                        best_score = score;
                        best = (x, y, z);
                    }
                }
                y += 1;
            }
        }
        x += 1;
    }
    Grid3D::new(best.0, best.1, best.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::{NullProtocol, Sim, SimConfig};

    fn run_ok(app: Application) -> mps_sim::RunReport {
        assert!(app.check_balance().is_ok());
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        assert!(report.completed(), "{:?}", report.status);
        assert!(report.trace.is_consistent());
        report
    }

    #[test]
    fn all_skeletons_run_small() {
        for bench in NasBench::all() {
            let cfg = NasConfig::test(16, 2);
            let app = bench.build(&cfg);
            assert!(
                app.check_balance().is_ok(),
                "{}: {:?}",
                bench.name(),
                app.check_balance()
            );
            let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
            assert!(report.completed(), "{}: {:?}", bench.name(), report.status);
        }
    }

    #[test]
    fn paper_volumes_match_table1() {
        // At size_scale = 1.0 each skeleton must move the paper's total
        // within 10%.
        for bench in NasBench::all() {
            let cfg = bench.paper_config(1.0);
            let app = bench.build(&cfg);
            let total_gb = app.total_bytes() as f64 / 1e9;
            let target = bench.paper_total_gb();
            let err = (total_gb - target).abs() / target;
            assert!(
                err < 0.10,
                "{}: built {total_gb:.0} GB, paper {target:.0} GB",
                bench.name()
            );
        }
    }

    #[test]
    fn ft_is_all_to_all() {
        let cfg = NasConfig::test(8, 1);
        let app = ft(&cfg);
        // 8 ranks, 1 iteration: 8*7 messages.
        assert_eq!(app.total_messages(), 56);
    }

    #[test]
    fn lu_wavefront_pencils_stay_small() {
        let cfg = NasBench::LU.paper_config(0.01);
        let app = lu(&cfg);
        // Wavefront messages must remain 2 KiB regardless of scale: their
        // smallness drives LU's piggyback overhead in Figure 6.
        let has_pencil = (0..app.n_ranks()).any(|r| {
            app.ops(Rank(r as u32))
                .any(|op| matches!(op, mps_sim::Op::Send { bytes, .. } if bytes == 2048))
        });
        assert!(has_pencil);
    }

    #[test]
    fn cg_transpose_crosses_rows() {
        let cfg = NasConfig::test(16, 1);
        let app = cg(&cfg);
        run_ok(app);
    }

    #[test]
    fn skeletons_deterministic() {
        let cfg = NasConfig::test(16, 2);
        let a = run_ok(bt(&cfg));
        let b = run_ok(bt(&cfg));
        assert_eq!(a.digests, b.digests);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn grid3d_factorisation() {
        let g = pick_grid3d(256);
        assert_eq!(g.len(), 256);
        assert!(g.nx >= 4 && g.nz <= 8, "{}x{}x{}", g.nx, g.ny, g.nz);
        let g = pick_grid3d(8);
        assert_eq!((g.nx, g.ny, g.nz), (2, 2, 2));
    }

    #[test]
    fn paper_cluster_metadata() {
        assert_eq!(NasBench::CG.paper_clusters(), 16);
        assert_eq!(NasBench::FT.paper_logged_pct(), 50.19);
        assert_eq!(NasBench::all().len(), 6);
    }
}
