//! Generic 2D halo-exchange stencil.
//!
//! The workhorse long-running workload for the log-memory/GC experiment
//! (X3) and the examples: a non-periodic 2D grid where every rank
//! exchanges its four faces each iteration, with optional wildcard
//! receives (the send-deterministic-with-`MPI_ANY_SOURCE` case §II-C
//! discusses: reception order does not matter because the following sends
//! need all four faces).

use crate::grid::Grid2D;
use det_sim::SimDuration;
use mps_sim::{Application, GenProgram, Op, OpTemplate, Rank, Tag};

/// Stencil parameters.
#[derive(Debug, Clone)]
pub struct StencilConfig {
    pub n_ranks: usize,
    pub iterations: usize,
    /// Bytes per face message.
    pub face_bytes: u64,
    pub compute_per_iter: SimDuration,
    /// Receive faces with wildcard (`MPI_ANY_SOURCE`) receives instead of
    /// source-specific ones.
    pub wildcard_recv: bool,
}

impl Default for StencilConfig {
    fn default() -> Self {
        StencilConfig {
            n_ranks: 16,
            iterations: 10,
            face_bytes: 64 << 10,
            compute_per_iter: SimDuration::from_us(200),
            wildcard_recv: false,
        }
    }
}

/// Build the stencil application as lazy per-rank generators: each rank
/// holds its one-iteration halo pattern plus a tag stride — the
/// per-iteration tag (wildcard safety, DESIGN.md §3) is closed form, so
/// memory is O(ranks × degree) regardless of the horizon.
pub fn stencil_2d(cfg: &StencilConfig) -> Application {
    let g = Grid2D::squarest(cfg.n_ranks);
    Application::generated_with(cfg.n_ranks, |me| {
        let mut body = vec![OpTemplate::Fixed(Op::Compute {
            time: cfg.compute_per_iter,
        })];
        for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0)] {
            if let Some(nb) = g.neighbor(me, dr, dc) {
                body.push(OpTemplate::IterTag {
                    op: Op::Send {
                        dst: nb,
                        bytes: cfg.face_bytes,
                        tag: Tag(0),
                    },
                    stride: 1,
                });
            }
        }
        for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0)] {
            if let Some(nb) = g.neighbor(me, dr, dc) {
                let op = if cfg.wildcard_recv {
                    Op::RecvAny { tag: Tag(0) }
                } else {
                    Op::Recv {
                        src: nb,
                        tag: Tag(0),
                    }
                };
                body.push(OpTemplate::IterTag { op, stride: 1 });
            }
        }
        GenProgram::new(body, cfg.iterations)
    })
}

/// The seed-era materialised builder, kept as the equivalence oracle for
/// [`stencil_2d`] (`crates/workloads/tests/equivalence.rs`).
pub fn stencil_2d_unrolled(cfg: &StencilConfig) -> Application {
    let g = Grid2D::squarest(cfg.n_ranks);
    let mut app = Application::new(cfg.n_ranks);
    for it in 0..cfg.iterations {
        // A per-iteration tag keeps wildcard receives from stealing a
        // later iteration's face (see DESIGN.md on wildcard safety).
        let tag = Tag(it as u32);
        for i in 0..cfg.n_ranks {
            app.rank_mut(Rank(i as u32)).compute(cfg.compute_per_iter);
        }
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0)] {
                if let Some(nb) = g.neighbor(me, dr, dc) {
                    app.rank_mut(me).send(nb, cfg.face_bytes, tag);
                }
            }
        }
        for i in 0..cfg.n_ranks {
            let me = Rank(i as u32);
            for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0)] {
                if let Some(nb) = g.neighbor(me, dr, dc) {
                    if cfg.wildcard_recv {
                        app.rank_mut(me).recv_any(tag);
                    } else {
                        app.rank_mut(me).recv(nb, tag);
                    }
                }
            }
        }
    }
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::{NullProtocol, Sim, SimConfig};

    #[test]
    fn specific_and_wildcard_variants_complete() {
        for wildcard in [false, true] {
            let cfg = StencilConfig {
                wildcard_recv: wildcard,
                ..Default::default()
            };
            let app = stencil_2d(&cfg);
            assert!(app.check_balance().is_ok());
            let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
            assert!(report.completed(), "wildcard={wildcard}");
        }
    }

    #[test]
    fn wildcard_digest_matches_specific_digest() {
        // Send-determinism in action: the receive mode cannot change the
        // final state (commutative fold + same message set).
        let mk = |wildcard| {
            let cfg = StencilConfig {
                wildcard_recv: wildcard,
                iterations: 5,
                ..Default::default()
            };
            Sim::new(stencil_2d(&cfg), SimConfig::default(), NullProtocol).run()
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.digests, b.digests);
    }

    #[test]
    fn message_count_matches_edges() {
        // 4x4 non-periodic grid: 2*(rows*(cols-1) + cols*(rows-1)) = 48
        // directed edges per iteration.
        let cfg = StencilConfig {
            n_ranks: 16,
            iterations: 3,
            ..Default::default()
        };
        let app = stencil_2d(&cfg);
        assert_eq!(app.total_messages(), 48 * 3);
    }
}
