//! Master/worker — the canonical NON-send-deterministic workload.
//!
//! The send-determinism study the paper builds on found master/worker
//! applications to be the only common pattern that violates
//! send-determinism: the master hands the next task to *whichever worker
//! answers first*, so the sequence of messages it sends depends on
//! message-reception order. Run with
//! [`mps_sim::DetMode::OrderSensitive`], this workload demonstrates where
//! HydEE's core assumption is load-bearing: after a failure the trace
//! oracle reports send-determinism violations (re-executed sends differ
//! from the originals).
//!
//! Structurally: the master scatters one seed task per worker, then for
//! each remaining task receives *any* result (wildcard) and would send
//! the next task to that worker. Because our programs are static op
//! streams we approximate the dynamic dispatch with a fixed task count
//! per worker but a wildcard-receiving master — the *payload* order
//! sensitivity (not the partner choice) carries the violation.

use det_sim::SimDuration;
use mps_sim::{Application, GenProgram, Op, OpTemplate, Rank, Tag};

/// Master/worker parameters. Rank 0 is the master.
#[derive(Debug, Clone)]
pub struct MasterWorkerConfig {
    pub n_ranks: usize,
    /// Tasks each worker processes.
    pub tasks_per_worker: usize,
    pub task_bytes: u64,
    pub result_bytes: u64,
    /// Worker compute time per task; staggered per rank so results race.
    pub work_base: SimDuration,
}

impl Default for MasterWorkerConfig {
    fn default() -> Self {
        MasterWorkerConfig {
            n_ranks: 8,
            tasks_per_worker: 4,
            task_bytes: 4 << 10,
            result_bytes: 16 << 10,
            work_base: SimDuration::from_us(100),
        }
    }
}

/// Build the master/worker application as lazy per-rank generators.
///
/// Round `r` uses tags `2r` (tasks) and `2r + 1` (results) — an
/// [`OpTemplate::IterTag`] of stride 2 — and each worker's per-round
/// compute jitter `(w·37 + r·13) mod workers` is an
/// [`OpTemplate::IterCompute`], so the whole dispatch schedule is closed
/// form in the round index.
pub fn master_worker(cfg: &MasterWorkerConfig) -> Application {
    assert!(cfg.n_ranks >= 2, "need a master and at least one worker");
    let master = Rank(0);
    let workers = cfg.n_ranks - 1;
    Application::generated_with(cfg.n_ranks, |me| {
        let mut body = Vec::new();
        if me == master {
            // One task per worker, then results first-come-first-served.
            for w in 1..cfg.n_ranks {
                body.push(OpTemplate::IterTag {
                    op: Op::Send {
                        dst: Rank(w as u32),
                        bytes: cfg.task_bytes,
                        tag: Tag(0),
                    },
                    stride: 2,
                });
            }
            for _ in 1..cfg.n_ranks {
                body.push(OpTemplate::IterTag {
                    op: Op::RecvAny { tag: Tag(1) },
                    stride: 2,
                });
            }
        } else {
            let w = me.idx();
            body.push(OpTemplate::IterTag {
                op: Op::Recv {
                    src: master,
                    tag: Tag(0),
                },
                stride: 2,
            });
            body.push(OpTemplate::IterCompute {
                base: cfg.work_base,
                offset: (w * 37) as u64,
                stride: 13,
                modulus: workers as u64,
            });
            body.push(OpTemplate::IterTag {
                op: Op::Send {
                    dst: master,
                    bytes: cfg.result_bytes,
                    tag: Tag(1),
                },
                stride: 2,
            });
        }
        GenProgram::new(body, cfg.tasks_per_worker)
    })
}

/// The seed-era materialised builder, kept as the equivalence oracle for
/// [`master_worker`].
pub fn master_worker_unrolled(cfg: &MasterWorkerConfig) -> Application {
    assert!(cfg.n_ranks >= 2, "need a master and at least one worker");
    let master = Rank(0);
    let workers = cfg.n_ranks - 1;
    let mut app = Application::new(cfg.n_ranks);
    for round in 0..cfg.tasks_per_worker {
        let task_tag = Tag(2 * round as u32);
        let result_tag = Tag(2 * round as u32 + 1);
        // Master sends one task per worker...
        for w in 1..cfg.n_ranks {
            app.rank_mut(master)
                .send(Rank(w as u32), cfg.task_bytes, task_tag);
        }
        // ...workers compute (staggered so completion order races)...
        for w in 1..cfg.n_ranks {
            let jitter = ((w * 37 + round * 13) % workers) as u64;
            app.rank_mut(Rank(w as u32))
                .recv(master, task_tag)
                .compute(cfg.work_base * (1 + jitter))
                .send(master, cfg.result_bytes, result_tag);
        }
        // ...master collects results first-come-first-served.
        for _ in 1..cfg.n_ranks {
            app.rank_mut(master).recv_any(result_tag);
        }
    }
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::{DetMode, NullProtocol, Sim, SimConfig};

    #[test]
    fn completes_in_both_determinism_modes() {
        for mode in [DetMode::SendDeterministic, DetMode::OrderSensitive] {
            let app = master_worker(&MasterWorkerConfig::default());
            assert!(app.check_balance().is_ok());
            let config = SimConfig {
                det_mode: mode,
                ..Default::default()
            };
            let report = Sim::new(app, config, NullProtocol).run();
            assert!(report.completed(), "mode={mode:?}");
        }
    }

    #[test]
    fn worker_compute_is_staggered() {
        let app = master_worker(&MasterWorkerConfig::default());
        // Distinct compute times across workers in round 0.
        let computes: Vec<_> = (1..8u32)
            .map(|w| {
                app.ops(Rank(w))
                    .find_map(|op| match op {
                        mps_sim::Op::Compute { time } => Some(time),
                        _ => None,
                    })
                    .unwrap()
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = computes.iter().collect();
        assert!(distinct.len() > 1, "workers must race");
    }

    #[test]
    #[should_panic(expected = "need a master")]
    fn requires_two_ranks() {
        let _ = master_worker(&MasterWorkerConfig {
            n_ranks: 1,
            ..Default::default()
        });
    }
}
