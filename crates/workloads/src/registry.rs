//! Named workload registry — the declarative face of this crate.
//!
//! Every workload the evaluation uses is describable as a small value
//! ([`WorkloadSpec`]) with a canonical name, parseable back from that
//! name. The `scenario` crate builds its experiment matrices from these
//! specs; the `sweep` binary accepts the same names on the command line.
//!
//! Name grammar (`parse`):
//!
//! ```text
//! nas:<BT|CG|FT|LU|MG|SP>[:scale=<f64>][:iters=<n>]
//! netpipe:<bytes>[:rounds=<n>]
//! stencil:<n_ranks>x<iterations>[:face=<bytes>][:wildcard]
//! master_worker:<n_ranks>[:tasks=<n>]
//! ```

use crate::master_worker::{master_worker, MasterWorkerConfig};
use crate::nas::{NasBench, NasConfig};
use crate::netpipe::ping_pong;
use crate::stencil::{stencil_2d, StencilConfig};
use det_sim::SimDuration;
use mps_sim::Application;
use serde::Serialize;

/// A declarative, buildable description of one workload instance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum WorkloadSpec {
    /// A NAS class-D skeleton at `scale` of the paper's message volumes.
    /// `iterations: None` uses the paper's per-bench iteration count.
    Nas {
        bench: NasBench,
        scale: f64,
        iterations: Option<usize>,
    },
    /// Two-rank ping-pong of `bytes` messages, `rounds` round trips.
    NetPipe { rounds: usize, bytes: u64 },
    /// 2D halo-exchange stencil.
    Stencil {
        n_ranks: usize,
        iterations: usize,
        face_bytes: u64,
        compute_us: u64,
        wildcard_recv: bool,
    },
    /// Master/worker (the canonical non-send-deterministic pattern).
    MasterWorker {
        n_ranks: usize,
        tasks_per_worker: usize,
    },
}

impl WorkloadSpec {
    /// Canonical registry name; `parse` round-trips it.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Nas {
                bench,
                scale,
                iterations,
            } => {
                let mut s = format!("nas:{}", bench.name());
                if *scale != 1.0 {
                    s.push_str(&format!(":scale={scale}"));
                }
                if let Some(it) = iterations {
                    s.push_str(&format!(":iters={it}"));
                }
                s
            }
            WorkloadSpec::NetPipe { rounds, bytes } => {
                if *rounds == 20 {
                    format!("netpipe:{bytes}")
                } else {
                    format!("netpipe:{bytes}:rounds={rounds}")
                }
            }
            WorkloadSpec::Stencil {
                n_ranks,
                iterations,
                face_bytes,
                compute_us,
                wildcard_recv,
            } => {
                let mut s = format!(
                    "stencil:{n_ranks}x{iterations}:face={face_bytes}:compute_us={compute_us}"
                );
                if *wildcard_recv {
                    s.push_str(":wildcard");
                }
                s
            }
            WorkloadSpec::MasterWorker {
                n_ranks,
                tasks_per_worker,
            } => format!("master_worker:{n_ranks}:tasks={tasks_per_worker}"),
        }
    }

    /// Number of ranks the built application will have.
    pub fn n_ranks(&self) -> usize {
        match self {
            WorkloadSpec::Nas { bench, scale, .. } => {
                let _ = (bench, scale);
                256
            }
            WorkloadSpec::NetPipe { .. } => 2,
            WorkloadSpec::Stencil { n_ranks, .. } => *n_ranks,
            WorkloadSpec::MasterWorker { n_ranks, .. } => *n_ranks,
        }
    }

    /// Build the application this spec describes (lazy generators).
    pub fn build(&self) -> Application {
        self.build_with(NasBench::build, ping_pong, stencil_2d, master_worker)
    }

    /// Build the seed-era materialised (`Vec<Op>`) form of this spec's
    /// application — the equivalence oracle for [`WorkloadSpec::build`]
    /// (`tests/equivalence.rs` checks op-for-op identity).
    pub fn build_unrolled(&self) -> Application {
        self.build_with(
            NasBench::build_unrolled,
            crate::netpipe::ping_pong_unrolled,
            crate::stencil::stencil_2d_unrolled,
            crate::master_worker::master_worker_unrolled,
        )
    }

    /// Shared spec→config assembly for both build paths: only the final
    /// constructors differ, so the generator and its oracle can never
    /// drift in how spec fields map to workload configs.
    fn build_with(
        &self,
        nas: fn(&NasBench, &NasConfig) -> Application,
        netpipe: fn(usize, u64) -> Application,
        stencil: fn(&StencilConfig) -> Application,
        mw: fn(&MasterWorkerConfig) -> Application,
    ) -> Application {
        match self {
            WorkloadSpec::Nas {
                bench,
                scale,
                iterations,
            } => {
                let mut cfg: NasConfig = bench.paper_config(*scale);
                if let Some(it) = iterations {
                    cfg.iterations = *it;
                }
                nas(bench, &cfg)
            }
            WorkloadSpec::NetPipe { rounds, bytes } => netpipe(*rounds, *bytes),
            WorkloadSpec::Stencil {
                n_ranks,
                iterations,
                face_bytes,
                compute_us,
                wildcard_recv,
            } => stencil(&StencilConfig {
                n_ranks: *n_ranks,
                iterations: *iterations,
                face_bytes: *face_bytes,
                compute_per_iter: SimDuration::from_us(*compute_us),
                wildcard_recv: *wildcard_recv,
            }),
            WorkloadSpec::MasterWorker {
                n_ranks,
                tasks_per_worker,
            } => mw(&MasterWorkerConfig {
                n_ranks: *n_ranks,
                tasks_per_worker: *tasks_per_worker,
                ..Default::default()
            }),
        }
    }

    /// Parse a registry name (see module docs for the grammar).
    pub fn parse(s: &str) -> Result<WorkloadSpec, String> {
        let mut parts = s.split(':');
        let family = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        match family {
            "nas" => {
                let bench_name = rest
                    .first()
                    .ok_or_else(|| format!("`{s}`: nas needs a benchmark name"))?;
                let bench = NasBench::from_name(bench_name)
                    .ok_or_else(|| format!("`{s}`: unknown NAS benchmark `{bench_name}`"))?;
                let mut scale = 1.0f64;
                let mut iterations = None;
                for opt in &rest[1..] {
                    if let Some(v) = opt.strip_prefix("scale=") {
                        scale = v.parse().map_err(|_| format!("`{s}`: bad scale `{v}`"))?;
                    } else if let Some(v) = opt.strip_prefix("iters=") {
                        iterations =
                            Some(v.parse().map_err(|_| format!("`{s}`: bad iters `{v}`"))?);
                    } else {
                        return Err(format!("`{s}`: unknown option `{opt}`"));
                    }
                }
                Ok(WorkloadSpec::Nas {
                    bench,
                    scale,
                    iterations,
                })
            }
            "netpipe" => {
                let bytes = rest
                    .first()
                    .ok_or_else(|| format!("`{s}`: netpipe needs a message size"))?
                    .parse()
                    .map_err(|_| format!("`{s}`: bad message size"))?;
                let mut rounds = 20usize;
                for opt in &rest[1..] {
                    if let Some(v) = opt.strip_prefix("rounds=") {
                        rounds = v.parse().map_err(|_| format!("`{s}`: bad rounds `{v}`"))?;
                    } else {
                        return Err(format!("`{s}`: unknown option `{opt}`"));
                    }
                }
                Ok(WorkloadSpec::NetPipe { rounds, bytes })
            }
            "stencil" => {
                let dims = rest
                    .first()
                    .ok_or_else(|| format!("`{s}`: stencil needs <ranks>x<iters>"))?;
                let (r, i) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("`{s}`: stencil needs <ranks>x<iters>"))?;
                let n_ranks = r.parse().map_err(|_| format!("`{s}`: bad ranks `{r}`"))?;
                let iterations = i.parse().map_err(|_| format!("`{s}`: bad iters `{i}`"))?;
                let mut spec = WorkloadSpec::Stencil {
                    n_ranks,
                    iterations,
                    face_bytes: 64 << 10,
                    compute_us: 200,
                    wildcard_recv: false,
                };
                for opt in &rest[1..] {
                    let WorkloadSpec::Stencil {
                        face_bytes,
                        compute_us,
                        wildcard_recv,
                        ..
                    } = &mut spec
                    else {
                        unreachable!()
                    };
                    if let Some(v) = opt.strip_prefix("face=") {
                        *face_bytes = v
                            .parse()
                            .map_err(|_| format!("`{s}`: bad face bytes `{v}`"))?;
                    } else if let Some(v) = opt.strip_prefix("compute_us=") {
                        *compute_us = v
                            .parse()
                            .map_err(|_| format!("`{s}`: bad compute_us `{v}`"))?;
                    } else if *opt == "wildcard" {
                        *wildcard_recv = true;
                    } else {
                        return Err(format!("`{s}`: unknown option `{opt}`"));
                    }
                }
                Ok(spec)
            }
            "master_worker" => {
                let n_ranks = rest
                    .first()
                    .ok_or_else(|| format!("`{s}`: master_worker needs a rank count"))?
                    .parse()
                    .map_err(|_| format!("`{s}`: bad rank count"))?;
                let mut tasks_per_worker = 4usize;
                for opt in &rest[1..] {
                    if let Some(v) = opt.strip_prefix("tasks=") {
                        tasks_per_worker =
                            v.parse().map_err(|_| format!("`{s}`: bad tasks `{v}`"))?;
                    } else {
                        return Err(format!("`{s}`: unknown option `{opt}`"));
                    }
                }
                Ok(WorkloadSpec::MasterWorker {
                    n_ranks,
                    tasks_per_worker,
                })
            }
            other => Err(format!(
                "unknown workload family `{other}` (known: {})",
                FAMILIES.join(", ")
            )),
        }
    }
}

/// Workload families the registry knows.
pub const FAMILIES: [&str; 4] = ["nas", "netpipe", "stencil", "master_worker"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for name in [
            "nas:CG",
            "nas:LU:scale=0.015625:iters=4",
            "netpipe:1024",
            "netpipe:8192:rounds=5",
            "stencil:16x10:face=65536:compute_us=200",
            "stencil:64x400:face=262144:compute_us=500:wildcard",
            "master_worker:8:tasks=4",
        ] {
            let spec = WorkloadSpec::parse(name).unwrap();
            assert_eq!(WorkloadSpec::parse(&spec.name()).unwrap(), spec, "{name}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WorkloadSpec::parse("quux:1").is_err());
        assert!(WorkloadSpec::parse("nas:ZZ").is_err());
        assert!(WorkloadSpec::parse("netpipe:notasize").is_err());
        assert!(WorkloadSpec::parse("stencil:16").is_err());
    }

    #[test]
    fn specs_build_runnable_apps() {
        let spec = WorkloadSpec::parse("stencil:9x2:face=1024:compute_us=10").unwrap();
        let app = spec.build();
        assert_eq!(app.n_ranks(), 9);
        assert!(app.check_balance().is_ok());
        assert_eq!(spec.n_ranks(), 9);
    }

    #[test]
    fn nas_spec_overrides_iterations() {
        let spec = WorkloadSpec::Nas {
            bench: NasBench::MG,
            scale: 1e-4,
            iterations: Some(2),
        };
        let app = spec.build();
        assert_eq!(app.n_ranks(), 256);
        assert!(app.check_balance().is_ok());
    }
}
