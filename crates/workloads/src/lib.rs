//! # workloads — applications for the HydEE evaluation
//!
//! Generators for every workload the paper measures plus supporting
//! patterns:
//!
//! * [`nas`] — communication skeletons of the six class-D NAS benchmarks
//!   (BT, CG, FT, LU, MG, SP) calibrated to Table I's byte volumes;
//! * [`netpipe`] — the ping-pong of Figure 5 with NetPIPE's size ladder;
//! * [`stencil`] — a generic 2D halo exchange (long-running GC / log
//!   growth experiments, wildcard-receive demonstrations);
//! * [`mod@master_worker`] — the canonical NON-send-deterministic pattern,
//!   used to show where HydEE's assumption is load-bearing.

pub mod grid;
pub mod master_worker;
pub mod nas;
pub mod netpipe;
pub mod registry;
pub mod stencil;

pub use grid::{Grid2D, Grid3D};
pub use master_worker::{master_worker, master_worker_unrolled, MasterWorkerConfig};
pub use nas::{NasBench, NasConfig};
pub use netpipe::{ping_pong, ping_pong_unrolled, size_ladder};
pub use registry::WorkloadSpec;
pub use stencil::{stencil_2d, stencil_2d_unrolled, StencilConfig};
