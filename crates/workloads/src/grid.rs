//! Process-grid helpers shared by the NAS skeletons.

use mps_sim::Rank;

/// A 2D logical process grid (row-major).
#[derive(Debug, Clone, Copy)]
pub struct Grid2D {
    pub rows: usize,
    pub cols: usize,
}

impl Grid2D {
    pub fn new(rows: usize, cols: usize) -> Self {
        Grid2D { rows, cols }
    }

    /// Squarest factorisation of `n` (rows <= cols).
    pub fn squarest(n: usize) -> Self {
        let mut best = (1, n);
        let mut r = 1;
        while r * r <= n {
            if n.is_multiple_of(r) {
                best = (r, n / r);
            }
            r += 1;
        }
        Grid2D {
            rows: best.0,
            cols: best.1,
        }
    }

    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn rank(&self, row: usize, col: usize) -> Rank {
        debug_assert!(row < self.rows && col < self.cols);
        Rank((row * self.cols + col) as u32)
    }

    pub fn coords(&self, r: Rank) -> (usize, usize) {
        let i = r.idx();
        (i / self.cols, i % self.cols)
    }

    /// Torus neighbour in `(drow, dcol)` direction.
    pub fn torus_neighbor(&self, r: Rank, drow: isize, dcol: isize) -> Rank {
        let (row, col) = self.coords(r);
        let nr = (row as isize + drow).rem_euclid(self.rows as isize) as usize;
        let nc = (col as isize + dcol).rem_euclid(self.cols as isize) as usize;
        self.rank(nr, nc)
    }

    /// Non-periodic neighbour, `None` at the boundary.
    pub fn neighbor(&self, r: Rank, drow: isize, dcol: isize) -> Option<Rank> {
        let (row, col) = self.coords(r);
        let nr = row as isize + drow;
        let nc = col as isize + dcol;
        if nr < 0 || nc < 0 || nr >= self.rows as isize || nc >= self.cols as isize {
            None
        } else {
            Some(self.rank(nr as usize, nc as usize))
        }
    }

    /// All ranks of one row.
    pub fn row_ranks(&self, row: usize) -> Vec<Rank> {
        (0..self.cols).map(|c| self.rank(row, c)).collect()
    }

    /// All ranks of one column.
    pub fn col_ranks(&self, col: usize) -> Vec<Rank> {
        (0..self.rows).map(|r| self.rank(r, col)).collect()
    }
}

/// A 3D logical process grid (x fastest).
#[derive(Debug, Clone, Copy)]
pub struct Grid3D {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Grid3D {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Grid3D { nx, ny, nz }
    }

    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn rank(&self, x: usize, y: usize, z: usize) -> Rank {
        Rank((z * self.ny * self.nx + y * self.nx + x) as u32)
    }

    pub fn coords(&self, r: Rank) -> (usize, usize, usize) {
        let i = r.idx();
        let x = i % self.nx;
        let y = (i / self.nx) % self.ny;
        let z = i / (self.nx * self.ny);
        (x, y, z)
    }

    /// Non-periodic neighbour along one axis.
    pub fn neighbor(&self, r: Rank, dx: isize, dy: isize, dz: isize) -> Option<Rank> {
        let (x, y, z) = self.coords(r);
        let nx = x as isize + dx;
        let ny = y as isize + dy;
        let nz = z as isize + dz;
        if nx < 0
            || ny < 0
            || nz < 0
            || nx >= self.nx as isize
            || ny >= self.ny as isize
            || nz >= self.nz as isize
        {
            None
        } else {
            Some(self.rank(nx as usize, ny as usize, nz as usize))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squarest_factorisations() {
        let g = Grid2D::squarest(256);
        assert_eq!((g.rows, g.cols), (16, 16));
        let g = Grid2D::squarest(12);
        assert_eq!((g.rows, g.cols), (3, 4));
        let g = Grid2D::squarest(7);
        assert_eq!((g.rows, g.cols), (1, 7));
    }

    #[test]
    fn coords_roundtrip_2d() {
        let g = Grid2D::new(4, 8);
        for i in 0..32u32 {
            let (r, c) = g.coords(Rank(i));
            assert_eq!(g.rank(r, c), Rank(i));
        }
    }

    #[test]
    fn torus_wraps() {
        let g = Grid2D::new(4, 4);
        assert_eq!(g.torus_neighbor(Rank(0), -1, 0), g.rank(3, 0));
        assert_eq!(g.torus_neighbor(Rank(3), 0, 1), g.rank(0, 0));
    }

    #[test]
    fn boundary_is_none() {
        let g = Grid2D::new(4, 4);
        assert_eq!(g.neighbor(Rank(0), -1, 0), None);
        assert_eq!(g.neighbor(Rank(0), 1, 0), Some(g.rank(1, 0)));
    }

    #[test]
    fn coords_roundtrip_3d() {
        let g = Grid3D::new(4, 8, 8);
        assert_eq!(g.len(), 256);
        for i in (0..256u32).step_by(7) {
            let (x, y, z) = g.coords(Rank(i));
            assert_eq!(g.rank(x, y, z), Rank(i));
        }
    }

    #[test]
    fn rows_and_cols() {
        let g = Grid2D::new(3, 4);
        assert_eq!(g.row_ranks(1).len(), 4);
        assert_eq!(g.col_ranks(2).len(), 3);
        assert_eq!(g.row_ranks(0)[0], Rank(0));
    }
}
