//! NetPIPE — the ping-pong micro-benchmark of the paper's Figure 5.
//!
//! Two ranks bounce a message of a given size back and forth; latency is
//! half the measured round-trip, bandwidth is `size / latency`. The size
//! ladder follows NetPIPE's classic progression (powers of two plus
//! perturbation points around each, which is what exposes the MX plateau
//! edges that HydEE's piggybacking trips over).

use mps_sim::{Application, GenProgram, Op, Rank, Tag};

/// Build a ping-pong application: `rounds` round trips of `bytes`.
/// Each rank is a two-op body repeated lazily per round.
pub fn ping_pong(rounds: usize, bytes: u64) -> Application {
    Application::generated_with(2, |me| {
        let send = Op::Send {
            dst: Rank(1 - me.0),
            bytes,
            tag: Tag(0),
        };
        let recv = Op::Recv {
            src: Rank(1 - me.0),
            tag: Tag(0),
        };
        let body = if me == Rank(0) {
            vec![send, recv]
        } else {
            vec![recv, send]
        };
        GenProgram::from_ops(body, rounds)
    })
}

/// The seed-era materialised builder, kept as the equivalence oracle for
/// [`ping_pong`].
pub fn ping_pong_unrolled(rounds: usize, bytes: u64) -> Application {
    let mut app = Application::new(2);
    for _ in 0..rounds {
        app.rank_mut(Rank(0)).send(Rank(1), bytes, Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        app.rank_mut(Rank(1)).send(Rank(0), bytes, Tag(0));
        app.rank_mut(Rank(0)).recv(Rank(1), Tag(0));
    }
    app
}

/// NetPIPE-style message-size ladder from 1 B to `max` (inclusive-ish):
/// for each power of two `p`, the sizes `p-1`, `p`, `p+1` (deduplicated,
/// sorted). The perturbation points land on either side of MX packet
/// plateaus, which is where Figure 5's peaks live.
pub fn size_ladder(max: u64) -> Vec<u64> {
    let mut sizes = vec![1u64, 2, 3];
    let mut p = 4u64;
    while p <= max {
        sizes.push(p - 1);
        sizes.push(p);
        if p < max {
            sizes.push(p + 1);
        }
        p *= 2;
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::{NullProtocol, Sim, SimConfig};

    #[test]
    fn ping_pong_round_trip_count() {
        let app = ping_pong(7, 100);
        assert_eq!(app.total_messages(), 14);
        assert!(app.check_balance().is_ok());
        let report = Sim::new(app, SimConfig::default(), NullProtocol).run();
        assert!(report.completed());
    }

    #[test]
    fn ladder_is_sorted_unique_and_brackets_powers() {
        let l = size_ladder(1 << 20);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert!(l.contains(&31) && l.contains(&32) && l.contains(&33));
        assert!(l.contains(&1023) && l.contains(&1024) && l.contains(&1025));
        assert_eq!(*l.first().unwrap(), 1);
        assert!(*l.last().unwrap() <= (1 << 20) + 1);
    }

    #[test]
    fn ladder_small_max() {
        assert_eq!(size_ladder(4), vec![1, 2, 3, 4]);
    }
}
