//! Criterion micro-benchmarks of the hot paths: event queue, RNG, inbox
//! matching, partitioner, and end-to-end simulation throughput with and
//! without the HydEE protocol (the simulator-side analogue of the paper's
//! "almost no overhead" claim).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use det_sim::{DetRng, Scheduler, SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{Application, ClusterMap, NullProtocol, Rank, Sim, SimConfig, Tag};
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut s: Scheduler<u64> = Scheduler::new();
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                t += SimDuration::from_ns((i % 7) + 1);
                s.schedule(t, i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = s.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_scheduler_with_cancels(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(10_000));
    // The retract-in-flight pattern: every other event is cancelled before
    // it fires (stale-entry skip + slot recycling).
    g.bench_function("schedule_cancel_pop_10k", |b| {
        b.iter(|| {
            let mut s: Scheduler<u64> = Scheduler::new();
            let mut t = SimTime::ZERO;
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                t += SimDuration::from_ns((i % 7) + 1);
                let h = s.schedule(t, i);
                if i % 2 == 0 {
                    s.cancel(h);
                }
            }
            while let Some((_, e)) = s.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_inbox(c: &mut Criterion) {
    use mps_sim::{Inbox, Message, PbMeta};
    let msg = |src: u32, tag: u32, seq: u64| Message {
        src: Rank(src),
        dst: Rank(0),
        tag: mps_sim::Tag(tag),
        bytes: 1024,
        payload: seq,
        channel_seq: seq,
        meta: PbMeta::default(),
        replayed: false,
    };
    let mut g = c.benchmark_group("inbox");
    g.throughput(Throughput::Elements(8_192));
    // Steady-state specific matching: 32 sources, FIFO depth ~8.
    g.bench_function("push_take_specific_8k", |b| {
        b.iter(|| {
            let mut ib = Inbox::new();
            let mut seq = 0u64;
            for round in 0..32u64 {
                for src in 0..32u32 {
                    for _ in 0..8 {
                        seq += 1;
                        ib.push(msg(src, round as u32, seq), seq, SimDuration::ZERO);
                    }
                }
                for src in 0..32u32 {
                    for _ in 0..8 {
                        black_box(ib.take_specific(Rank(src), mps_sim::Tag(round as u32)));
                    }
                }
            }
            black_box(ib.len())
        })
    });
    // Wildcard matching must scan only the channels of its tag.
    g.bench_function("push_take_any_8k", |b| {
        b.iter(|| {
            let mut ib = Inbox::new();
            let mut seq = 0u64;
            for round in 0..32u64 {
                for src in 0..32u32 {
                    for _ in 0..8 {
                        seq += 1;
                        ib.push(msg(src, round as u32, seq), seq, SimDuration::ZERO);
                    }
                }
                for _ in 0..256 {
                    black_box(ib.take_any(mps_sim::Tag(round as u32)));
                }
            }
            black_box(ib.len())
        })
    });
    g.finish();
}

fn bench_trace_digest(c: &mut Criterion) {
    use mps_sim::{Message, PbMeta, Trace};
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(40_000));
    // 16 channels, 2500 sends each: the dense interning path, plus a
    // replay sweep over every identity (the recovery-oracle path).
    g.bench_function("record_40k_replay_40k", |b| {
        b.iter(|| {
            let mut t = Trace::new(16);
            for seq in 1..=2_500u64 {
                for src in 0..4u32 {
                    for dst in 4..8u32 {
                        let m = Message {
                            src: Rank(src),
                            dst: Rank(dst),
                            tag: Tag(0),
                            bytes: 256,
                            payload: seq ^ (src as u64) << 32,
                            channel_seq: seq,
                            meta: PbMeta::default(),
                            replayed: false,
                        };
                        t.record_send(&m);
                    }
                }
            }
            for seq in 1..=2_500u64 {
                for src in 0..4u32 {
                    for dst in 4..8u32 {
                        let m = Message {
                            src: Rank(src),
                            dst: Rank(dst),
                            tag: Tag(0),
                            bytes: 256,
                            payload: seq ^ (src as u64) << 32,
                            channel_seq: seq,
                            meta: PbMeta::default(),
                            replayed: true,
                        };
                        t.check_replay(&m);
                    }
                }
            }
            assert!(t.is_consistent());
            black_box(t.distinct_messages())
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("next_u64_1k", |b| {
        let mut r = DetRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(r.next_u64());
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    use clustering::{partition, CommGraph, PartitionConfig};
    use workloads::{NasBench, NasConfig};
    let app = NasBench::CG.build(&NasConfig::test(256, 2));
    let graph = CommGraph::from_application(&app);
    c.bench_function("partition_cg_256_k16", |b| {
        b.iter(|| black_box(partition(&graph, &PartitionConfig::balanced(16, 256))))
    });
}

fn ping_pong_app(rounds: usize) -> Application {
    let mut app = Application::new(2);
    for _ in 0..rounds {
        app.rank_mut(Rank(0)).send(Rank(1), 1024, Tag(0));
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
        app.rank_mut(Rank(1)).send(Rank(0), 1024, Tag(0));
        app.rank_mut(Rank(0)).recv(Rank(1), Tag(0));
    }
    app
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(2_000)); // messages per iteration
    g.bench_function("ping_pong_1k_rounds_native", |b| {
        b.iter_batched(
            || ping_pong_app(1000),
            |app| black_box(Sim::new(app, SimConfig::default(), NullProtocol).run()),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("ping_pong_1k_rounds_hydee", |b| {
        b.iter_batched(
            || ping_pong_app(1000),
            |app| {
                let hydee = Hydee::new(HydeeConfig::new(ClusterMap::per_rank(2)));
                black_box(Sim::new(app, SimConfig::default(), hydee).run())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_stencil_protocol_overhead(c: &mut Criterion) {
    use workloads::{stencil_2d, StencilConfig};
    let cfg = StencilConfig {
        n_ranks: 16,
        iterations: 50,
        face_bytes: 8 << 10,
        compute_per_iter: SimDuration::from_us(50),
        wildcard_recv: false,
    };
    let mut g = c.benchmark_group("stencil16x50");
    g.bench_function("native", |b| {
        b.iter_batched(
            || stencil_2d(&cfg),
            |app| black_box(Sim::new(app, SimConfig::default(), NullProtocol).run()),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("hydee_4clusters", |b| {
        b.iter_batched(
            || stencil_2d(&cfg),
            |app| {
                let hydee = Hydee::new(HydeeConfig::new(ClusterMap::blocks(16, 4)));
                black_box(Sim::new(app, SimConfig::default(), hydee).run())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_scheduler_with_cancels,
    bench_inbox,
    bench_trace_digest,
    bench_rng,
    bench_partitioner,
    bench_sim_throughput,
    bench_stencil_protocol_overhead
);
criterion_main!(benches);
