//! **X2 — ablation: the cost of event logging** (§VI).
//!
//! HydEE's distinguishing claim is that it needs *no* determinant logging.
//! This harness quantifies what the claim is worth: each NAS skeleton runs
//! under
//!
//! * HydEE (Table-I clustering, no event logging) — the paper's protocol;
//! * the same protocol *plus* reliable determinant writes on every
//!   delivery — an \[8\]/\[22\]-style hybrid;
//! * full message logging plus determinants — classic pessimistic
//!   logging.
//!
//! All 24 simulations (6 benches × 4 configurations) run as one parallel
//! scenario batch.
//!
//! The experiment shape lives in `suites/ablation.suite` (embedded at
//! compile time; `sweep --suite suites/ablation.suite` runs the same
//! cells): `native`/`full_det` sweep all six kernels, and per-kernel
//! `hydee_<kernel>`/`det_<kernel>` scenarios carry the Table-I cluster
//! counts.
//!
//! Run: `cargo run -p bench --release --bin ablation_event_logging`

use bench::{Artefact, SuiteRun, Table};
use serde::Serialize;
use workloads::NasBench;

const SUITE: &str = include_str!("../../../../suites/ablation.suite");

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    hydee_norm: f64,
    hybrid_event_logging_norm: f64,
    full_logging_events_norm: f64,
    event_logging_penalty_pct: f64,
}

fn main() {
    let mut artefact = Artefact::begin("ablation_event_logging");
    println!("X2: event-logging ablation — normalized time (native = 1.0)");
    println!();

    // Per bench: native / HydEE / HydEE+determinants / full logging
    // +determinants.
    let run = SuiteRun::execute(SUITE, "suites/ablation.suite");
    assert_eq!(run.records.len(), 4 * NasBench::all().len());
    artefact.record_runs(&run.records);
    let (natives, full_dets) = (run.scenario("native"), run.scenario("full_det"));

    let mut table = Table::new(&[
        "bench",
        "HydEE",
        "hybrid + determinants",
        "full logging + determinants",
        "determinant penalty",
    ]);
    for (i, bench) in NasBench::all().into_iter().enumerate() {
        let key = bench.name().to_lowercase();
        let [native, hydee, hybrid, full] = [
            natives[i],
            run.one(&format!("hydee_{key}")),
            run.one(&format!("det_{key}")),
            full_dets[i],
        ];
        for r in [native, hydee, hybrid, full] {
            assert!(r.completed, "{}: {}", r.scenario, r.status);
            assert!(
                r.workload.starts_with(&format!("nas:{}", bench.name())),
                "suite kernel order drifted: wanted {}, got {}",
                bench.name(),
                r.workload
            );
        }
        // Normalize on the exact integer-picosecond makespans (the
        // determinism golden values) rather than their pre-rounded
        // floating-point mirrors; the ratio is taken once, here.
        let norm = |r: &scenario::RunRecord| r.makespan_ps as f64 / native.makespan_ps as f64;
        let row = Row {
            bench: bench.name(),
            hydee_norm: norm(hydee),
            hybrid_event_logging_norm: norm(hybrid),
            full_logging_events_norm: norm(full),
            event_logging_penalty_pct: 100.0 * (norm(hybrid) - norm(hydee)),
        };
        table.row(&[
            bench.name().to_string(),
            format!("{:.4}", row.hydee_norm),
            format!("{:.4}", row.hybrid_event_logging_norm),
            format!("{:.4}", row.full_logging_events_norm),
            format!("{:+.2}%", row.event_logging_penalty_pct),
        ]);
        artefact.row(&row);
    }
    table.print();
    println!();
    println!("Expected: the determinant column strictly above HydEE on every bench —");
    println!("the overhead HydEE's send-determinism argument eliminates.");
}
