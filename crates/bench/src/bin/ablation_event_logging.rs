//! **X2 — ablation: the cost of event logging** (§VI).
//!
//! HydEE's distinguishing claim is that it needs *no* determinant logging.
//! This harness quantifies what the claim is worth: each NAS skeleton runs
//! under
//!
//! * HydEE (Table-I clustering, no event logging) — the paper's protocol;
//! * the same protocol *plus* reliable determinant writes on every
//!   delivery — an \[8\]/\[22\]-style hybrid;
//! * full message logging plus determinants — classic pessimistic
//!   logging.
//!
//! All 24 simulations (6 benches × 4 configurations) run as one parallel
//! scenario batch.
//!
//! Run: `cargo run -p bench --release --bin ablation_event_logging`

use bench::{Artefact, Table};
use scenario::{ClusterStrategy, Executor, ProtocolSpec, ScenarioSpec};
use serde::Serialize;
use workloads::{NasBench, WorkloadSpec};

const SCALE: f64 = 1.0 / 64.0;

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    hydee_norm: f64,
    hybrid_event_logging_norm: f64,
    full_logging_events_norm: f64,
    event_logging_penalty_pct: f64,
}

fn main() {
    let mut artefact = Artefact::begin("ablation_event_logging");
    println!("X2: event-logging ablation — normalized time (native = 1.0)");
    println!();

    // Per bench: native / HydEE / HydEE+determinants / full logging
    // +determinants.
    fn variants(bench: NasBench) -> [(ProtocolSpec, ClusterStrategy); 4] {
        let table1 = ClusterStrategy::Partitioned(bench.paper_clusters());
        [
            (ProtocolSpec::Native, ClusterStrategy::Single),
            (ProtocolSpec::hydee(), table1),
            (ProtocolSpec::event_logged(), table1),
            (ProtocolSpec::event_logged(), ClusterStrategy::PerRank),
        ]
    }
    let per_bench = variants(NasBench::BT).len();
    let specs: Vec<ScenarioSpec> = NasBench::all()
        .into_iter()
        .flat_map(|bench| {
            let workload = WorkloadSpec::Nas {
                bench,
                scale: SCALE,
                iterations: None,
            };
            variants(bench)
                .map(|(protocol, clusters)| ScenarioSpec::new(workload.clone(), protocol, clusters))
        })
        .collect();
    let records = Executor::new().run(&specs);
    assert_eq!(records.len(), per_bench * NasBench::all().len());
    artefact.record_runs(&records);

    let mut table = Table::new(&[
        "bench",
        "HydEE",
        "hybrid + determinants",
        "full logging + determinants",
        "determinant penalty",
    ]);
    for (bench, chunk) in NasBench::all().into_iter().zip(records.chunks(per_bench)) {
        let [native, hydee, hybrid, full] = [&chunk[0], &chunk[1], &chunk[2], &chunk[3]];
        for r in [native, hydee, hybrid, full] {
            assert!(r.completed, "{}: {}", r.scenario, r.status);
        }
        // Normalize on the exact integer-picosecond makespans (the
        // determinism golden values) rather than their pre-rounded
        // floating-point mirrors; the ratio is taken once, here.
        let norm = |r: &scenario::RunRecord| r.makespan_ps as f64 / native.makespan_ps as f64;
        let row = Row {
            bench: bench.name(),
            hydee_norm: norm(hydee),
            hybrid_event_logging_norm: norm(hybrid),
            full_logging_events_norm: norm(full),
            event_logging_penalty_pct: 100.0 * (norm(hybrid) - norm(hydee)),
        };
        table.row(&[
            bench.name().to_string(),
            format!("{:.4}", row.hydee_norm),
            format!("{:.4}", row.hybrid_event_logging_norm),
            format!("{:.4}", row.full_logging_events_norm),
            format!("{:+.2}%", row.event_logging_penalty_pct),
        ]);
        artefact.row(&row);
    }
    table.print();
    println!();
    println!("Expected: the determinant column strictly above HydEE on every bench —");
    println!("the overhead HydEE's send-determinism argument eliminates.");
}
