//! **X2 — ablation: the cost of event logging** (§VI).
//!
//! HydEE's distinguishing claim is that it needs *no* determinant logging.
//! This harness quantifies what the claim is worth: each NAS skeleton runs
//! under
//!
//! * HydEE (Table-I clustering, no event logging) — the paper's protocol;
//! * the same protocol *plus* reliable determinant writes on every
//!   delivery — an [8]/[22]-style hybrid;
//! * full message logging plus determinants — classic pessimistic
//!   logging.
//!
//! Run: `cargo run -p bench --release --bin ablation_event_logging`

use bench::{reset_results, write_row, Table};
use clustering::{partition, CommGraph, PartitionConfig};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{ClusterMap, NullProtocol, Sim, SimConfig};
use protocols::{DeterminantCost, EventLogged};
use serde::Serialize;
use workloads::NasBench;

const SCALE: f64 = 1.0 / 64.0;

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    hydee_norm: f64,
    hybrid_event_logging_norm: f64,
    full_logging_events_norm: f64,
    event_logging_penalty_pct: f64,
}

fn main() {
    reset_results("ablation_event_logging");
    println!("X2: event-logging ablation — normalized time (native = 1.0)");
    println!();
    let mut table = Table::new(&[
        "bench",
        "HydEE",
        "hybrid + determinants",
        "full logging + determinants",
        "determinant penalty",
    ]);
    for bench in NasBench::all() {
        let cfg = bench.paper_config(SCALE);
        let build = || bench.build(&cfg);
        let map = {
            let graph = CommGraph::from_application(&build());
            partition(
                &graph,
                &PartitionConfig::balanced(bench.paper_clusters(), cfg.n_ranks),
            )
        };
        let native = Sim::new(build(), SimConfig::default(), NullProtocol).run();
        let hydee = Sim::new(
            build(),
            SimConfig::default(),
            Hydee::new(HydeeConfig::new(map.clone())),
        )
        .run();
        let hybrid = Sim::new(
            build(),
            SimConfig::default(),
            EventLogged::new(
                Hydee::new(HydeeConfig::new(map)),
                DeterminantCost::default(),
            ),
        )
        .run();
        let full = Sim::new(
            build(),
            SimConfig::default(),
            EventLogged::new(
                Hydee::new(HydeeConfig::new(ClusterMap::per_rank(cfg.n_ranks))),
                DeterminantCost::default(),
            ),
        )
        .run();
        for (name, r) in [
            ("native", &native),
            ("hydee", &hydee),
            ("hybrid", &hybrid),
            ("full", &full),
        ] {
            assert!(r.completed(), "{} {name}: {:?}", bench.name(), r.status);
        }
        let t0 = native.makespan.as_secs_f64();
        let row = Row {
            bench: bench.name(),
            hydee_norm: hydee.makespan.as_secs_f64() / t0,
            hybrid_event_logging_norm: hybrid.makespan.as_secs_f64() / t0,
            full_logging_events_norm: full.makespan.as_secs_f64() / t0,
            event_logging_penalty_pct: 100.0
                * (hybrid.makespan.as_secs_f64() - hydee.makespan.as_secs_f64())
                / t0,
        };
        table.row(&[
            bench.name().to_string(),
            format!("{:.4}", row.hydee_norm),
            format!("{:.4}", row.hybrid_event_logging_norm),
            format!("{:.4}", row.full_logging_events_norm),
            format!("{:+.2}%", row.event_logging_penalty_pct),
        ]);
        write_row("ablation_event_logging", &row);
    }
    table.print();
    println!();
    println!("Expected: the determinant column strictly above HydEE on every bench —");
    println!("the overhead HydEE's send-determinism argument eliminates.");
}
