//! **perf_baseline** — the CI-gated engine throughput baseline.
//!
//! Runs the fixed macro matrix of [`bench::perf`] (1024-rank stencil
//! native, the same under clustered HydEE, a 256-rank CG
//! checkpoint/failure/recovery run, the waste-frontier pair, and the
//! long-horizon 4096-rank stencil that only the streaming program API
//! fits in memory — serial, on the sharded parallel engine whose digest
//! must match bit-for-bit, and sharded once more under a fat-tree
//! topology whose per-class lookahead must cut barrier rounds), times
//! the simulation phase of each cell — once bare
//! and once with a no-op telemetry recorder attached — and writes
//! `BENCH_engine.json` — wall time, events/sec, recorder overhead,
//! program-representation bytes (streamed vs unrolled), peak RSS and the
//! determinism digests — in a stable schema CI can diff. The aggregate
//! recorder overhead is gated at `perf::MAX_RECORDER_OVERHEAD_PCT`.
//!
//! ```text
//! perf_baseline [--out DIR] [--repeat N] [--check FILE] [--tolerance F]
//! ```
//!
//! * `--out DIR` — where to write `BENCH_engine.json` [default: `.`]
//! * `--repeat N` — simulations per cell, fastest kept [default: 3]
//! * `--check FILE` — compare against a committed baseline; exit 1 on a
//!   throughput regression beyond the tolerance or on any digest drift
//! * `--tolerance F` — fractional regression gate [default: 0.20]
//!
//! Run: `cargo run -p bench --release --bin perf_baseline`

use bench::perf::{self, macro_matrix};
use bench::Table;
use std::path::PathBuf;

fn fail<T>(msg: &str) -> T {
    eprintln!("perf_baseline: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from(".");
    let mut repeat = 3u32;
    let mut check: Option<PathBuf> = None;
    let mut tolerance = 0.20f64;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(value("--out")),
            "--repeat" => {
                let v = value("--repeat");
                repeat = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --repeat `{v}`")));
            }
            "--check" => check = Some(PathBuf::from(value("--check"))),
            "--tolerance" => {
                let v = value("--tolerance");
                tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --tolerance `{v}`")));
            }
            "-h" | "--help" => {
                println!("perf_baseline [--out DIR] [--repeat N] [--check FILE] [--tolerance F]");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let cells = macro_matrix();
    println!(
        "perf_baseline: {} cells, repeat={repeat} (fastest kept)",
        cells.len()
    );
    let report = perf::run_matrix(&cells, repeat);

    let mut table = Table::new(&[
        "cell",
        "ranks",
        "shards",
        "events",
        "sim wall (s)",
        "events/sec",
        "rec ovh %",
        "ckpts",
        "waste",
        "digest",
    ]);
    for c in &report.cells {
        assert!(c.completed, "{}: simulation did not complete", c.name);
        assert!(c.trace_consistent, "{}: trace oracle violations", c.name);
        table.row(&[
            c.name.clone(),
            c.n_ranks.to_string(),
            c.shards.to_string(),
            c.events.to_string(),
            format!("{:.3}", c.sim_wall_s),
            format!("{:.0}", c.events_per_sec),
            format!("{:+.2}", c.recorder_overhead_pct),
            c.checkpoints.to_string(),
            format!("{:.4}", c.waste_fraction),
            format!("{:#018x}", c.digest),
        ]);
    }
    table.print();

    // The §VI frontier acceptance: the adaptive Young/Daly policy must
    // waste less of the machine than the aggressive fixed interval it
    // shares the waste_frontier workload with.
    let cell = |name: &str| {
        report
            .cells
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| fail(&format!("missing cell `{name}`")))
    };
    let fixed = cell("waste_frontier_fixed1ms");
    let young = cell("waste_frontier_young_daly");
    assert!(
        young.waste_fraction < fixed.waste_fraction,
        "young-daly waste {:.4} must beat fixed-1ms waste {:.4}",
        young.waste_fraction,
        fixed.waste_fraction
    );
    println!(
        "waste frontier: young-daly {:.4} vs fixed-1ms {:.4}",
        young.waste_fraction, fixed.waste_fraction
    );
    println!(
        "aggregate: {:.0} events/sec over {} events, peak RSS {:.1} MB",
        report.aggregate_events_per_sec,
        report.total_events,
        report.peak_rss_bytes as f64 / 1e6
    );

    // Telemetry must be free when off: every cell was also timed with a
    // no-op recorder attached (digest equality asserted inside run_cell),
    // and the aggregate slowdown has a hard ceiling.
    if let Some(violation) = perf::check_recorder_overhead(&report, perf::MAX_RECORDER_OVERHEAD_PCT)
    {
        eprintln!("perf_baseline: {violation}");
        std::process::exit(1);
    }
    println!(
        "recorder overhead: {:+.2}% aggregate (gate {:.0}%)",
        report.recorder_overhead_pct,
        perf::MAX_RECORDER_OVERHEAD_PCT
    );

    // The parallel-engine acceptance pair (DESIGN.md §2.8): digest
    // equality with the serial oracle is enforced everywhere; the
    // speedup floor only where the host has cores for the shards.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let par_violations = perf::check_parallel_speedup(&report, perf::MIN_PAR_SPEEDUP, cores);
    if !par_violations.is_empty() {
        for v in &par_violations {
            eprintln!("perf_baseline: {v}");
        }
        std::process::exit(1);
    }
    let par = cell(perf::PAR_SHARDED_CELL);
    let serial = cell(perf::PAR_SERIAL_CELL);
    if cores >= par.shards.max(1) as usize {
        println!(
            "parallel engine: {:.2}x at {} shards over {} barrier rounds (gate {:.1}x), digest equal",
            par.events_per_sec / serial.events_per_sec.max(1e-9),
            par.shards,
            par.barrier_rounds,
            perf::MIN_PAR_SPEEDUP
        );
    } else {
        println!(
            "parallel engine: digest equal at {} shards over {} barrier rounds; speedup gate \
             skipped ({cores} core(s) detected, need {})",
            par.shards, par.barrier_rounds, par.shards
        );
    }

    // The topology gate (DESIGN.md §2.9): the fat-tree sharded cell's
    // per-link-class lookahead must need strictly fewer barrier rounds
    // than the flat cell's scalar. Machine-independent, always enforced.
    let topo_violations = perf::check_topology_lookahead(&report);
    if !topo_violations.is_empty() {
        for v in &topo_violations {
            eprintln!("perf_baseline: {v}");
        }
        std::process::exit(1);
    }
    let tiered = cell(perf::PAR_TOPOLOGY_CELL);
    println!(
        "topology lookahead: {} barrier rounds under `{}` vs {} flat (strict reduction)",
        tiered.barrier_rounds, tiered.topology, par.barrier_rounds
    );

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(&format!("create {}: {e}", out_dir.display())));
    let path = out_dir.join("BENCH_engine.json");
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&path, format!("{json}\n"))
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
    println!("wrote {}", path.display());

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| fail(&format!("read {}: {e}", baseline_path.display())));
        let baseline = perf::parse_baseline(&text);
        if baseline.cells.is_empty() {
            fail::<()>(&format!(
                "no cells found in baseline {}",
                baseline_path.display()
            ));
        }
        let violations = perf::check_against(&baseline, &report, tolerance);
        if violations.is_empty() {
            println!(
                "gate: OK against {} ({} cells, tolerance {:.0}%)",
                baseline_path.display(),
                baseline.cells.len(),
                tolerance * 100.0
            );
        } else {
            eprintln!("gate: FAILED against {}", baseline_path.display());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
