//! **Figure 5** — Myrinet 10G ping-pong performance (NetPIPE).
//!
//! Latency and bandwidth *reduction in percent* versus native MPICH2, for
//! HydEE without logging (two ranks in the same cluster: piggyback only)
//! and HydEE with logging (different clusters: piggyback + sender-based
//! log copy), across the NetPIPE size ladder 1 B – 8 MB.
//!
//! Expected shape (paper): small overhead only for small messages, with
//! two peaks where the piggybacked bytes push a payload across an MX
//! latency plateau; logging ≈ no-logging everywhere (the memcpy hides
//! behind the NIC transfer).
//!
//! Run: `cargo run -p bench --release --bin fig5_netpipe`

use bench::{reset_results, write_row, Table};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{ClusterMap, NullProtocol, Protocol, Sim, SimConfig};
use serde::Serialize;
use workloads::netpipe::{ping_pong, size_ladder};

const ROUNDS: usize = 20;

#[derive(Serialize)]
struct Row {
    bytes: u64,
    native_latency_us: f64,
    nolog_latency_us: f64,
    log_latency_us: f64,
    nolog_latency_reduction_pct: f64,
    log_latency_reduction_pct: f64,
    nolog_bandwidth_reduction_pct: f64,
    log_bandwidth_reduction_pct: f64,
}

/// One-way latency in microseconds measured by a ping-pong run.
fn latency_us<P: Protocol>(bytes: u64, protocol: P) -> f64 {
    let app = ping_pong(ROUNDS, bytes);
    let report = Sim::new(app, SimConfig::default(), protocol).run();
    assert!(report.completed(), "ping-pong failed: {:?}", report.status);
    report.makespan.as_us_f64() / (2.0 * ROUNDS as f64)
}

fn main() {
    reset_results("fig5_netpipe");
    println!("Figure 5: NetPIPE ping-pong over Myrinet 10G — % reduction vs native");
    println!();
    let mut table = Table::new(&[
        "bytes",
        "native us",
        "nolog us",
        "log us",
        "lat red (nolog)",
        "lat red (log)",
        "bw red (nolog)",
        "bw red (log)",
    ]);
    for bytes in size_ladder(8 << 20) {
        let native = latency_us(bytes, NullProtocol);
        // Same cluster: piggybacking, no logging.
        let nolog = latency_us(
            bytes,
            Hydee::new(HydeeConfig::new(ClusterMap::single(2))),
        );
        // Different clusters: piggybacking + sender-based logging.
        let log = latency_us(
            bytes,
            Hydee::new(HydeeConfig::new(ClusterMap::per_rank(2))),
        );
        // Latency reduction is negative when HydEE is slower; Figure 5
        // plots it downward from 0.
        let lat_red = |h: f64| -100.0 * (h - native) / native;
        // Bandwidth ~ bytes/latency, so bandwidth reduction mirrors the
        // latency ratio.
        let bw_red = |h: f64| -100.0 * (1.0 - native / h);
        let row = Row {
            bytes,
            native_latency_us: native,
            nolog_latency_us: nolog,
            log_latency_us: log,
            nolog_latency_reduction_pct: lat_red(nolog),
            log_latency_reduction_pct: lat_red(log),
            nolog_bandwidth_reduction_pct: bw_red(nolog),
            log_bandwidth_reduction_pct: bw_red(log),
        };
        table.row(&[
            bytes.to_string(),
            format!("{native:.2}"),
            format!("{nolog:.2}"),
            format!("{log:.2}"),
            format!("{:.1}%", row.nolog_latency_reduction_pct),
            format!("{:.1}%", row.log_latency_reduction_pct),
            format!("{:.1}%", row.nolog_bandwidth_reduction_pct),
            format!("{:.1}%", row.log_bandwidth_reduction_pct),
        ]);
        write_row("fig5_netpipe", &row);
    }
    table.print();
    println!();
    println!("Expected: ~-20% peaks just below the 32 B and 1 KiB plateau edges;");
    println!("logging within noise of no-logging; large messages unaffected.");
}
