//! **Figure 5** — Myrinet 10G ping-pong performance (NetPIPE).
//!
//! Latency and bandwidth *reduction in percent* versus native MPICH2, for
//! HydEE without logging (two ranks in the same cluster: piggyback only)
//! and HydEE with logging (different clusters: piggyback + sender-based
//! log copy), across the NetPIPE size ladder 1 B – 8 MB. The whole ladder
//! (3 protocol variants × ~70 sizes) runs as one parallel scenario batch.
//!
//! Expected shape (paper): small overhead only for small messages, with
//! two peaks where the piggybacked bytes push a payload across an MX
//! latency plateau; logging ≈ no-logging everywhere (the memcpy hides
//! behind the NIC transfer).
//!
//! The experiment shape lives in `suites/fig5.suite` (embedded at
//! compile time; `sweep --suite suites/fig5.suite` runs the same cells).
//! A bench test pins the suite's workload list to
//! `workloads::size_ladder(8 << 20)`.
//!
//! Run: `cargo run -p bench --release --bin fig5_netpipe`

use bench::{Artefact, SuiteRun, Table};
use scenario::RunRecord;
use serde::Serialize;

const SUITE: &str = include_str!("../../../../suites/fig5.suite");

const ROUNDS: usize = 20;

#[derive(Serialize)]
struct Row {
    bytes: u64,
    native_latency_us: f64,
    nolog_latency_us: f64,
    log_latency_us: f64,
    nolog_latency_reduction_pct: f64,
    log_latency_reduction_pct: f64,
    nolog_bandwidth_reduction_pct: f64,
    log_bandwidth_reduction_pct: f64,
}

/// One-way latency in microseconds from a ping-pong record: the exact
/// integer makespan divided over the 2×ROUNDS one-way trips, converted
/// through `SimDuration` so unit handling lives in one place.
fn latency_us(rec: &RunRecord) -> f64 {
    assert!(rec.completed, "{}: {}", rec.scenario, rec.status);
    (det_sim::SimDuration::from_ps(rec.makespan_ps) / (2 * ROUNDS as u64)).as_us_f64()
}

fn main() {
    let mut artefact = Artefact::begin("fig5_netpipe");
    println!("Figure 5: NetPIPE ping-pong over Myrinet 10G — % reduction vs native");
    println!();

    // Three scenarios over the same size ladder: native / same-cluster
    // HydEE (piggyback only) / cross-cluster HydEE (piggyback + logging).
    let run = SuiteRun::execute(SUITE, "suites/fig5.suite");
    artefact.record_runs(&run.records);
    let (natives, nologs, logs) = (
        run.scenario("native"),
        run.scenario("nolog"),
        run.scenario("log"),
    );
    let sizes: Vec<u64> = natives
        .iter()
        .map(|r| match r.workload.strip_prefix("netpipe:") {
            Some(b) => b.parse().expect("netpipe workload name carries the size"),
            None => panic!(
                "fig5 suite must sweep netpipe workloads, got `{}`",
                r.workload
            ),
        })
        .collect();

    let mut table = Table::new(&[
        "bytes",
        "native us",
        "nolog us",
        "log us",
        "lat red (nolog)",
        "lat red (log)",
        "bw red (nolog)",
        "bw red (log)",
    ]);
    assert_eq!(natives.len(), sizes.len());
    assert_eq!(nologs.len(), sizes.len());
    assert_eq!(logs.len(), sizes.len());
    for (i, &bytes) in sizes.iter().enumerate() {
        let [native, nolog, log] = [
            latency_us(natives[i]),
            latency_us(nologs[i]),
            latency_us(logs[i]),
        ];
        // Latency reduction is negative when HydEE is slower; Figure 5
        // plots it downward from 0.
        let lat_red = |h: f64| -100.0 * (h - native) / native;
        // Bandwidth ~ bytes/latency, so bandwidth reduction mirrors the
        // latency ratio.
        let bw_red = |h: f64| -100.0 * (1.0 - native / h);
        let row = Row {
            bytes,
            native_latency_us: native,
            nolog_latency_us: nolog,
            log_latency_us: log,
            nolog_latency_reduction_pct: lat_red(nolog),
            log_latency_reduction_pct: lat_red(log),
            nolog_bandwidth_reduction_pct: bw_red(nolog),
            log_bandwidth_reduction_pct: bw_red(log),
        };
        table.row(&[
            bytes.to_string(),
            format!("{native:.2}"),
            format!("{nolog:.2}"),
            format!("{log:.2}"),
            format!("{:.1}%", row.nolog_latency_reduction_pct),
            format!("{:.1}%", row.log_latency_reduction_pct),
            format!("{:.1}%", row.nolog_bandwidth_reduction_pct),
            format!("{:.1}%", row.log_bandwidth_reduction_pct),
        ]);
        artefact.row(&row);
    }
    table.print();
    println!();
    println!("Expected: ~-20% peaks just below the 32 B and 1 KiB plateau edges;");
    println!("logging within noise of no-logging; large messages unaffected.");
}
