//! **sweep** — run any cross-product of the experiment matrix from the
//! command line, or a whole checked-in suite file.
//!
//! ```text
//! sweep --suite suites/fig5.suite [--scenario NAME ...] [--max-cells N]
//!       [--cache DIR]
//! sweep --workloads nas:CG:scale=0.015625,netpipe:1024 \
//!       --protocols native,hydee --clusters per-rank,part:16 \
//!       --networks mx,tcp --ckpt-ms none,100 \
//!       --fail none --fail 195:7 --fail poisson:mtbf=500:seed=7 \
//!       [--static] [--serial] [--image-bytes N] [--max-events N] \
//!       [--out DIR] [--name NAME] [--list]
//! sweep --serve <spool-dir|host:port> [--store DIR] [--out DIR]
//! sweep submit <suite-file> [--addr A] [--priority P] [--wait]
//! sweep status [JOB] | cancel JOB | result JOB | stats | shutdown
//! ```
//!
//! `--suite` loads a declarative suite file (DESIGN.md §2.6,
//! `suites/example.suite` is a commented tour): named scenarios with
//! `[defaults]` inheritance and `include` composition, compiled to the
//! same matrix the axis flags build. `--scenario` filters to named
//! scenarios, `--max-cells` truncates the cell list (CI smoke mode).
//! Axis flags and `--suite` are mutually exclusive.
//!
//! Workload names follow the `workloads::registry` grammar (`--list`
//! prints it with examples). Each `--fail` flag adds one *failure model*
//! to the matrix axis: `none`, a comma-separated fixed schedule of
//! injections (`fail@<t>us:r<r>[+<r>...]`, `<t>us:`/`<t>ms:` forms, or
//! the legacy bare-`<ms>:<rank>`), or a stochastic regime
//! (`poisson:`/`cluster:`/`cascade:` — see `FailureModelSpec::parse`).
//! Results go to `<out>/<name>_records.{jsonl,csv}` plus a rendered table
//! and per-(workload, protocol) summary on stdout.
//!
//! Run: `cargo run -p bench --release --bin sweep -- --help`

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bench::Table;
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, Executor, FailureModelSpec, Matrix, MatrixSummary,
    NetworkSpec, ProtocolSpec, StorageSpec, Suite, TopologySpec, DEFAULT_IMAGE_BYTES,
};
use sweep_server::{Client, RunStore, Server};
use workloads::WorkloadSpec;

/// Default TCP address for the service subcommands; override with
/// `--addr` or `HYDEE_SWEEP_ADDR`.
const DEFAULT_ADDR: &str = "127.0.0.1:7077";

const USAGE: &str = "\
sweep — declarative experiment sweeps over the HydEE reproduction

USAGE:
    sweep [OPTIONS]

SUITE MODE (mutually exclusive with the axis flags below):
    --suite <file>        run a declarative suite file (DESIGN.md §2.6;
                          see suites/example.suite): named scenarios,
                          [defaults] inheritance, include composition
    --scenario <name>     run only this scenario of the suite
                          (repeatable)
    --max-cells <n>       truncate the suite to its first n cells
                          (CI smoke mode; cells are cached individually,
                          so truncation never poisons a --cache store)

SERVICE MODE (simulation as a service — DESIGN.md §2.7):
    --cache <dir>         run this sweep through a content-addressed run
                          store at <dir>: cells already in the store are
                          served from cache bit-identically, only new
                          cells simulate
    --serve <target>      run resident: <target> is either host:port
                          (TCP line-delimited JSON protocol) or a spool
                          directory to watch for *.suite files (a `stop`
                          file shuts it down)
    --store <dir>         run store for --serve [default: <out>/store]

    sweep submit <suite-file> [--name N] [--priority P] [--max-cells N]
                 [--wait] [--record-out F]     queue a suite on a server
    sweep status [JOB]                         one job or all jobs
    sweep cancel JOB                           cancel queued/running job
    sweep result JOB [--record-out F]          terminal job's records
    sweep stats                                store hit/miss counters
    sweep shutdown                             stop a TCP server
    (all take --addr <host:port>; default $HYDEE_SWEEP_ADDR or
     127.0.0.1:7077)

OPTIONS (comma-separate values; every combination runs):
    --workloads <w,...>   workload registry names [default: netpipe:1024]
    --protocols <p,...>   native | hydee | coordinated | event-logged
                          [default: native,hydee]
    --clusters <c,...>    single | per-rank | blocks:K | part:K
                          [default: single]
    --networks <n,...>    mx | tcp [default: mx]
    --topologies <t,...>  flat | two-level | fat-tree:<k> | dragonfly:<g>
                          [default: flat] — endpoint-aware pricing over
                          the cell's cluster map (DESIGN.md §2.9)
    --topology <t>        add one topology to the axis (repeatable;
                          shares the --topologies axis)
    --ckpt-ms <v,...>     none or an interval in ms; overrides protocols'
                          checkpointing [default: leave as configured]
    --ckpt-policy <p>     add one checkpoint policy to the axis
                          (repeatable, shares the --ckpt-ms axis):
                            none
                            periodic:interval=<ms>[:first=<ms>][:stagger=<ms>]
                            young-daly[:first=<ms>][:stagger=<ms>]
                            log-pressure:budget=<bytes>
    --fail <model>        add one failure model to the axis (repeatable):
                            none
                            fixed schedule: comma list of injections, each
                              fail@<t>us:r<r>[+<r>...] | <t>us:<r> |
                              <t>ms:<r> | <ms>:<r>  (legacy)
                            poisson:mtbf=<ms>:seed=<n>[:max=<n>]
                            cluster:mtbf=<ms>:seed=<n>[:max=<n>]
                            cascade:mtbf=<ms>:seed=<n>[:window=<us>]
                              [:follow=<pct>][:max=<n>]
    --image-bytes <n>     per-rank checkpoint image size [default: 1048576]
    --static              static clustering analysis only (no simulation)
    --serial              run on one core (reference mode)
    --max-events <n>      engine event-limit override
    --shards <n>          run every cell on the parallel engine with n
                          cluster shards (DESIGN.md §2.8; clamped to each
                          cell's cluster count, serial fallback under
                          failure models — results are bit-for-bit
                          identical either way). In suite mode this
                          overrides any `shards =` keys in the file
    --progress            live progress on stderr (one line per finished
                          cell: done/total, running, events/sec, ETA)
    --progress-out <f>    machine-readable progress heartbeats as JSONL
                          (one object per cell start/completion)
    --trace-out <f>       write a Perfetto-loadable Chrome trace-event
                          JSON of the run (matrix must be exactly one
                          simulated cell); validated before writing
    --sample-out <f>      write virtual-time series samples (JSONL, 1 ms
                          grid) of the run (single-cell matrices only)
    --out <dir>           results directory [default: $HYDEE_RESULTS_DIR or ./results]
    --name <name>         results file stem [default: sweep]
    --list                print known workload families/examples and exit
    -h, --help            this message

EXAMPLES:
    A whole checked-in study:
      sweep --suite suites/fig5.suite
    One scenario of it, traced:
      sweep --suite suites/fig5.suite --scenario log --max-cells 1 \\
            --trace-out fig5_log.trace.json
    Figure 6 in one line:
      sweep --workloads nas:BT:scale=0.015625,nas:CG:scale=0.015625 \\
            --protocols native,hydee --clusters per-rank,part:16
    Containment under a stochastic failure regime:
      sweep --workloads stencil:64x400 --protocols hydee,coordinated \\
            --clusters part:8 --ckpt-ms 5 \\
            --fail poisson:mtbf=2000:seed=7:max=4";

fn fail<T>(msg: &str) -> T {
    eprintln!("sweep: {msg}");
    eprintln!("run `sweep --help` for usage");
    std::process::exit(2);
}

fn split_csv(v: &str) -> Vec<&str> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_protocol(name: &str, image_bytes: u64) -> ProtocolSpec {
    let storage = StorageSpec::Default;
    match name {
        "native" => ProtocolSpec::Native,
        "hydee" => ProtocolSpec::Hydee {
            checkpoint: CheckpointPolicySpec::None,
            image_bytes,
            storage,
            gc: true,
        },
        "coordinated" => ProtocolSpec::Coordinated {
            checkpoint: CheckpointPolicySpec::None,
            image_bytes,
            storage,
        },
        "event-logged" => ProtocolSpec::EventLogged {
            checkpoint: CheckpointPolicySpec::None,
            image_bytes,
            storage,
        },
        other => fail(&format!("unknown protocol `{other}`")),
    }
}

fn parse_clusters(name: &str) -> ClusterStrategy {
    match name {
        "single" => ClusterStrategy::Single,
        "per-rank" => ClusterStrategy::PerRank,
        _ => {
            if let Some(k) = name.strip_prefix("blocks:") {
                ClusterStrategy::Blocks(
                    k.parse()
                        .unwrap_or_else(|_| fail(&format!("bad blocks count `{k}`"))),
                )
            } else if let Some(k) = name.strip_prefix("part:") {
                ClusterStrategy::Partitioned(
                    k.parse()
                        .unwrap_or_else(|_| fail(&format!("bad partition count `{k}`"))),
                )
            } else {
                fail(&format!("unknown cluster strategy `{name}`"))
            }
        }
    }
}

fn parse_failure_model(arg: &str) -> FailureModelSpec {
    FailureModelSpec::parse(arg).unwrap_or_else(|e| fail(&e))
}

fn list_registry() {
    println!(
        "workload registry families: {}",
        workloads::registry::FAMILIES.join(", ")
    );
    println!();
    println!("examples:");
    for example in [
        "nas:CG",
        "nas:LU:scale=0.015625:iters=10",
        "netpipe:1024",
        "netpipe:8388608:rounds=5",
        "stencil:64x400:face=262144:compute_us=500",
        "stencil:16x10:wildcard",
        "master_worker:8:tasks=4",
    ] {
        let spec = WorkloadSpec::parse(example).expect("example parses");
        println!("  {example:<45} -> {} ranks", spec.n_ranks());
    }
}

/// `--serve` entry point: open the store, pick TCP vs spool by the shape
/// of `target` (a colon means host:port), serve until shutdown.
fn run_serve(target: &str, store_dir: &Path, results_dir: &Path) {
    let store = Arc::new(
        RunStore::open(store_dir)
            .unwrap_or_else(|e| fail(&format!("open run store {}: {e}", store_dir.display()))),
    );
    let load = store.load_report();
    println!(
        "sweep: run store {} — {} record(s) in {} segment(s){}",
        store_dir.display(),
        load.loaded,
        load.segments,
        if load.skipped > 0 {
            format!(", {} corrupt line(s) skipped", load.skipped)
        } else {
            String::new()
        }
    );
    let server = Server::new(store, Some(results_dir.to_path_buf()));
    if target.contains(':') {
        let listener = std::net::TcpListener::bind(target)
            .unwrap_or_else(|e| fail(&format!("bind {target}: {e}")));
        let addr = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| target.to_string());
        println!(
            "sweep: serving on {addr} (results -> {})",
            results_dir.display()
        );
        server
            .run_tcp(listener)
            .unwrap_or_else(|e| fail(&format!("serve {addr}: {e}")));
    } else {
        println!(
            "sweep: watching spool {target}/ for *.suite files \
             (results -> {}; `touch {target}/stop` to quit)",
            results_dir.display()
        );
        server
            .run_spool(Path::new(target))
            .unwrap_or_else(|e| fail(&format!("serve spool {target}: {e}")));
    }
    println!("sweep: server stopped");
}

fn service_addr(flag: Option<String>) -> String {
    flag.or_else(|| std::env::var("HYDEE_SWEEP_ADDR").ok())
        .unwrap_or_else(|| DEFAULT_ADDR.to_string())
}

/// Print a terminal job's summary (stderr) and records (stdout or file).
/// Exits nonzero for a failed job so CI can gate on it.
fn print_job_result(
    id: u64,
    status: &sweep_server::json::Value,
    records: &[String],
    record_out: Option<&str>,
) {
    use sweep_server::json::Value;
    let state = status.get("state").and_then(Value::as_str).unwrap_or("?");
    let hits = status.get("hits").and_then(Value::as_u64).unwrap_or(0);
    let misses = status.get("misses").and_then(Value::as_u64).unwrap_or(0);
    let wall = status.get("wall_s").and_then(Value::as_f64).unwrap_or(0.0);
    eprintln!(
        "job {id}: {state} — {} record(s), {hits} cache hit(s), {misses} miss(es), {wall:.2}s wall",
        records.len()
    );
    let mut body = String::new();
    for raw in records {
        body.push_str(raw);
        body.push('\n');
    }
    match record_out {
        Some(path) => {
            std::fs::write(path, body.as_bytes())
                .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            eprintln!("records -> {path}");
        }
        None => print!("{body}"),
    }
    if state != "done" {
        if let Some(err) = status.get("error").and_then(Value::as_str) {
            eprintln!("error: {err}");
        }
        std::process::exit(1);
    }
}

/// The client subcommands: `sweep submit/status/cancel/result/stats/shutdown`.
fn service_command(cmd: &str, args: &[String]) {
    use sweep_server::json::Value;
    let mut addr: Option<String> = None;
    let mut name: Option<String> = None;
    let mut priority: i64 = 0;
    let mut max_cells: Option<usize> = None;
    let mut wait = false;
    let mut record_out: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--name" => name = Some(value("--name")),
            "--priority" => {
                let v = value("--priority");
                priority = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --priority `{v}`")));
            }
            "--max-cells" => {
                let v = value("--max-cells");
                max_cells = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("bad --max-cells `{v}`"))),
                );
            }
            "--wait" => wait = true,
            "--record-out" => record_out = Some(value("--record-out")),
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => fail(&format!("unknown flag `{other}` for `sweep {cmd}`")),
        }
    }
    let client = Client::new(service_addr(addr));
    let job_arg = |positional: &[String]| -> u64 {
        let raw = positional
            .first()
            .unwrap_or_else(|| fail(&format!("`sweep {cmd}` needs a job id")));
        raw.parse()
            .unwrap_or_else(|_| fail(&format!("bad job id `{raw}`")))
    };
    match cmd {
        "submit" => {
            let path = positional
                .first()
                .unwrap_or_else(|| fail("`sweep submit` needs a suite file"));
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
            // Parse locally first: a bad suite fails here with line/column
            // diagnostics instead of as a `failed` job on the server.
            let suite = Suite::parse_str(&text, path).unwrap_or_else(|e| fail(&e.to_string()));
            let job_name = name.unwrap_or_else(|| suite.name.clone());
            let id = client
                .submit(&job_name, &text, priority, max_cells)
                .unwrap_or_else(|e| fail(&e));
            eprintln!("job {id} queued ({job_name}, priority {priority})");
            println!("{id}");
            if wait {
                let (status, records) = client
                    .wait(id, std::time::Duration::from_secs(3600))
                    .unwrap_or_else(|e| fail(&e));
                print_job_result(id, &status, &records, record_out.as_deref());
            }
        }
        "status" => {
            let job = positional.first().map(|raw| {
                raw.parse()
                    .unwrap_or_else(|_| fail(&format!("bad job id `{raw}`")))
            });
            let rows = client.status(job).unwrap_or_else(|e| fail(&e));
            let mut table = Table::new(&[
                "job", "name", "state", "prio", "cells", "hits", "misses", "wall (s)",
            ]);
            for row in &rows {
                let u = |k: &str| row.get(k).and_then(Value::as_u64).unwrap_or(0);
                table.row(&[
                    u("id").to_string(),
                    row.get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .into(),
                    row.get("state")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .into(),
                    row.get("priority")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0)
                        .to_string(),
                    format!("{}/{}", u("completed"), u("total")),
                    u("hits").to_string(),
                    u("misses").to_string(),
                    format!(
                        "{:.2}",
                        row.get("wall_s").and_then(Value::as_f64).unwrap_or(0.0)
                    ),
                ]);
            }
            table.print();
        }
        "cancel" => {
            let id = job_arg(&positional);
            let accepted = client.cancel(id).unwrap_or_else(|e| fail(&e));
            println!(
                "job {id}: {}",
                if accepted {
                    "cancellation requested"
                } else {
                    "already terminal"
                }
            );
        }
        "result" => {
            let id = job_arg(&positional);
            let (status, records) = client.result(id).unwrap_or_else(|e| fail(&e));
            print_job_result(id, &status, &records, record_out.as_deref());
        }
        "stats" => {
            let (entries, hits, misses) = client.stats().unwrap_or_else(|e| fail(&e));
            println!("store: {entries} record(s), {hits} hit(s), {misses} miss(es)");
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(&e));
            println!("server shutting down");
        }
        _ => unreachable!("dispatcher only routes known subcommands"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Service subcommands talk to a resident `sweep --serve` instance.
    if let Some(cmd) = args.first() {
        match cmd.as_str() {
            "submit" | "status" | "cancel" | "result" | "stats" | "shutdown" => {
                return service_command(cmd, &args[1..]);
            }
            _ => {}
        }
    }
    let mut workloads_arg = "netpipe:1024".to_string();
    let mut protocols_arg = "native,hydee".to_string();
    let mut clusters_arg = "single".to_string();
    let mut networks_arg = "mx".to_string();
    let mut topologies: Vec<TopologySpec> = Vec::new();
    let mut ckpt_arg: Option<String> = None;
    let mut ckpt_policies: Vec<CheckpointPolicySpec> = Vec::new();
    let mut failure_models: Vec<FailureModelSpec> = Vec::new();
    let mut image_bytes = DEFAULT_IMAGE_BYTES;
    let mut static_only = false;
    let mut serial = false;
    let mut max_events: Option<u64> = None;
    let mut shards: Option<usize> = None;
    let mut suite_path: Option<String> = None;
    let mut scenarios: Vec<String> = Vec::new();
    let mut max_cells: Option<usize> = None;
    let mut axis_flags: Vec<&'static str> = Vec::new();
    let mut progress = false;
    let mut progress_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut sample_out: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut name: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut serve_target: Option<String> = None;
    let mut store_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--workloads" => {
                axis_flags.push("--workloads");
                workloads_arg = value("--workloads");
            }
            "--protocols" => {
                axis_flags.push("--protocols");
                protocols_arg = value("--protocols");
            }
            "--clusters" => {
                axis_flags.push("--clusters");
                clusters_arg = value("--clusters");
            }
            "--networks" => {
                axis_flags.push("--networks");
                networks_arg = value("--networks");
            }
            "--topologies" => {
                axis_flags.push("--topologies");
                for t in split_csv(&value("--topologies")) {
                    topologies.push(TopologySpec::parse(t).unwrap_or_else(|e| fail(&e)));
                }
            }
            "--topology" => {
                axis_flags.push("--topology");
                topologies
                    .push(TopologySpec::parse(&value("--topology")).unwrap_or_else(|e| fail(&e)));
            }
            "--ckpt-ms" => {
                axis_flags.push("--ckpt-ms");
                ckpt_arg = Some(value("--ckpt-ms"));
            }
            "--ckpt-policy" => {
                axis_flags.push("--ckpt-policy");
                ckpt_policies.push(
                    CheckpointPolicySpec::parse(&value("--ckpt-policy"))
                        .unwrap_or_else(|e| fail(&e)),
                );
            }
            "--fail" => {
                axis_flags.push("--fail");
                failure_models.push(parse_failure_model(&value("--fail")));
            }
            "--image-bytes" => {
                axis_flags.push("--image-bytes");
                let v = value("--image-bytes");
                image_bytes = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --image-bytes `{v}`")));
            }
            "--static" => {
                axis_flags.push("--static");
                static_only = true;
            }
            "--max-events" => {
                axis_flags.push("--max-events");
                let v = value("--max-events");
                max_events = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("bad --max-events `{v}`"))),
                );
            }
            "--shards" => {
                let v = value("--shards");
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --shards `{v}`")));
                if n == 0 {
                    fail::<()>("--shards must be at least 1");
                }
                shards = Some(n);
            }
            "--suite" => suite_path = Some(value("--suite")),
            "--scenario" => scenarios.push(value("--scenario")),
            "--max-cells" => {
                let v = value("--max-cells");
                max_cells = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("bad --max-cells `{v}`"))),
                );
            }
            "--serial" => serial = true,
            "--progress" => progress = true,
            "--progress-out" => progress_out = Some(value("--progress-out")),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--sample-out" => sample_out = Some(value("--sample-out")),
            "--out" => out_dir = Some(value("--out")),
            "--name" => name = Some(value("--name")),
            "--cache" => cache_dir = Some(value("--cache")),
            "--serve" => serve_target = Some(value("--serve")),
            "--store" => store_dir = Some(value("--store")),
            "--list" => {
                list_registry();
                return;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    if let Some(target) = &serve_target {
        if suite_path.is_some() || !axis_flags.is_empty() {
            fail::<()>("--serve runs resident; submit suites with `sweep submit` instead");
        }
        let results = out_dir
            .map(PathBuf::from)
            .unwrap_or_else(scenario::default_results_dir);
        let store = store_dir
            .map(PathBuf::from)
            .unwrap_or_else(|| results.join("store"));
        return run_serve(target, &store, &results);
    }
    if store_dir.is_some() {
        fail::<()>("--store only applies to --serve");
    }

    let specs = if let Some(path) = &suite_path {
        if !axis_flags.is_empty() {
            fail::<()>(&format!(
                "--suite is mutually exclusive with the axis flags ({}) — \
                 put the axes in the suite file instead",
                axis_flags.join(", ")
            ));
        }
        let suite = Suite::load(path).unwrap_or_else(|e| fail(&e.to_string()));
        let suite = if scenarios.is_empty() {
            suite
        } else {
            suite.select(&scenarios).unwrap_or_else(|e| fail(&e))
        };
        let mut cells = suite.cells();
        if let Some(cap) = max_cells {
            if cells.len() > cap {
                println!(
                    "sweep: --max-cells {cap} truncates {} of {} cell(s)",
                    cells.len() - cap,
                    cells.len()
                );
                cells.truncate(cap);
            }
        }
        if cells.is_empty() {
            fail::<()>(&format!("suite `{}` has no cells", suite.name));
        }
        println!(
            "sweep: suite `{}` — {} scenario(s), {} cell(s)",
            suite.name,
            suite.scenarios.len(),
            cells.len()
        );
        for sc in &suite.scenarios {
            let n = cells.iter().filter(|c| c.scenario == sc.name).count();
            println!("  {}: {} cell(s)", sc.name, n);
        }
        name.get_or_insert_with(|| suite.name.clone());
        let mut specs: Vec<_> = cells.into_iter().map(|c| c.spec).collect();
        // The CLI flag wins over `shards =` keys in the suite file, so
        // CI can rerun a checked-in suite on either engine unchanged.
        if let Some(n) = shards {
            for spec in &mut specs {
                spec.shards = n;
            }
        }
        specs
    } else {
        if !scenarios.is_empty() || max_cells.is_some() {
            fail::<()>("--scenario/--max-cells need --suite");
        }
        let mut matrix = Matrix::new()
            .workloads(
                split_csv(&workloads_arg)
                    .into_iter()
                    .map(|w| WorkloadSpec::parse(w).unwrap_or_else(|e| fail(&e))),
            )
            .protocols(
                split_csv(&protocols_arg)
                    .into_iter()
                    .map(|p| parse_protocol(p, image_bytes)),
            )
            .clusters(split_csv(&clusters_arg).into_iter().map(parse_clusters))
            .networks(split_csv(&networks_arg).into_iter().map(|n| match n {
                "mx" => NetworkSpec::Mx,
                "tcp" => NetworkSpec::Tcp,
                other => fail(&format!("unknown network `{other}`")),
            }))
            .topologies(topologies)
            .failure_models(failure_models);
        if let Some(ckpt) = &ckpt_arg {
            matrix = matrix.checkpoint_ms(split_csv(ckpt).into_iter().map(|c| {
                match c {
                    "none" => None,
                    ms => Some(
                        ms.parse()
                            .unwrap_or_else(|_| fail(&format!("bad --ckpt-ms `{ms}`"))),
                    ),
                }
            }));
        }
        if !ckpt_policies.is_empty() {
            matrix = matrix.checkpoint_policies(ckpt_policies);
        }
        if static_only {
            matrix = matrix.static_analysis();
        }
        matrix.max_events = max_events;
        if let Some(n) = shards {
            matrix = matrix.shards(n);
        }
        matrix.expand()
    };
    // Warn about shard clamping up front (once per distinct message):
    // the engine clamps silently (the record's `shards` column reports
    // the effective count), so this is the only place the user hears it.
    {
        let mut warned = std::collections::BTreeSet::new();
        for spec in &specs {
            if spec.shards <= 1 {
                continue;
            }
            let n_clusters = spec.clusters.n_clusters_for(spec.workload.n_ranks());
            let (_, warning) = par_sim::effective_shards(spec.shards, n_clusters);
            if let Some(w) = warning {
                let msg = format!("{} ({}): {w}", spec.clusters.name(), spec.workload.name());
                if warned.insert(msg.clone()) {
                    eprintln!("sweep: {msg}");
                }
            }
        }
    }
    let name = name.unwrap_or_else(|| "sweep".to_string());
    if specs.is_empty() {
        fail::<()>("matrix is empty (no workloads)");
    }
    println!(
        "sweep: {} scenario(s) ({} mode)",
        specs.len(),
        if serial { "serial" } else { "parallel" }
    );
    let executor = if serial {
        Executor::serial()
    } else {
        Executor::new()
    };
    let mut sinks = scenario::ProgressFanout::new();
    if progress {
        sinks = sinks.push(Box::new(scenario::HumanProgress));
    }
    if let Some(path) = &progress_out {
        let sink = scenario::JsonlProgress::create(std::path::Path::new(path))
            .unwrap_or_else(|e| fail(&format!("create {path}: {e}")));
        sinks = sinks.push(Box::new(sink));
    }
    let tracing = trace_out.is_some() || sample_out.is_some();
    if tracing && cache_dir.is_some() {
        fail::<()>("--cache does not combine with --trace-out/--sample-out (recorders attach to live runs only)");
    }
    if tracing && (specs.len() != 1 || !specs[0].simulate) {
        fail::<()>(&format!(
            "--trace-out/--sample-out need a matrix of exactly one simulated cell \
             (this one has {})",
            specs.len()
        ));
    }
    let started = std::time::Instant::now();
    let records = if tracing {
        // Recorders attach to a single run; the recorder-neutrality suite
        // guarantees the record is identical to an untraced run.
        let (span_rec, trace) = telemetry::SpanRecorder::new();
        let (sampler, samples) = telemetry::Sampler::new(det_sim::SimDuration::from_ms(1));
        let fanout = telemetry::Fanout::new()
            .push(Box::new(span_rec))
            .push(Box::new(sampler));
        let records = if sinks.is_empty() {
            vec![Executor::run_one_with_recorder(
                &specs[0],
                Some(Box::new(fanout)),
            )]
        } else {
            vec![Executor::run_one_with_recorder_and_progress(
                &specs[0],
                Some(Box::new(fanout)),
                &sinks,
            )]
        };
        if let Some(path) = &trace_out {
            let json = trace.to_chrome_json();
            let stats = telemetry::validate_chrome_trace(&json)
                .unwrap_or_else(|e| fail(&format!("trace failed validation: {e}")));
            std::fs::write(path, &json).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            println!(
                "trace: {path} ({} spans, {} instants, {} tracks) — load in https://ui.perfetto.dev",
                stats.spans, stats.instants, stats.tracks
            );
        }
        if let Some(path) = &sample_out {
            std::fs::write(path, samples.to_jsonl())
                .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            println!("samples: {path} ({} rows)", samples.rows().len());
        }
        records
    } else if let Some(dir) = &cache_dir {
        let store = RunStore::open(Path::new(dir))
            .unwrap_or_else(|e| fail(&format!("open run store {dir}: {e}")));
        let load = store.load_report();
        if load.loaded > 0 || load.skipped > 0 {
            println!(
                "cache: {dir} — {} record(s) in {} segment(s){}",
                load.loaded,
                load.segments,
                if load.skipped > 0 {
                    format!(", {} corrupt line(s) skipped", load.skipped)
                } else {
                    String::new()
                }
            );
        }
        let sink: Option<&dyn scenario::ProgressSink> =
            if sinks.is_empty() { None } else { Some(&sinks) };
        let (records, stats) = executor.run_cached(&specs, &store, sink);
        println!(
            "cache: {} hit(s), {} miss(es) ({:.0}% hit)",
            stats.hits,
            stats.misses,
            stats.hit_pct()
        );
        records
    } else if sinks.is_empty() {
        executor.run(&specs)
    } else {
        executor.run_with_progress(&specs, &sinks)
    };
    let wall = started.elapsed();

    let dir = out_dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(scenario::default_results_dir);
    let stem = format!("{name}_records");
    let mut jsonl = scenario::JsonlSink::create(&dir, &stem)
        .unwrap_or_else(|e| fail(&format!("create {stem}.jsonl: {e}")));
    let mut csv = scenario::CsvSink::create(&dir, &stem)
        .unwrap_or_else(|e| fail(&format!("create {stem}.csv: {e}")));
    scenario::write_all(&records, &mut [&mut jsonl, &mut csv])
        .unwrap_or_else(|e| fail(&format!("write records: {e}")));

    let mut table = Table::new(&[
        "scenario",
        "ok",
        "makespan (s)",
        "logged %",
        "ckpts",
        "fails",
        "rolled back",
        "rolled %",
        "lost (s)",
        "events",
    ]);
    for r in &records {
        let logged_pct = if r.metrics.app_bytes > 0 {
            100.0 * r.metrics.logged_bytes_cumulative as f64 / r.metrics.app_bytes as f64
        } else {
            r.static_logged_pct
        };
        table.row(&[
            r.scenario.clone(),
            if !r.completed && r.status == "static" {
                "-".into()
            } else {
                r.completed.to_string()
            },
            format!("{:.4}", r.makespan_s),
            format!("{logged_pct:.1}%"),
            r.metrics.checkpoints.to_string(),
            r.metrics.failures.to_string(),
            r.metrics.ranks_rolled_back.to_string(),
            format!("{:.1}%", 100.0 * r.rollback_rank_fraction),
            format!("{:.4}", r.lost_work_s),
            r.metrics.events.to_string(),
        ]);
    }
    table.print();
    println!();
    let summary = MatrixSummary::from_records(&records);
    summary.table().print();
    println!();
    println!(
        "{} run(s), {} completed, {:.2}s simulated in {:.2}s wall -> {}/{name}_records.jsonl",
        summary.total_runs,
        summary.total_completed,
        summary.total_simulated_seconds,
        wall.as_secs_f64(),
        dir.display(),
    );
    let incomplete: Vec<&str> = records
        .iter()
        .filter(|r| !r.completed && r.status != "static")
        .map(|r| r.scenario.as_str())
        .collect();
    if !incomplete.is_empty() {
        eprintln!("sweep: {} scenario(s) did not complete:", incomplete.len());
        for s in incomplete {
            eprintln!("  {s}");
        }
        std::process::exit(1);
    }
}
