//! **Table I** — application clustering on 256 processes.
//!
//! For each NAS benchmark skeleton: build the class-D-calibrated
//! application, extract its communication graph, partition it with the
//! paper's cluster count, and report cluster count, expected rollback
//! percentage for a single failure, and logged/total data — side by side
//! with the paper's numbers.
//!
//! Run: `cargo run -p bench --release --bin table1`

use bench::{gb, pct, reset_results, write_row, Table};
use clustering::{partition, ClusteringStats, CommGraph, PartitionConfig};
use serde::Serialize;
use workloads::NasBench;

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    n_clusters: usize,
    rollback_pct: f64,
    logged_gb: f64,
    total_gb: f64,
    logged_pct: f64,
    paper_clusters: usize,
    paper_rollback_pct: f64,
    paper_logged_pct: f64,
    paper_total_gb: f64,
}

fn main() {
    reset_results("table1");
    println!("Table I: application clustering on 256 processes (class-D volumes)");
    println!();
    let mut table = Table::new(&[
        "bench",
        "clusters",
        "rollback%",
        "log/total (GB)",
        "logged%",
        "paper rollback%",
        "paper logged%",
        "paper total GB",
    ]);
    for nas_bench in NasBench::all() {
        // Static analysis at full class-D volume: no simulation needed.
        let cfg = nas_bench.paper_config(1.0);
        let app = nas_bench.build(&cfg);
        let graph = CommGraph::from_application(&app);
        let k = nas_bench.paper_clusters();
        let map = partition(&graph, &PartitionConfig::balanced(k, cfg.n_ranks));
        let stats = ClusteringStats::evaluate(&app, &map);
        table.row(&[
            nas_bench.name().to_string(),
            stats.n_clusters.to_string(),
            pct(stats.avg_rollback_pct),
            format!("{}/{}", gb(stats.logged_bytes), gb(stats.total_bytes)),
            pct(stats.logged_pct()),
            pct(nas_bench.paper_rollback_pct()),
            pct(nas_bench.paper_logged_pct()),
            format!("{:.0}", nas_bench.paper_total_gb()),
        ]);
        write_row(
            "table1",
            &Row {
                bench: nas_bench.name(),
                n_clusters: stats.n_clusters,
                rollback_pct: stats.avg_rollback_pct,
                logged_gb: stats.logged_bytes as f64 / 1e9,
                total_gb: stats.total_bytes as f64 / 1e9,
                logged_pct: stats.logged_pct(),
                paper_clusters: nas_bench.paper_clusters(),
                paper_rollback_pct: nas_bench.paper_rollback_pct(),
                paper_logged_pct: nas_bench.paper_logged_pct(),
                paper_total_gb: nas_bench.paper_total_gb(),
            },
        );
    }
    table.print();
    println!();
    println!("(paper columns: Guermouche et al., IPDPS 2012, Table I)");
}
