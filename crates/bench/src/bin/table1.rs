//! **Table I** — application clustering on 256 processes.
//!
//! For each NAS benchmark skeleton: build the class-D-calibrated
//! application, extract its communication graph, partition it with the
//! paper's cluster count, and report cluster count, expected rollback
//! percentage for a single failure, and logged/total data — side by side
//! with the paper's numbers. Pure static analysis: the scenario specs run
//! with `simulate: false`, and the six partitionings run in parallel.
//!
//! The experiment shape lives in `suites/table1.suite` (embedded at
//! compile time; `sweep --suite suites/table1.suite` runs the same
//! cells): one `static = true` scenario per kernel.
//!
//! Run: `cargo run -p bench --release --bin table1`

use bench::{gb, pct, Artefact, SuiteRun, Table};
use serde::Serialize;
use workloads::NasBench;

const SUITE: &str = include_str!("../../../../suites/table1.suite");

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    n_clusters: usize,
    rollback_pct: f64,
    logged_gb: f64,
    total_gb: f64,
    logged_pct: f64,
    paper_clusters: usize,
    paper_rollback_pct: f64,
    paper_logged_pct: f64,
    paper_total_gb: f64,
}

fn main() {
    let mut artefact = Artefact::begin("table1");
    println!("Table I: application clustering on 256 processes (class-D volumes)");
    println!();
    // Static analysis at full class-D volume: no simulation needed.
    let run = SuiteRun::execute(SUITE, "suites/table1.suite");
    artefact.record_runs(&run.records);

    let mut table = Table::new(&[
        "bench",
        "clusters",
        "rollback%",
        "log/total (GB)",
        "logged%",
        "paper rollback%",
        "paper logged%",
        "paper total GB",
    ]);
    for nas_bench in NasBench::all() {
        let rec = run.one(&nas_bench.name().to_lowercase());
        table.row(&[
            nas_bench.name().to_string(),
            rec.n_clusters.to_string(),
            pct(rec.avg_rollback_pct),
            format!(
                "{}/{}",
                gb(rec.static_logged_bytes),
                gb(rec.static_total_bytes)
            ),
            pct(rec.static_logged_pct),
            pct(nas_bench.paper_rollback_pct()),
            pct(nas_bench.paper_logged_pct()),
            format!("{:.0}", nas_bench.paper_total_gb()),
        ]);
        artefact.row(&Row {
            bench: nas_bench.name(),
            n_clusters: rec.n_clusters,
            rollback_pct: rec.avg_rollback_pct,
            logged_gb: rec.static_logged_bytes as f64 / 1e9,
            total_gb: rec.static_total_bytes as f64 / 1e9,
            logged_pct: rec.static_logged_pct,
            paper_clusters: nas_bench.paper_clusters(),
            paper_rollback_pct: nas_bench.paper_rollback_pct(),
            paper_logged_pct: nas_bench.paper_logged_pct(),
            paper_total_gb: nas_bench.paper_total_gb(),
        });
    }
    table.print();
    println!();
    println!("(paper columns: Guermouche et al., IPDPS 2012, Table I)");
}
