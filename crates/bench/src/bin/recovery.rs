//! **X1 — failure containment & recovery cost** (motivated by §I/§III;
//! the paper argues containment qualitatively, we quantify it).
//!
//! One workload (CG skeleton, 256 ranks, periodic checkpoints), one
//! mid-run failure, three protocols:
//!
//! * HydEE with Table-I clustering — only the failed cluster rolls back;
//! * global coordinated checkpointing — everyone rolls back;
//! * full message logging + event logging — only the failed rank rolls
//!   back, but failure-free execution pays determinant writes.
//!
//! Each protocol runs clean and with the failure (a two-schedule failure
//! axis of the scenario matrix); all six simulations run in parallel.
//! Reported: ranks rolled back, failure-free makespan, makespan with the
//! failure, lost time, log memory.
//!
//! ```text
//! recovery [--fail <ms>:<rank[,rank...]>] [--trace-out FILE] [--sample-out FILE]
//! ```
//!
//! * `--fail` — override the injected failure (default `195:7`)
//! * `--trace-out FILE` — re-run the failed HydEE cell with a
//!   [`telemetry::SpanRecorder`] attached and write a Perfetto-loadable
//!   Chrome trace-event JSON file. The trace is validated before it is
//!   written, and the recovery track is checked to show the
//!   detect → rollback → replay → complete choreography for exactly the
//!   failed cluster(s); the traced run's digest must equal the untraced
//!   one.
//! * `--sample-out FILE` — same re-run, with a [`telemetry::Sampler`]
//!   writing virtual-time series rows (logged bytes, in-flight messages,
//!   queue depth, cumulative waste) as JSONL.
//!
//! Run: `cargo run -p bench --release --bin recovery`

use bench::{gb, Artefact, Table};
use det_sim::{SimDuration, SimTime};
use mps_sim::Rank;
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, Executor, FailureModelSpec, FailureSpec, Matrix,
    ProtocolSpec, StorageSpec,
};
use serde::Serialize;
use std::collections::BTreeSet;
use std::path::PathBuf;
use telemetry::{Fanout, Sampler, SpanRecorder};
use workloads::{NasBench, WorkloadSpec};

const SCALE: f64 = 1.0 / 64.0;
const N: usize = 256;
/// Default: mid-way between two checkpoints so the rolled cluster both
/// loses work and has emitted post-checkpoint inter-cluster messages
/// (orphans).
const FAILURE_MS: u64 = 195;
const CKPT_MS: u64 = 100;

fn fail_usage<T>(msg: &str) -> T {
    eprintln!("recovery: {msg}");
    eprintln!(
        "usage: recovery [--fail <ms>:<rank[,rank...]>] [--trace-out FILE] [--sample-out FILE]"
    );
    std::process::exit(2);
}

/// `<ms>:<rank[,rank...]>` → (time, victims).
fn parse_fail(arg: &str) -> (u64, Vec<u32>) {
    let Some((ms, ranks)) = arg.split_once(':') else {
        fail_usage(&format!("bad --fail `{arg}` (want <ms>:<rank[,rank...]>)"))
    };
    let ms = ms
        .parse()
        .unwrap_or_else(|_| fail_usage(&format!("bad --fail time `{ms}`")));
    let ranks: Vec<u32> = ranks
        .split(',')
        .map(|r| {
            r.trim()
                .parse()
                .unwrap_or_else(|_| fail_usage(&format!("bad --fail rank `{r}`")))
        })
        .collect();
    if ranks.is_empty() {
        fail_usage::<()>("--fail needs at least one rank");
    }
    (ms, ranks)
}

#[derive(Serialize)]
struct Row {
    protocol: &'static str,
    ranks_rolled_back: u64,
    failure_free_s: f64,
    with_failure_s: f64,
    lost_s: f64,
    replayed_mb: f64,
    suppressed_sends: u64,
    logged_peak_gb: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failure_ms = FAILURE_MS;
    let mut victims: Vec<u32> = vec![7];
    let mut trace_out: Option<PathBuf> = None;
    let mut sample_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail_usage(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--fail" => (failure_ms, victims) = parse_fail(&value("--fail")),
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--sample-out" => sample_out = Some(PathBuf::from(value("--sample-out"))),
            "-h" | "--help" => {
                println!(
                    "recovery [--fail <ms>:<rank[,rank...]>] [--trace-out FILE] [--sample-out FILE]"
                );
                return;
            }
            other => fail_usage(&format!("unknown flag `{other}`")),
        }
    }
    if victims.iter().any(|&v| v as usize >= N) {
        fail_usage::<()>(&format!(
            "--fail rank out of range (workload has {N} ranks)"
        ));
    }

    let mut artefact = Artefact::begin("recovery");
    let victim_list = victims
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "X1: containment & recovery — CG skeleton, 256 ranks, failure of rank {victim_list} at {failure_ms} ms"
    );
    println!();

    // ParallelFs storage: the default 1 GB/s exaggerates the coordinated-
    // checkpoint I/O burst so much that checkpoint cost dwarfs the
    // rollback effects this experiment isolates.
    let storage = StorageSpec::ParallelFs;
    let image_bytes = 1 << 20;
    let configs: [(&'static str, ProtocolSpec, ClusterStrategy); 3] = [
        (
            "hydee (16 clusters)",
            ProtocolSpec::Hydee {
                checkpoint: CheckpointPolicySpec::periodic(CKPT_MS),
                image_bytes,
                storage,
                gc: true,
            },
            ClusterStrategy::Partitioned(16),
        ),
        (
            "coordinated (global)",
            ProtocolSpec::Coordinated {
                checkpoint: CheckpointPolicySpec::periodic(CKPT_MS),
                image_bytes,
                storage,
            },
            ClusterStrategy::Single,
        ),
        (
            "full logging + events",
            ProtocolSpec::EventLogged {
                checkpoint: CheckpointPolicySpec::periodic(CKPT_MS),
                image_bytes,
                storage,
            },
            ClusterStrategy::PerRank,
        ),
    ];

    // Per protocol: clean then failed (the matrix's failure axis).
    let workload = WorkloadSpec::Nas {
        bench: NasBench::CG,
        scale: SCALE,
        iterations: None,
    };
    let specs: Vec<_> = configs
        .iter()
        .flat_map(|(_, protocol, clusters)| {
            Matrix::new()
                .workloads([workload.clone()])
                .protocols([*protocol])
                .clusters([*clusters])
                .failure_models([
                    FailureModelSpec::none(),
                    FailureModelSpec::Fixed(vec![FailureSpec::at_ms(failure_ms, victims.clone())]),
                ])
                .expand()
        })
        .collect();
    let records = Executor::new().run(&specs);
    assert_eq!(
        records.len(),
        configs.len() * 2,
        "clean+failed per protocol"
    );
    artefact.record_runs(&records);

    let mut table = Table::new(&[
        "protocol",
        "rolled back",
        "clean",
        "failed",
        "lost",
        "replayed MB",
        "suppressed",
        "log peak GB",
    ]);
    for ((name, _, _), chunk) in configs.iter().zip(records.chunks(2)) {
        let [clean, failed] = [&chunk[0], &chunk[1]];
        assert!(clean.completed, "{name} clean: {}", clean.status);
        assert!(failed.completed, "{name} failed: {}", failed.status);
        assert!(
            failed.trace_consistent,
            "{name}: {} oracle violations",
            failed.trace_violations
        );
        assert_eq!(
            clean.digest, failed.digest,
            "{name}: recovered state diverged"
        );
        // Durations derive from the exact integer picosecond makespans and
        // render through `SimTime`/`SimDuration`'s display helpers — no
        // hand-rolled picosecond division that could drift from the
        // canonical unit handling. Lost time stays *signed*: a failure run
        // finishing faster than the clean run is an anomaly the report
        // must surface, not saturate away.
        let clean_makespan = SimTime::from_ps(clean.makespan_ps);
        let failed_makespan = SimTime::from_ps(failed.makespan_ps);
        let lost_ps = failed.makespan_ps as i128 - clean.makespan_ps as i128;
        let lost_display = format!(
            "{}{}",
            if lost_ps < 0 { "-" } else { "" },
            det_sim::SimDuration::from_ps(lost_ps.unsigned_abs() as u64)
        );
        let row = Row {
            protocol: name,
            ranks_rolled_back: failed.metrics.ranks_rolled_back,
            failure_free_s: clean_makespan.as_secs_f64(),
            with_failure_s: failed_makespan.as_secs_f64(),
            lost_s: failed_makespan.as_secs_f64() - clean_makespan.as_secs_f64(),
            replayed_mb: failed.metrics.replayed_bytes as f64 / 1e6,
            suppressed_sends: failed.metrics.suppressed_sends,
            logged_peak_gb: failed.metrics.logged_bytes_peak as f64 / 1e9,
        };
        table.row(&[
            name.to_string(),
            format!("{}/{}", row.ranks_rolled_back, N),
            clean_makespan.to_string(),
            failed_makespan.to_string(),
            lost_display,
            format!("{:.1}", row.replayed_mb),
            row.suppressed_sends.to_string(),
            gb(failed.metrics.logged_bytes_peak),
        ]);
        artefact.row(&row);
    }
    table.print();
    println!();
    println!("Expected: hydee rolls back 16/256 (one cluster), coordinated 256/256,");
    println!("full logging 1/256 but with the largest log memory and the slowest");
    println!("failure-free run (determinant writes).");

    if trace_out.is_some() || sample_out.is_some() {
        export_telemetry(
            &specs[1],
            &records[1],
            &victims,
            trace_out.as_deref(),
            sample_out.as_deref(),
        );
    }
}

/// Re-run the failed HydEE cell with recorders attached, check the trace
/// against the schema *and* against the recovery choreography the run
/// must have produced, then write the artefacts.
fn export_telemetry(
    spec: &scenario::ScenarioSpec,
    untraced: &scenario::RunRecord,
    victims: &[u32],
    trace_out: Option<&std::path::Path>,
    sample_out: Option<&std::path::Path>,
) {
    assert_eq!(spec.label(), untraced.scenario, "spec/record pairing");
    let (span_rec, trace) = SpanRecorder::new();
    let (sampler, samples) = Sampler::new(SimDuration::from_ms(1));
    let fanout = Fanout::new()
        .push(Box::new(span_rec))
        .push(Box::new(sampler));
    let traced = Executor::run_one_with_recorder(spec, Some(Box::new(fanout)));
    assert_eq!(
        traced.digest, untraced.digest,
        "tracing changed the digest — recorder neutrality broken"
    );

    // The failed cluster(s), from the same clustering the spec resolves.
    let app = spec.workload.build();
    let map = spec.clusters.resolve(&app);
    let expected: BTreeSet<u64> = victims
        .iter()
        .map(|&v| map.cluster_of(Rank(v)) as u64 + 1) // cluster c → tid c+1
        .collect();
    for phase in ["detect", "rollback", "replay", "complete"] {
        let tids: BTreeSet<u64> = trace
            .events()
            .iter()
            .filter(|e| e.name == phase)
            .map(|e| e.tid)
            .collect();
        assert_eq!(
            tids, expected,
            "`{phase}` events must appear on exactly the failed cluster track(s)"
        );
    }

    let json = trace.to_chrome_json();
    let stats = telemetry::validate_chrome_trace(&json).expect("trace validates");
    if let Some(path) = trace_out {
        std::fs::write(path, &json)
            .unwrap_or_else(|e| fail_usage(&format!("write {}: {e}", path.display())));
        println!(
            "trace: {} ({} spans, {} instants, {} tracks) — load in https://ui.perfetto.dev",
            path.display(),
            stats.spans,
            stats.instants,
            stats.tracks
        );
    }
    if let Some(path) = sample_out {
        let rows = samples.rows();
        std::fs::write(path, samples.to_jsonl())
            .unwrap_or_else(|e| fail_usage(&format!("write {}: {e}", path.display())));
        println!(
            "samples: {} ({} rows, 1 ms virtual interval)",
            path.display(),
            rows.len()
        );
    }
}
