//! **X1 — failure containment & recovery cost** (motivated by §I/§III;
//! the paper argues containment qualitatively, we quantify it).
//!
//! One workload (CG skeleton, 256 ranks, periodic checkpoints), one
//! mid-run failure, three protocols:
//!
//! * HydEE with Table-I clustering — only the failed cluster rolls back;
//! * global coordinated checkpointing — everyone rolls back;
//! * full message logging + event logging — only the failed rank rolls
//!   back, but failure-free execution pays determinant writes.
//!
//! Reported: ranks rolled back, failure-free makespan, makespan with the
//! failure, lost time, log memory.
//!
//! Run: `cargo run -p bench --release --bin recovery`

use bench::{gb, reset_results, write_row, Table};
use clustering::{partition, CommGraph, PartitionConfig};
use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{ClusterMap, Rank, RunReport, Sim, SimConfig};
use protocols::{CoordinatedConfig, DeterminantCost, EventLogged, GlobalCoordinated};
use serde::Serialize;
use workloads::NasBench;

const SCALE: f64 = 1.0 / 64.0;
const N: usize = 256;

#[derive(Serialize)]
struct Row {
    protocol: &'static str,
    ranks_rolled_back: u64,
    failure_free_s: f64,
    with_failure_s: f64,
    lost_s: f64,
    replayed_mb: f64,
    suppressed_sends: u64,
    logged_peak_gb: f64,
}

fn app() -> mps_sim::Application {
    NasBench::CG.build(&NasBench::CG.paper_config(SCALE))
}

fn ckpt_interval() -> SimDuration {
    SimDuration::from_ms(100)
}

/// Mid-way between two checkpoints so the rolled cluster both loses work
/// and has emitted post-checkpoint inter-cluster messages (orphans).
fn failure_time() -> SimTime {
    SimTime::from_ms(195)
}

/// Parallel-filesystem aggregate write bandwidth: 50 GB/s. The default
/// 1 GB/s exaggerates the coordinated-checkpoint I/O burst so much that
/// checkpoint cost dwarfs the rollback effects this experiment isolates.
fn storage() -> net_model::StableStorage {
    net_model::StableStorage {
        write_bytes_per_us: 50_000,
        read_bytes_per_us: 100_000,
        ..Default::default()
    }
}

fn hydee_cfg(map: ClusterMap) -> HydeeConfig {
    let mut cfg = HydeeConfig::new(map)
        .with_checkpoints(ckpt_interval())
        .with_image_bytes(1 << 20);
    cfg.storage = storage();
    cfg
}

fn main() {
    reset_results("recovery");
    println!("X1: containment & recovery — CG skeleton, 256 ranks, failure of rank 7 at 195 ms");
    println!();

    let graph = CommGraph::from_application(&app());
    let table1_map = partition(&graph, &PartitionConfig::balanced(16, N));

    let mut table = Table::new(&[
        "protocol",
        "rolled back",
        "clean (s)",
        "failed (s)",
        "lost (s)",
        "replayed MB",
        "suppressed",
        "log peak GB",
    ]);

    type Runner = Box<dyn Fn(bool) -> RunReport>;
    let configs: Vec<(&'static str, Runner)> = vec![
        (
            "hydee (16 clusters)",
            Box::new({
                let map = table1_map.clone();
                move |fail: bool| {
                    let mut sim = Sim::new(
                        app(),
                        SimConfig::default(),
                        Hydee::new(hydee_cfg(map.clone())),
                    );
                    if fail {
                        sim.inject_failure(failure_time(), vec![Rank(7)]);
                    }
                    sim.run()
                }
            }),
        ),
        (
            "coordinated (global)",
            Box::new(|fail: bool| {
                let cfg = CoordinatedConfig {
                    checkpoint_interval: Some(ckpt_interval()),
                    image_bytes: 1 << 20,
                    storage: storage(),
                    ..Default::default()
                };
                let mut sim =
                    Sim::new(app(), SimConfig::default(), GlobalCoordinated::new(cfg));
                if fail {
                    sim.inject_failure(failure_time(), vec![Rank(7)]);
                }
                sim.run()
            }),
        ),
        (
            "full logging + events",
            Box::new(|fail: bool| {
                let inner = Hydee::new(hydee_cfg(ClusterMap::per_rank(N)));
                let mut sim = Sim::new(
                    app(),
                    SimConfig::default(),
                    EventLogged::new(inner, DeterminantCost::default()),
                );
                if fail {
                    sim.inject_failure(failure_time(), vec![Rank(7)]);
                }
                sim.run()
            }),
        ),
    ];

    for (name, runner) in &configs {
        let clean = runner(false);
        let failed = runner(true);
        assert!(clean.completed(), "{name} clean: {:?}", clean.status);
        assert!(failed.completed(), "{name} failed: {:?}", failed.status);
        assert!(
            failed.trace.is_consistent(),
            "{name}: oracle violations {:?}",
            failed.trace.violations
        );
        assert_eq!(
            clean.digests, failed.digests,
            "{name}: recovered state diverged"
        );
        let clean_s = clean.makespan.as_secs_f64();
        let failed_s = failed.makespan.as_secs_f64();
        let row = Row {
            protocol: name,
            ranks_rolled_back: failed.metrics.ranks_rolled_back,
            failure_free_s: clean_s,
            with_failure_s: failed_s,
            lost_s: failed_s - clean_s,
            replayed_mb: failed.metrics.replayed_bytes as f64 / 1e6,
            suppressed_sends: failed.metrics.suppressed_sends,
            logged_peak_gb: failed.metrics.logged_bytes_peak as f64 / 1e9,
        };
        table.row(&[
            name.to_string(),
            format!("{}/{}", row.ranks_rolled_back, N),
            format!("{clean_s:.3}"),
            format!("{failed_s:.3}"),
            format!("{:.3}", row.lost_s),
            format!("{:.1}", row.replayed_mb),
            row.suppressed_sends.to_string(),
            gb(failed.metrics.logged_bytes_peak),
        ]);
        write_row("recovery", &row);
    }
    table.print();
    println!();
    println!("Expected: hydee rolls back 16/256 (one cluster), coordinated 256/256,");
    println!("full logging 1/256 but with the largest log memory and the slowest");
    println!("failure-free run (determinant writes).");
}
