//! **X1 — failure containment & recovery cost** (motivated by §I/§III;
//! the paper argues containment qualitatively, we quantify it).
//!
//! One workload (CG skeleton, 256 ranks, periodic checkpoints), one
//! mid-run failure, three protocols:
//!
//! * HydEE with Table-I clustering — only the failed cluster rolls back;
//! * global coordinated checkpointing — everyone rolls back;
//! * full message logging + event logging — only the failed rank rolls
//!   back, but failure-free execution pays determinant writes.
//!
//! Each protocol runs clean and with the failure (a two-schedule failure
//! axis of the scenario matrix); all six simulations run in parallel.
//! Reported: ranks rolled back, failure-free makespan, makespan with the
//! failure, lost time, log memory.
//!
//! Run: `cargo run -p bench --release --bin recovery`

use bench::{gb, Artefact, Table};
use det_sim::SimTime;
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, Executor, FailureSpec, Matrix, ProtocolSpec, StorageSpec,
};
use serde::Serialize;
use workloads::{NasBench, WorkloadSpec};

const SCALE: f64 = 1.0 / 64.0;
const N: usize = 256;
/// Mid-way between two checkpoints so the rolled cluster both loses work
/// and has emitted post-checkpoint inter-cluster messages (orphans).
const FAILURE_MS: u64 = 195;
const CKPT_MS: u64 = 100;

#[derive(Serialize)]
struct Row {
    protocol: &'static str,
    ranks_rolled_back: u64,
    failure_free_s: f64,
    with_failure_s: f64,
    lost_s: f64,
    replayed_mb: f64,
    suppressed_sends: u64,
    logged_peak_gb: f64,
}

fn main() {
    let mut artefact = Artefact::begin("recovery");
    println!(
        "X1: containment & recovery — CG skeleton, 256 ranks, failure of rank 7 at {FAILURE_MS} ms"
    );
    println!();

    // ParallelFs storage: the default 1 GB/s exaggerates the coordinated-
    // checkpoint I/O burst so much that checkpoint cost dwarfs the
    // rollback effects this experiment isolates.
    let storage = StorageSpec::ParallelFs;
    let image_bytes = 1 << 20;
    let configs: [(&'static str, ProtocolSpec, ClusterStrategy); 3] = [
        (
            "hydee (16 clusters)",
            ProtocolSpec::Hydee {
                checkpoint: CheckpointPolicySpec::periodic(CKPT_MS),
                image_bytes,
                storage,
                gc: true,
            },
            ClusterStrategy::Partitioned(16),
        ),
        (
            "coordinated (global)",
            ProtocolSpec::Coordinated {
                checkpoint: CheckpointPolicySpec::periodic(CKPT_MS),
                image_bytes,
                storage,
            },
            ClusterStrategy::Single,
        ),
        (
            "full logging + events",
            ProtocolSpec::EventLogged {
                checkpoint: CheckpointPolicySpec::periodic(CKPT_MS),
                image_bytes,
                storage,
            },
            ClusterStrategy::PerRank,
        ),
    ];

    // Per protocol: clean then failed (the matrix's failure axis).
    let workload = WorkloadSpec::Nas {
        bench: NasBench::CG,
        scale: SCALE,
        iterations: None,
    };
    let specs: Vec<_> = configs
        .iter()
        .flat_map(|(_, protocol, clusters)| {
            Matrix::new()
                .workloads([workload.clone()])
                .protocols([*protocol])
                .clusters([*clusters])
                .failure_schedules([vec![], vec![FailureSpec::at_ms(FAILURE_MS, vec![7])]])
                .expand()
        })
        .collect();
    let records = Executor::new().run(&specs);
    assert_eq!(
        records.len(),
        configs.len() * 2,
        "clean+failed per protocol"
    );
    artefact.record_runs(&records);

    let mut table = Table::new(&[
        "protocol",
        "rolled back",
        "clean",
        "failed",
        "lost",
        "replayed MB",
        "suppressed",
        "log peak GB",
    ]);
    for ((name, _, _), chunk) in configs.iter().zip(records.chunks(2)) {
        let [clean, failed] = [&chunk[0], &chunk[1]];
        assert!(clean.completed, "{name} clean: {}", clean.status);
        assert!(failed.completed, "{name} failed: {}", failed.status);
        assert!(
            failed.trace_consistent,
            "{name}: {} oracle violations",
            failed.trace_violations
        );
        assert_eq!(
            clean.digest, failed.digest,
            "{name}: recovered state diverged"
        );
        // Durations derive from the exact integer picosecond makespans and
        // render through `SimTime`/`SimDuration`'s display helpers — no
        // hand-rolled picosecond division that could drift from the
        // canonical unit handling. Lost time stays *signed*: a failure run
        // finishing faster than the clean run is an anomaly the report
        // must surface, not saturate away.
        let clean_makespan = SimTime::from_ps(clean.makespan_ps);
        let failed_makespan = SimTime::from_ps(failed.makespan_ps);
        let lost_ps = failed.makespan_ps as i128 - clean.makespan_ps as i128;
        let lost_display = format!(
            "{}{}",
            if lost_ps < 0 { "-" } else { "" },
            det_sim::SimDuration::from_ps(lost_ps.unsigned_abs() as u64)
        );
        let row = Row {
            protocol: name,
            ranks_rolled_back: failed.metrics.ranks_rolled_back,
            failure_free_s: clean_makespan.as_secs_f64(),
            with_failure_s: failed_makespan.as_secs_f64(),
            lost_s: failed_makespan.as_secs_f64() - clean_makespan.as_secs_f64(),
            replayed_mb: failed.metrics.replayed_bytes as f64 / 1e6,
            suppressed_sends: failed.metrics.suppressed_sends,
            logged_peak_gb: failed.metrics.logged_bytes_peak as f64 / 1e9,
        };
        table.row(&[
            name.to_string(),
            format!("{}/{}", row.ranks_rolled_back, N),
            clean_makespan.to_string(),
            failed_makespan.to_string(),
            lost_display,
            format!("{:.1}", row.replayed_mb),
            row.suppressed_sends.to_string(),
            gb(failed.metrics.logged_bytes_peak),
        ]);
        artefact.row(&row);
    }
    table.print();
    println!();
    println!("Expected: hydee rolls back 16/256 (one cluster), coordinated 256/256,");
    println!("full logging 1/256 but with the largest log memory and the slowest");
    println!("failure-free run (determinant writes).");
}
