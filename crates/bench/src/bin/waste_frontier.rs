//! **X4 — the checkpoint waste/efficiency frontier** (§VI).
//!
//! The checkpoint-interval trade-off the paper's §VI discusses: short
//! intervals waste the machine on checkpoint I/O (amplified by the burst
//! contention the storage ledger now prices), long intervals waste it on
//! lost work when a failure rolls clusters back. This artefact sweeps
//! the checkpoint-policy axis — a ladder of fixed intervals plus the
//! adaptive `young-daly` and `log-pressure` policies — over the
//! thousand-rank stencil under seed-driven Poisson failures, and
//! reports each point's `waste_fraction` decomposition (checkpoint
//! overhead vs. lost work).
//!
//! The run fails (exit 1) unless `young-daly` lands a waste fraction no
//! worse than the best *fixed* interval of the ladder times a slack
//! factor — the point of deriving the interval from the failure rate is
//! that nobody has to hand-tune it.
//!
//! The experiment shape lives in `suites/waste_frontier.suite`
//! (embedded at compile time; `sweep --suite suites/waste_frontier.suite`
//! runs the same cells): one scenario whose `checkpoint_policies` axis
//! is the policy ladder.
//!
//! Run: `cargo run -p bench --release --bin waste_frontier`

use bench::{Artefact, SuiteRun, Table};
use scenario::CheckpointPolicySpec;
use serde::Serialize;

const SUITE: &str = include_str!("../../../../suites/waste_frontier.suite");

#[derive(Serialize)]
struct Row {
    policy: String,
    checkpoints: u64,
    checkpoint_overhead_s: f64,
    lost_work_s: f64,
    waste_fraction: f64,
    makespan_s: f64,
    failures: u64,
    digest: u64,
}

fn main() {
    let mut artefact = Artefact::begin("waste_frontier");
    println!("X4: waste/efficiency frontier — stencil, 1024 ranks, 64 clusters, Poisson failures");
    println!();

    // The policy ladder lives on the suite's `checkpoint_policies` axis:
    // fixed intervals bracketing the Young/Daly optimum from both sides,
    // then the adaptive policies. Cells come back in ladder order.
    let run = SuiteRun::execute(SUITE, "suites/waste_frontier.suite");
    artefact.record_runs(&run.records);
    let records = run.scenario("frontier");
    let policies: Vec<CheckpointPolicySpec> = run
        .suite
        .scenarios
        .iter()
        .find(|s| s.name == "frontier")
        .expect("frontier scenario")
        .matrix
        .checkpoint_policies
        .clone();
    assert_eq!(policies.len(), records.len(), "one cell per policy");

    let mut table = Table::new(&[
        "policy",
        "ckpts",
        "ckpt overhead (s)",
        "lost work (s)",
        "waste",
        "makespan (s)",
    ]);
    let mut young_waste = None;
    let mut best_fixed: Option<(String, f64)> = None;
    for (policy, rec) in policies.iter().zip(records) {
        assert!(rec.completed, "{}: {}", rec.scenario, rec.status);
        assert!(rec.trace_consistent, "{}: oracle violations", rec.scenario);
        let row = Row {
            policy: policy.name(),
            checkpoints: rec.metrics.checkpoints,
            checkpoint_overhead_s: rec.checkpoint_overhead_s,
            lost_work_s: rec.lost_work_s,
            waste_fraction: rec.waste_fraction,
            makespan_s: rec.makespan_s,
            failures: rec.metrics.failures,
            digest: rec.digest,
        };
        table.row(&[
            row.policy.clone(),
            row.checkpoints.to_string(),
            format!("{:.3}", row.checkpoint_overhead_s),
            format!("{:.3}", row.lost_work_s),
            format!("{:.4}", row.waste_fraction),
            format!("{:.4}", row.makespan_s),
        ]);
        match policy {
            CheckpointPolicySpec::YoungDaly { .. } => young_waste = Some(row.waste_fraction),
            CheckpointPolicySpec::Periodic { .. }
                if best_fixed
                    .as_ref()
                    .is_none_or(|(_, w)| row.waste_fraction < *w) =>
            {
                best_fixed = Some((row.policy.clone(), row.waste_fraction));
            }
            _ => {}
        }
        artefact.row(&row);
    }
    table.print();
    println!();

    let young = young_waste.expect("young-daly point present");
    let (best_name, best) = best_fixed.expect("fixed ladder present");
    println!("young-daly waste {young:.4}; best fixed interval: {best_name} at {best:.4}");
    // Young/Daly needs no tuning; the hand-ladder gets five tries. A
    // small slack keeps the assertion about adaptivity, not luck.
    if young > best * 1.25 {
        eprintln!(
            "waste_frontier: young-daly ({young:.4}) is more than 25% off the best \
             hand-tuned interval ({best_name}: {best:.4})"
        );
        std::process::exit(1);
    }
    println!("Expected: fixed intervals trace a U-shaped frontier (I/O-burst waste on");
    println!("the left, lost-work waste on the right); young-daly sits near its bottom");
    println!("without hand-tuning, log-pressure tracks inter-cluster traffic instead.");
}
