//! **X4 — the checkpoint waste/efficiency frontier** (§VI).
//!
//! The checkpoint-interval trade-off the paper's §VI discusses: short
//! intervals waste the machine on checkpoint I/O (amplified by the burst
//! contention the storage ledger now prices), long intervals waste it on
//! lost work when a failure rolls clusters back. This artefact sweeps
//! the checkpoint-policy axis — a ladder of fixed intervals plus the
//! adaptive `young-daly` and `log-pressure` policies — over the
//! thousand-rank stencil under seed-driven Poisson failures, and
//! reports each point's `waste_fraction` decomposition (checkpoint
//! overhead vs. lost work).
//!
//! The run fails (exit 1) unless `young-daly` lands a waste fraction no
//! worse than the best *fixed* interval of the ladder times a slack
//! factor — the point of deriving the interval from the failure rate is
//! that nobody has to hand-tune it.
//!
//! Run: `cargo run -p bench --release --bin waste_frontier`

use bench::{Artefact, Table};
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, Executor, FailureModelSpec, ProtocolSpec, ScenarioSpec,
    StorageSpec,
};
use serde::Serialize;
use workloads::WorkloadSpec;

#[derive(Serialize)]
struct Row {
    policy: String,
    checkpoints: u64,
    checkpoint_overhead_s: f64,
    lost_work_s: f64,
    waste_fraction: f64,
    makespan_s: f64,
    failures: u64,
    digest: u64,
}

fn main() {
    let mut artefact = Artefact::begin("waste_frontier");
    println!("X4: waste/efficiency frontier — stencil, 1024 ranks, 64 clusters, Poisson failures");
    println!();

    // Fixed-interval ladder (ms) bracketing the Young/Daly optimum from
    // both sides, plus the adaptive policies.
    let fixed_ms = [1u64, 2, 5, 20, 50];
    let mut policies: Vec<CheckpointPolicySpec> = fixed_ms
        .iter()
        .map(|&ms| CheckpointPolicySpec::Periodic {
            interval_ms: ms,
            first_ms: Some(1),
            stagger_ms: Some(0),
        })
        .collect();
    policies.push(CheckpointPolicySpec::YoungDaly {
        first_ms: Some(1),
        stagger_ms: Some(0),
    });
    policies.push(CheckpointPolicySpec::LogPressure {
        budget_bytes: 8 << 20,
    });

    let specs: Vec<ScenarioSpec> = policies
        .iter()
        .map(|&policy| {
            let mut spec = ScenarioSpec::new(
                WorkloadSpec::Stencil {
                    n_ranks: 1024,
                    iterations: 200,
                    face_bytes: 4096,
                    compute_us: 100,
                    wildcard_recv: false,
                },
                ProtocolSpec::Hydee {
                    checkpoint: policy,
                    image_bytes: 1 << 20,
                    storage: StorageSpec::ParallelFs,
                    gc: true,
                },
                ClusterStrategy::Partitioned(64),
            );
            spec.failure_model = FailureModelSpec::Poisson {
                mtbf_ms: 10_000,
                seed: 7,
                max_failures: 3,
            };
            spec
        })
        .collect();
    let records = Executor::new().run(&specs);
    artefact.record_runs(&records);

    let mut table = Table::new(&[
        "policy",
        "ckpts",
        "ckpt overhead (s)",
        "lost work (s)",
        "waste",
        "makespan (s)",
    ]);
    let mut young_waste = None;
    let mut best_fixed: Option<(String, f64)> = None;
    for (policy, rec) in policies.iter().zip(&records) {
        assert!(rec.completed, "{}: {}", rec.scenario, rec.status);
        assert!(rec.trace_consistent, "{}: oracle violations", rec.scenario);
        let row = Row {
            policy: policy.name(),
            checkpoints: rec.metrics.checkpoints,
            checkpoint_overhead_s: rec.checkpoint_overhead_s,
            lost_work_s: rec.lost_work_s,
            waste_fraction: rec.waste_fraction,
            makespan_s: rec.makespan_s,
            failures: rec.metrics.failures,
            digest: rec.digest,
        };
        table.row(&[
            row.policy.clone(),
            row.checkpoints.to_string(),
            format!("{:.3}", row.checkpoint_overhead_s),
            format!("{:.3}", row.lost_work_s),
            format!("{:.4}", row.waste_fraction),
            format!("{:.4}", row.makespan_s),
        ]);
        match policy {
            CheckpointPolicySpec::YoungDaly { .. } => young_waste = Some(row.waste_fraction),
            CheckpointPolicySpec::Periodic { .. }
                if best_fixed
                    .as_ref()
                    .is_none_or(|(_, w)| row.waste_fraction < *w) =>
            {
                best_fixed = Some((row.policy.clone(), row.waste_fraction));
            }
            _ => {}
        }
        artefact.row(&row);
    }
    table.print();
    println!();

    let young = young_waste.expect("young-daly point present");
    let (best_name, best) = best_fixed.expect("fixed ladder present");
    println!("young-daly waste {young:.4}; best fixed interval: {best_name} at {best:.4}");
    // Young/Daly needs no tuning; the hand-ladder gets five tries. A
    // small slack keeps the assertion about adaptivity, not luck.
    if young > best * 1.25 {
        eprintln!(
            "waste_frontier: young-daly ({young:.4}) is more than 25% off the best \
             hand-tuned interval ({best_name}: {best:.4})"
        );
        std::process::exit(1);
    }
    println!("Expected: fixed intervals trace a U-shaped frontier (I/O-burst waste on");
    println!("the left, lost-work waste on the right); young-daly sits near its bottom");
    println!("without hand-tuning, log-pressure tracks inter-cluster traffic instead.");
}
