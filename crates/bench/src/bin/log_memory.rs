//! **X3 — log memory occupation & garbage collection** (§III-E).
//!
//! Sender-based logging keeps payloads in node memory; the GC of §III-E
//! prunes a sender's log once the receiver's checkpoint covers it
//! (acknowledgement on first post-checkpoint delivery). A long-running
//! 2D stencil on 64 ranks (4 clusters) sweeps the checkpoint interval
//! with GC on and off and reports peak and reclaimed log bytes.
//!
//! Run: `cargo run -p bench --release --bin log_memory`

use bench::{reset_results, write_row, Table};
use det_sim::SimDuration;
use hydee::{Hydee, HydeeConfig};
use mps_sim::{ClusterMap, Sim, SimConfig};
use serde::Serialize;
use workloads::{stencil_2d, StencilConfig};

#[derive(Serialize)]
struct Row {
    ckpt_interval_ms: Option<u64>,
    gc: bool,
    logged_cumulative_mb: f64,
    logged_peak_mb: f64,
    reclaimed_mb: f64,
    checkpoints: u64,
    makespan_s: f64,
}

fn main() {
    reset_results("log_memory");
    println!("X3: sender-log memory vs checkpoint interval — 2D stencil, 64 ranks, 4 clusters");
    println!();
    let mut table = Table::new(&[
        "ckpt interval",
        "GC",
        "cumulative MB",
        "peak MB",
        "reclaimed MB",
        "ckpts",
        "makespan (s)",
    ]);
    let stencil_cfg = StencilConfig {
        n_ranks: 64,
        iterations: 400,
        face_bytes: 256 << 10,
        compute_per_iter: SimDuration::from_us(500),
        wildcard_recv: false,
    };
    for interval_ms in [None, Some(40u64), Some(100), Some(250)] {
        for gc in [true, false] {
            if interval_ms.is_none() && gc {
                // Without checkpoints no ack is ever generated; skip the
                // redundant configuration.
                continue;
            }
            let mut cfg = HydeeConfig::new(ClusterMap::blocks(64, 4))
                .with_image_bytes(1 << 20);
            if let Some(ms) = interval_ms {
                cfg = cfg.with_checkpoints(SimDuration::from_ms(ms));
            }
            if !gc {
                cfg = cfg.without_gc();
            }
            let report = Sim::new(
                stencil_2d(&stencil_cfg),
                SimConfig::default(),
                Hydee::new(cfg),
            )
            .run();
            assert!(report.completed(), "{:?}", report.status);
            let m = &report.metrics;
            let row = Row {
                ckpt_interval_ms: interval_ms,
                gc,
                logged_cumulative_mb: m.logged_bytes_cumulative as f64 / 1e6,
                logged_peak_mb: m.logged_bytes_peak as f64 / 1e6,
                reclaimed_mb: m.gc_reclaimed_bytes as f64 / 1e6,
                checkpoints: m.checkpoints,
                makespan_s: report.makespan.as_secs_f64(),
            };
            table.row(&[
                interval_ms
                    .map(|ms| format!("{ms} ms"))
                    .unwrap_or_else(|| "none".into()),
                if gc { "on" } else { "off" }.to_string(),
                format!("{:.1}", row.logged_cumulative_mb),
                format!("{:.1}", row.logged_peak_mb),
                format!("{:.1}", row.reclaimed_mb),
                row.checkpoints.to_string(),
                format!("{:.3}", row.makespan_s),
            ]);
            write_row("log_memory", &row);
        }
    }
    table.print();
    println!();
    println!("Expected: with GC, peak log memory flattens as the checkpoint interval");
    println!("shrinks; without GC (or without checkpoints) the log grows with the run.");
}
