//! **X3 — log memory occupation & garbage collection** (§III-E).
//!
//! Sender-based logging keeps payloads in node memory; the GC of §III-E
//! prunes a sender's log once the receiver's checkpoint covers it
//! (acknowledgement on first post-checkpoint delivery). A long-running
//! 2D stencil on 64 ranks (4 clusters) sweeps the checkpoint interval
//! with GC on and off and reports peak and reclaimed log bytes. The seven
//! configurations run as one parallel scenario batch.
//!
//! The experiment shape lives in `suites/log_memory.suite` (embedded at
//! compile time; `sweep --suite suites/log_memory.suite` runs the same
//! cells): one scenario whose `protocols` axis is the (interval × GC)
//! ladder.
//!
//! Run: `cargo run -p bench --release --bin log_memory`

use bench::{Artefact, SuiteRun, Table};
use scenario::{CheckpointPolicySpec, ProtocolSpec};
use serde::Serialize;

const SUITE: &str = include_str!("../../../../suites/log_memory.suite");

#[derive(Serialize)]
struct Row {
    ckpt_interval_ms: Option<u64>,
    gc: bool,
    logged_cumulative_mb: f64,
    logged_peak_mb: f64,
    reclaimed_mb: f64,
    checkpoints: u64,
    makespan_s: f64,
}

fn main() {
    let mut artefact = Artefact::begin("log_memory");
    println!("X3: sender-log memory vs checkpoint interval — 2D stencil, 64 ranks, 4 clusters");
    println!();

    // The (interval × GC) ladder lives on the suite's `protocols` axis;
    // each point is read back out of the compiled protocol specs so the
    // report rows stay keyed by (interval, gc) rather than by label.
    let run = SuiteRun::execute(SUITE, "suites/log_memory.suite");
    artefact.record_runs(&run.records);
    let records = run.scenario("gc_ladder");
    let points: Vec<(Option<u64>, bool)> = run
        .suite
        .scenarios
        .iter()
        .find(|s| s.name == "gc_ladder")
        .expect("gc_ladder scenario")
        .matrix
        .protocols
        .iter()
        .map(|p| match p {
            ProtocolSpec::Hydee { checkpoint, gc, .. } => {
                let interval_ms = match checkpoint {
                    CheckpointPolicySpec::Periodic { interval_ms, .. } => Some(*interval_ms),
                    CheckpointPolicySpec::None => None,
                    other => panic!("log_memory sweeps periodic intervals, got {}", other.name()),
                };
                (interval_ms, *gc)
            }
            other => panic!("log_memory is a HydEE experiment, got {}", other.name()),
        })
        .collect();
    assert_eq!(points.len(), records.len(), "one cell per ladder point");

    let mut table = Table::new(&[
        "ckpt interval",
        "GC",
        "cumulative MB",
        "peak MB",
        "reclaimed MB",
        "ckpts",
        "makespan (s)",
    ]);
    for (&(interval_ms, gc), rec) in points.iter().zip(records) {
        assert!(rec.completed, "{}: {}", rec.scenario, rec.status);
        let m = &rec.metrics;
        let row = Row {
            ckpt_interval_ms: interval_ms,
            gc,
            logged_cumulative_mb: m.logged_bytes_cumulative as f64 / 1e6,
            logged_peak_mb: m.logged_bytes_peak as f64 / 1e6,
            reclaimed_mb: m.gc_reclaimed_bytes as f64 / 1e6,
            checkpoints: m.checkpoints,
            makespan_s: rec.makespan_s,
        };
        table.row(&[
            interval_ms
                .map(|ms| format!("{ms} ms"))
                .unwrap_or_else(|| "none".into()),
            if gc { "on" } else { "off" }.to_string(),
            format!("{:.1}", row.logged_cumulative_mb),
            format!("{:.1}", row.logged_peak_mb),
            format!("{:.1}", row.reclaimed_mb),
            row.checkpoints.to_string(),
            format!("{:.3}", row.makespan_s),
        ]);
        artefact.row(&row);
    }
    table.print();
    println!();
    println!("Expected: with GC, peak log memory flattens as the checkpoint interval");
    println!("shrinks; without GC (or without checkpoints) the log grows with the run.");
}
