//! **X3 — log memory occupation & garbage collection** (§III-E).
//!
//! Sender-based logging keeps payloads in node memory; the GC of §III-E
//! prunes a sender's log once the receiver's checkpoint covers it
//! (acknowledgement on first post-checkpoint delivery). A long-running
//! 2D stencil on 64 ranks (4 clusters) sweeps the checkpoint interval
//! with GC on and off and reports peak and reclaimed log bytes. The seven
//! configurations run as one parallel scenario batch.
//!
//! Run: `cargo run -p bench --release --bin log_memory`

use bench::{Artefact, Table};
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, Executor, ProtocolSpec, ScenarioSpec, StorageSpec,
};
use serde::Serialize;
use workloads::WorkloadSpec;

#[derive(Serialize)]
struct Row {
    ckpt_interval_ms: Option<u64>,
    gc: bool,
    logged_cumulative_mb: f64,
    logged_peak_mb: f64,
    reclaimed_mb: f64,
    checkpoints: u64,
    makespan_s: f64,
}

fn main() {
    let mut artefact = Artefact::begin("log_memory");
    println!("X3: sender-log memory vs checkpoint interval — 2D stencil, 64 ranks, 4 clusters");
    println!();

    let workload = WorkloadSpec::Stencil {
        n_ranks: 64,
        iterations: 400,
        face_bytes: 256 << 10,
        compute_us: 500,
        wildcard_recv: false,
    };
    let mut points: Vec<(Option<u64>, bool)> = Vec::new();
    for interval_ms in [None, Some(40u64), Some(100), Some(250)] {
        for gc in [true, false] {
            if interval_ms.is_none() && gc {
                // Without checkpoints no ack is ever generated; skip the
                // redundant configuration.
                continue;
            }
            points.push((interval_ms, gc));
        }
    }
    let specs: Vec<ScenarioSpec> = points
        .iter()
        .map(|&(interval_ms, gc)| {
            ScenarioSpec::new(
                workload.clone(),
                ProtocolSpec::Hydee {
                    checkpoint: match interval_ms {
                        Some(ms) => CheckpointPolicySpec::periodic(ms),
                        None => CheckpointPolicySpec::None,
                    },
                    image_bytes: 1 << 20,
                    storage: StorageSpec::Default,
                    gc,
                },
                ClusterStrategy::Blocks(4),
            )
        })
        .collect();
    let records = Executor::new().run(&specs);
    artefact.record_runs(&records);

    let mut table = Table::new(&[
        "ckpt interval",
        "GC",
        "cumulative MB",
        "peak MB",
        "reclaimed MB",
        "ckpts",
        "makespan (s)",
    ]);
    for (&(interval_ms, gc), rec) in points.iter().zip(&records) {
        assert!(rec.completed, "{}: {}", rec.scenario, rec.status);
        let m = &rec.metrics;
        let row = Row {
            ckpt_interval_ms: interval_ms,
            gc,
            logged_cumulative_mb: m.logged_bytes_cumulative as f64 / 1e6,
            logged_peak_mb: m.logged_bytes_peak as f64 / 1e6,
            reclaimed_mb: m.gc_reclaimed_bytes as f64 / 1e6,
            checkpoints: m.checkpoints,
            makespan_s: rec.makespan_s,
        };
        table.row(&[
            interval_ms
                .map(|ms| format!("{ms} ms"))
                .unwrap_or_else(|| "none".into()),
            if gc { "on" } else { "off" }.to_string(),
            format!("{:.1}", row.logged_cumulative_mb),
            format!("{:.1}", row.logged_peak_mb),
            format!("{:.1}", row.reclaimed_mb),
            row.checkpoints.to_string(),
            format!("{:.3}", row.makespan_s),
        ]);
        artefact.row(&row);
    }
    table.print();
    println!();
    println!("Expected: with GC, peak log memory flattens as the checkpoint interval");
    println!("shrinks; without GC (or without checkpoints) the log grows with the run.");
}
