//! **Figure 6** — NAS benchmark failure-free performance over MX.
//!
//! Normalized execution time (native MPICH2 = 1.0) of the six class-D NAS
//! skeletons on 256 ranks under:
//!
//! * native (no fault tolerance),
//! * full message logging (HydEE machinery with one cluster per rank:
//!   every message piggybacked *and* logged),
//! * HydEE with the Table-I clustering (partial logging).
//!
//! Expected shape (paper): HydEE ≤ ~2 % over native everywhere and at or
//! below full logging; LU (small messages) shows the largest overhead.
//!
//! Run: `cargo run -p bench --release --bin fig6_nas`

use bench::{reset_results, write_row, Table};
use clustering::{partition, CommGraph, PartitionConfig};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{ClusterMap, NullProtocol, Sim, SimConfig};
use serde::Serialize;
use workloads::NasBench;

/// Simulation scale: shrinks class-D message sizes and compute by this
/// factor; ratios (what Figure 6 reports) are scale-invariant because
/// every configuration runs the identical application.
const SCALE: f64 = 1.0 / 64.0;

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    native_s: f64,
    full_logging_norm: f64,
    hydee_norm: f64,
    hydee_overhead_pct: f64,
    logged_pct_hydee: f64,
}

fn run_one(bench: NasBench, clusters: Option<ClusterMap>) -> mps_sim::RunReport {
    let cfg = bench.paper_config(SCALE);
    let app = bench.build(&cfg);
    let report = match clusters {
        None => Sim::new(app, SimConfig::default(), NullProtocol).run(),
        Some(map) => Sim::new(
            app,
            SimConfig::default(),
            Hydee::new(HydeeConfig::new(map)),
        )
        .run(),
    };
    assert!(
        report.completed(),
        "{} failed: {:?}",
        bench.name(),
        report.status
    );
    report
}

fn main() {
    reset_results("fig6_nas");
    println!(
        "Figure 6: NAS failure-free performance, 256 ranks, scale={SCALE:.4} (normalized)"
    );
    println!();
    let mut table = Table::new(&[
        "bench",
        "native (s)",
        "full logging",
        "HydEE (clustering)",
        "HydEE overhead",
        "logged (HydEE)",
    ]);
    for bench in NasBench::all() {
        let native = run_one(bench, None);
        let full = run_one(bench, Some(ClusterMap::per_rank(256)));
        // Partition as in Table I.
        let cfg = bench.paper_config(SCALE);
        let app = bench.build(&cfg);
        let graph = CommGraph::from_application(&app);
        let map = partition(
            &graph,
            &PartitionConfig::balanced(bench.paper_clusters(), 256),
        );
        let hydee = run_one(bench, Some(map));

        let t0 = native.makespan.as_secs_f64();
        let full_norm = full.makespan.as_secs_f64() / t0;
        let hydee_norm = hydee.makespan.as_secs_f64() / t0;
        let logged_pct = 100.0 * hydee.metrics.logged_bytes_cumulative as f64
            / hydee.metrics.app_bytes.max(1) as f64;
        let row = Row {
            bench: bench.name(),
            native_s: t0,
            full_logging_norm: full_norm,
            hydee_norm,
            hydee_overhead_pct: 100.0 * (hydee_norm - 1.0),
            logged_pct_hydee: logged_pct,
        };
        table.row(&[
            bench.name().to_string(),
            format!("{t0:.3}"),
            format!("{full_norm:.4}"),
            format!("{hydee_norm:.4}"),
            format!("{:+.2}%", row.hydee_overhead_pct),
            format!("{logged_pct:.1}%"),
        ]);
        write_row("fig6_nas", &row);
    }
    table.print();
    println!();
    println!("Expected: HydEE overhead <= ~2% (paper: at most 1.25%), below full logging.");
}
