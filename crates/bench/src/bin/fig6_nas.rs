//! **Figure 6** — NAS benchmark failure-free performance over MX.
//!
//! Normalized execution time (native MPICH2 = 1.0) of the six class-D NAS
//! skeletons on 256 ranks under:
//!
//! * native (no fault tolerance),
//! * full message logging (HydEE machinery with one cluster per rank:
//!   every message piggybacked *and* logged),
//! * HydEE with the Table-I clustering (partial logging).
//!
//! All 18 simulations run as one parallel scenario batch.
//!
//! Expected shape (paper): HydEE ≤ ~2 % over native everywhere and at or
//! below full logging; LU (small messages) shows the largest overhead.
//!
//! The experiment shape lives in `suites/fig6.suite` (embedded at
//! compile time; `sweep --suite suites/fig6.suite` runs the same cells):
//! `native`/`full_logging` sweep all six kernels, and one
//! `clustered_<kernel>` scenario per kernel carries its Table-I cluster
//! count.
//!
//! Run: `cargo run -p bench --release --bin fig6_nas`

use bench::{Artefact, SuiteRun, Table};
use serde::Serialize;
use workloads::NasBench;

const SUITE: &str = include_str!("../../../../suites/fig6.suite");

/// Simulation scale: shrinks class-D message sizes and compute by this
/// factor; ratios (what Figure 6 reports) are scale-invariant because
/// every configuration runs the identical application.
const SCALE: f64 = 1.0 / 64.0;

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    native_s: f64,
    full_logging_norm: f64,
    hydee_norm: f64,
    hydee_overhead_pct: f64,
    logged_pct_hydee: f64,
}

fn main() {
    let mut artefact = Artefact::begin("fig6_nas");
    println!("Figure 6: NAS failure-free performance, 256 ranks, scale={SCALE:.4} (normalized)");
    println!();

    // Per bench: native / full logging / HydEE with Table-I clustering
    // (the last one a single-cell scenario per kernel, because the
    // cluster count differs per kernel).
    let run = SuiteRun::execute(SUITE, "suites/fig6.suite");
    assert_eq!(run.records.len(), 3 * NasBench::all().len());
    artefact.record_runs(&run.records);
    let (natives, fulls) = (run.scenario("native"), run.scenario("full_logging"));

    let mut table = Table::new(&[
        "bench",
        "native (s)",
        "full logging",
        "HydEE (clustering)",
        "HydEE overhead",
        "logged (HydEE)",
    ]);
    for (i, bench) in NasBench::all().into_iter().enumerate() {
        let clustered = run.one(&format!("clustered_{}", bench.name().to_lowercase()));
        let [native, full, hydee] = [natives[i], fulls[i], clustered];
        for r in [native, full, hydee] {
            assert!(r.completed, "{} failed: {}", r.scenario, r.status);
            assert!(
                r.workload.starts_with(&format!("nas:{}", bench.name())),
                "suite kernel order drifted: wanted {}, got {}",
                bench.name(),
                r.workload
            );
        }
        let t0 = native.makespan_s;
        let full_norm = full.makespan_s / t0;
        let hydee_norm = hydee.makespan_s / t0;
        let logged_pct = 100.0 * hydee.metrics.logged_bytes_cumulative as f64
            / hydee.metrics.app_bytes.max(1) as f64;
        let row = Row {
            bench: bench.name(),
            native_s: t0,
            full_logging_norm: full_norm,
            hydee_norm,
            hydee_overhead_pct: 100.0 * (hydee_norm - 1.0),
            logged_pct_hydee: logged_pct,
        };
        table.row(&[
            bench.name().to_string(),
            format!("{t0:.3}"),
            format!("{full_norm:.4}"),
            format!("{hydee_norm:.4}"),
            format!("{:+.2}%", row.hydee_overhead_pct),
            format!("{logged_pct:.1}%"),
        ]);
        artefact.row(&row);
    }
    table.print();
    println!();
    println!("Expected: HydEE overhead <= ~2% (paper: at most 1.25%), below full logging.");
}
