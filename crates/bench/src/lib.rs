//! # bench — experiment harnesses for the HydEE reproduction
//!
//! One binary per paper artefact (see `DESIGN.md` §4):
//!
//! | binary | artefact |
//! |---|---|
//! | `table1` | Table I — clustering of the NAS benchmarks |
//! | `fig5_netpipe` | Figure 5 — ping-pong latency/bandwidth degradation |
//! | `fig6_nas` | Figure 6 — NAS normalized execution time |
//! | `recovery` | X1 — containment & recovery cost vs baselines |
//! | `ablation_event_logging` | X2 — what determinant logging would cost |
//! | `log_memory` | X3 — log growth & garbage collection |
//!
//! Each binary prints a human-readable table and appends a JSON line per
//! row to `results/<name>.jsonl` for `EXPERIMENTS.md`.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Where JSON result rows are appended.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HYDEE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Append one serialisable row to `results/<file>.jsonl`.
pub fn write_row<T: Serialize>(file: &str, row: &T) {
    let path = results_dir().join(format!("{file}.jsonl"));
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open results file");
    let line = serde_json::to_string(row).expect("serialise row");
    writeln!(f, "{line}").expect("write row");
}

/// Truncate a results file at the start of a run so reruns stay clean.
pub fn reset_results(file: &str) {
    let path = results_dir().join(format!("{file}.jsonl"));
    let _ = std::fs::remove_file(path);
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("| {} |", joined.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format bytes as GB with 2 decimals.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        t.print();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(gb(2_500_000_000), "2.50");
        assert_eq!(pct(18.094), "18.09%");
    }

    #[test]
    fn write_and_reset_results() {
        std::env::set_var(
            "HYDEE_RESULTS_DIR",
            std::env::temp_dir().join("hydee-test-results"),
        );
        reset_results("unittest");
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        write_row("unittest", &R { x: 1 });
        write_row("unittest", &R { x: 2 });
        let content = std::fs::read_to_string(results_dir().join("unittest.jsonl")).unwrap();
        assert_eq!(content.lines().count(), 2);
        reset_results("unittest");
        assert!(!results_dir().join("unittest.jsonl").exists());
    }
}
