//! # bench — experiment harnesses for the HydEE reproduction
//!
//! One binary per paper artefact (see `DESIGN.md` §4), plus the
//! free-form `sweep` driver:
//!
//! | binary | artefact |
//! |---|---|
//! | `table1` | Table I — clustering of the NAS benchmarks |
//! | `fig5_netpipe` | Figure 5 — ping-pong latency/bandwidth degradation |
//! | `fig6_nas` | Figure 6 — NAS normalized execution time |
//! | `recovery` | X1 — containment & recovery cost vs baselines |
//! | `ablation_event_logging` | X2 — what determinant logging would cost |
//! | `log_memory` | X3 — log growth & garbage collection |
//! | `sweep` | any cross-product of workload × protocol × clustering × network × failures |
//!
//! Every study binary's experiment shape lives in a checked-in suite
//! file (`suites/*.suite`, DESIGN.md §2.6) embedded with `include_str!`
//! and executed through [`SuiteRun`]; `sweep --suite` runs the same
//! files from the command line. Each run
//! writes, under the results directory (`$HYDEE_RESULTS_DIR` or
//! `./results`, resolved once at startup):
//!
//! * `<name>_records.jsonl` / `<name>_records.csv` — the raw typed
//!   [`scenario::RunRecord`]s of every simulation;
//! * `<name>.jsonl` — the artefact's derived rows (the numbers the
//!   paper's table/figure reports), one JSON object per line for
//!   `EXPERIMENTS.md`.

use scenario::{write_all, CsvSink, Executor, JsonlSink, RunRecord, Sink, Suite, SuiteCell};
use serde::Serialize;
use std::path::{Path, PathBuf};

pub mod perf;

pub use scenario::Table;

/// An executed suite: the compiled [`Suite`], its cells and the records
/// in cell order. The study binaries embed their suite file with
/// `include_str!` and fetch records per *scenario name* through this —
/// the suite file owns the experiment shape, the binary only
/// post-processes.
pub struct SuiteRun {
    pub suite: Suite,
    pub cells: Vec<SuiteCell>,
    pub records: Vec<RunRecord>,
}

impl SuiteRun {
    /// Compile embedded suite text and run every cell on the parallel
    /// executor. Panics on a malformed suite — for a checked-in file
    /// that is a build defect, not an input error.
    pub fn execute(text: &str, origin: &str) -> SuiteRun {
        let suite = Suite::parse_str(text, origin)
            .unwrap_or_else(|e| panic!("embedded suite is malformed: {e}"));
        let cells = suite.cells();
        let specs: Vec<_> = cells.iter().map(|c| c.spec.clone()).collect();
        let records = Executor::new().run(&specs);
        SuiteRun {
            suite,
            cells,
            records,
        }
    }

    /// The records of one scenario, in that scenario's cell order.
    /// Panics if the suite has no such scenario or it expanded empty.
    pub fn scenario(&self, name: &str) -> Vec<&RunRecord> {
        let recs: Vec<&RunRecord> = self
            .cells
            .iter()
            .zip(&self.records)
            .filter(|(c, _)| c.scenario == name)
            .map(|(_, r)| r)
            .collect();
        assert!(
            !recs.is_empty(),
            "suite `{}` has no scenario `{name}` (have: {})",
            self.suite.name,
            self.suite
                .scenarios
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        recs
    }

    /// The record of a single-cell scenario; panics if it has ≠ 1 cell.
    pub fn one(&self, name: &str) -> &RunRecord {
        let recs = self.scenario(name);
        assert_eq!(
            recs.len(),
            1,
            "scenario `{name}` has {} cells, expected exactly 1",
            recs.len()
        );
        recs[0]
    }
}

/// Results bookkeeping for one artefact run: owns the output directory
/// (threaded explicitly — nothing here mutates process environment) and
/// the derived-row sink.
pub struct Artefact {
    dir: PathBuf,
    name: &'static str,
    rows: JsonlSink,
}

impl Artefact {
    /// Start an artefact run writing into `dir` (truncates old outputs).
    pub fn begin_in(dir: &Path, name: &'static str) -> Artefact {
        let rows = JsonlSink::create(dir, name).expect("create results file");
        Artefact {
            dir: dir.to_path_buf(),
            name,
            rows,
        }
    }

    /// Start an artefact run in the default results directory
    /// (`$HYDEE_RESULTS_DIR` or `./results`).
    pub fn begin(name: &'static str) -> Artefact {
        Self::begin_in(&scenario::default_results_dir(), name)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write the raw records to `<name>_records.{jsonl,csv}`.
    pub fn record_runs(&self, records: &[RunRecord]) {
        let stem = format!("{}_records", self.name);
        let mut jsonl = JsonlSink::create(&self.dir, &stem).expect("create records jsonl");
        let mut csv = CsvSink::create(&self.dir, &stem).expect("create records csv");
        write_all(records, &mut [&mut jsonl, &mut csv]).expect("write records");
    }

    /// Append one derived artefact row to `<name>.jsonl`. Flushed
    /// immediately so an I/O failure aborts the run instead of being
    /// swallowed by a buffered drop.
    pub fn row<T: Serialize>(&mut self, row: &T) {
        self.rows.write_row(row).expect("write artefact row");
        self.rows.finish().expect("flush artefact row");
    }
}

/// Format bytes as GB with 2 decimals.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(gb(2_500_000_000), "2.50");
        assert_eq!(pct(18.094), "18.09%");
    }

    /// The results directory is an explicit value, not ambient state: two
    /// artefacts in different directories never interfere, so this test
    /// is safe under the parallel test runner (the old env-var plumbing
    /// raced `std::env::set_var` against sibling tests).
    #[test]
    fn artefact_rows_and_reset() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        let dir = std::env::temp_dir().join(format!("hydee-bench-{}", std::process::id()));
        {
            let mut a = Artefact::begin_in(&dir, "unittest");
            a.row(&R { x: 1 });
            a.row(&R { x: 2 });
        }
        let content = std::fs::read_to_string(dir.join("unittest.jsonl")).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert_eq!(content.lines().next().unwrap(), "{\"x\":1}");
        {
            // Restarting the artefact truncates: reruns stay clean.
            let _ = Artefact::begin_in(&dir, "unittest");
        }
        let content = std::fs::read_to_string(dir.join("unittest.jsonl")).unwrap();
        assert!(content.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
