//! # bench::perf — the CI-gated engine performance baseline
//!
//! A fixed macro matrix — checked in as `suites/perf_baseline.suite`
//! and compiled by [`macro_matrix`] — exercising the simulation hot path at
//! the scale the paper's headline experiments need (thousand-rank
//! stencils, clustered HydEE, checkpoint + failure recovery, and a
//! long-horizon 4096-rank cell that only the streaming `RankProgram`
//! representation makes memory-feasible). Each cell separates *setup*
//! (workload generation, cluster resolution — not the engine) from the
//! *timed simulation*, and reports events/second of simulated execution,
//! the program-representation memory win, and the determinism digest.
//!
//! The [`PerfReport`] serializes to `BENCH_engine.json` in a stable,
//! line-diffable schema. CI runs [`check_against`] with the committed
//! baseline: a >20 % events/sec regression or *any* digest drift fails the
//! build. Timing wobbles with runner load — digests never do — so the
//! tolerance applies only to throughput.
//!
//! The schema is versioned: bump [`SCHEMA_VERSION`] (and regenerate the
//! committed baseline) when fields change meaning.

use scenario::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, ProtocolSpec, ScenarioSpec,
    StorageSpec,
};
use serde::Serialize;
use std::time::Instant;
use workloads::WorkloadSpec;

/// v3: added per-cell containment metrics (`failures`,
/// `ranks_rolled_back`, `rollback_rank_fraction`, `lost_work_s`,
/// `recovery_s` — the failure/rollback columns the `FailureModel` regimes
/// make meaningful) and the `stencil1024_poisson` stochastic-failure
/// cell. `failures` and `ranks_rolled_back` are deterministic integers
/// and gated for drift exactly like the digests.
///
/// v4: added per-cell checkpoint-policy columns (`checkpoint_policy`,
/// `checkpoints`, `checkpoint_overhead_s`, `waste_fraction` — the §VI
/// waste/efficiency frontier) and the two `waste_frontier_*` cells
/// (stencil1024 × Poisson failures with checkpoints actually firing:
/// an aggressive fixed interval vs. the adaptive Young/Daly policy).
/// `checkpoints` and `waste_fraction` are deterministic (pure functions
/// of integer virtual time) and gated for drift like the digests.
///
/// v5: added the telemetry-overhead columns (`sim_wall_recorder_s`,
/// `events_per_sec_recorder`, `recorder_overhead_pct` per cell plus the
/// aggregate `recorder_overhead_pct`): every cell is timed twice, with
/// the recorder slot empty and with a [`mps_sim::NoopRecorder`]
/// attached. The digests of the two modes must be bit-for-bit identical
/// (recorders are observers); the aggregate overhead is gated at
/// [`MAX_RECORDER_OVERHEAD_PCT`] by `perf_baseline`. Overhead is
/// wall-clock and is *not* compared against the committed baseline.
///
/// v6: added the parallel-engine columns (`shards`, `barrier_rounds` per
/// cell — the effective shard count the run executed with and the
/// time-window barriers the coordinator ran, both 0/1 for serial cells)
/// and the `stencil4096_long_par` cell: the long-horizon stencil on the
/// conservative sharded engine (DESIGN.md §2.8), whose digest must be
/// bit-for-bit equal to the serial `stencil4096_long` cell
/// ([`check_parallel_speedup`]). Also fixed a measurement artifact in
/// `run_cell`: bare and recorder-attached repeats are now interleaved
/// after a shared warm-up run instead of running all-bare-then-all-
/// recorder, so `recorder_overhead_pct` no longer compares a cold mode
/// against a warm one.
///
/// v7: added the per-cell `topology` column (canonical `TopologySpec`
/// name — endpoint-aware pricing, DESIGN.md §2.9) and the
/// [`PAR_TOPOLOGY_CELL`] cell: the sharded long-horizon stencil again,
/// now under a `fat-tree:4` topology. Flat-topology pricing is a
/// bit-for-bit oracle of the legacy size-only models, so every pre-v7
/// cell's digest, containment integers, checkpoint count and waste
/// fraction are unchanged from the v6 baseline. The fat-tree cell is
/// gated by [`check_topology_lookahead`]: the per-link-class lookahead
/// must buy strictly fewer barrier rounds than the v6 scalar lookahead
/// of the flat [`PAR_SHARDED_CELL`].
pub const SCHEMA_VERSION: u32 = 7;

/// Ceiling on the aggregate throughput cost of the recorder hooks when
/// no recorder does any work: one `Option` check per instrumented site
/// plus gauge assembly per event loop iteration must stay in the noise.
pub const MAX_RECORDER_OVERHEAD_PCT: f64 = 3.0;

/// The serial half of the parallel-engine acceptance pair.
pub const PAR_SERIAL_CELL: &str = "stencil4096_long";
/// The sharded half — same workload on the conservative parallel engine.
pub const PAR_SHARDED_CELL: &str = "stencil4096_long_par";
/// The sharded cell again under a fat-tree topology (schema v7): tiered
/// inter-cluster transit raises the per-pair lookahead floor, so the
/// coordinator must need strictly fewer barrier rounds than the flat
/// cell's scalar lookahead ([`check_topology_lookahead`]).
pub const PAR_TOPOLOGY_CELL: &str = "stencil4096_long_par_fattree";
/// Minimum `events_per_sec` ratio of [`PAR_SHARDED_CELL`] over
/// [`PAR_SERIAL_CELL`] — enforced only when the host exposes at least as
/// many cores as the cell has shards ([`check_parallel_speedup`]).
pub const MIN_PAR_SPEEDUP: f64 = 2.5;

/// The macro matrix as a checked-in suite file: eight single-cell
/// scenarios whose names ARE the gated cell names of
/// `BENCH_engine.json`. [`macro_matrix`] compiles this text; `sweep
/// --suite suites/perf_baseline.suite` runs the identical specs.
pub const SUITE: &str = include_str!("../../../suites/perf_baseline.suite");

/// One point of the macro matrix.
pub struct Cell {
    pub name: String,
    pub spec: ScenarioSpec,
}

/// The shared shape of the `waste_frontier_*` cells: stencil1024 under
/// HydEE/64 clusters with seed-driven Poisson failures, varying only
/// the checkpoint policy.
pub fn waste_frontier_spec(policy: CheckpointPolicySpec) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        WorkloadSpec::Stencil {
            n_ranks: 1024,
            iterations: 200,
            face_bytes: 4096,
            compute_us: 100,
            wildcard_recv: false,
        },
        ProtocolSpec::Hydee {
            checkpoint: policy,
            image_bytes: 1 << 20,
            storage: StorageSpec::ParallelFs,
            gc: true,
        },
        ClusterStrategy::Partitioned(64),
    );
    spec.failure_model = FailureModelSpec::Poisson {
        mtbf_ms: 10_000,
        seed: 7,
        max_failures: 3,
    };
    spec
}

/// The fixed macro matrix, compiled from [`SUITE`]
/// (`suites/perf_baseline.suite`): every scenario there is exactly one
/// cell, and the scenario name is the cell name. Changing a cell
/// invalidates the committed baseline — regenerate `BENCH_engine.json`
/// in the same PR.
pub fn macro_matrix() -> Vec<Cell> {
    let suite = scenario::Suite::parse_str(SUITE, "suites/perf_baseline.suite")
        .unwrap_or_else(|e| panic!("perf_baseline suite is malformed: {e}"));
    let cells: Vec<Cell> = suite
        .cells()
        .into_iter()
        .map(|c| Cell {
            name: c.scenario,
            spec: c.spec,
        })
        .collect();
    assert_eq!(
        cells.len(),
        suite.scenarios.len(),
        "perf_baseline suite scenarios must be single-cell (names are the gated cell names)"
    );
    cells
}

/// Outcome of one timed cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    pub name: String,
    pub n_ranks: usize,
    pub completed: bool,
    pub trace_consistent: bool,
    /// Engine events processed by the timed simulation.
    pub events: u64,
    /// Untimed setup (workload generation + cluster resolution), seconds.
    pub setup_s: f64,
    /// Heap bytes resident in the streamed program representation.
    pub program_resident_bytes: u64,
    /// Heap bytes a fully materialised `Vec<Op>` representation of the
    /// same application would hold (computed in closed form, never
    /// allocated). `program_unrolled_bytes / program_resident_bytes` is
    /// the streaming API's memory win for this cell.
    pub program_unrolled_bytes: u64,
    /// Wall-clock seconds of the timed simulation (best of `repeat`).
    pub sim_wall_s: f64,
    /// `events / sim_wall_s` — the gated throughput metric.
    pub events_per_sec: f64,
    /// Wall-clock seconds with a no-op recorder attached (best of
    /// `repeat`; same digest as the untraced run, asserted).
    pub sim_wall_recorder_s: f64,
    /// `events / sim_wall_recorder_s`.
    pub events_per_sec_recorder: f64,
    /// `100 × (1 − events_per_sec_recorder / events_per_sec)`: the cost
    /// of the recorder plumbing when no recorder does any work. Signed —
    /// small negative values are timing noise.
    pub recorder_overhead_pct: f64,
    /// Failure events injected — deterministic, gated for drift.
    pub failures: u64,
    /// Ranks rolled back across all failures — deterministic, gated.
    pub ranks_rolled_back: u64,
    /// `ranks_rolled_back / (failures * n_ranks)` (0 for clean cells):
    /// the containment headline number.
    pub rollback_rank_fraction: f64,
    /// Simulated compute discarded by rollbacks, seconds.
    pub lost_work_s: f64,
    /// Simulated recovery-orchestration time, seconds.
    pub recovery_s: f64,
    /// Canonical checkpoint-policy name of the cell's protocol.
    pub checkpoint_policy: String,
    /// Checkpoints taken (per-rank count) — deterministic, gated.
    pub checkpoints: u64,
    /// Rank-seconds spent taking checkpoints.
    pub checkpoint_overhead_s: f64,
    /// `(checkpoint_time + lost_work) / (n_ranks × makespan)` — the §VI
    /// waste frontier number; a pure ratio of integer virtual times,
    /// deterministic and gated for drift.
    pub waste_fraction: f64,
    /// Exact integer makespan — determinism golden value.
    pub makespan_ps: u64,
    /// Order-sensitive fold of per-rank state digests — determinism golden
    /// value; must be bit-for-bit stable across machines.
    pub digest: u64,
    /// Canonical topology name of the cell (`flat` unless the cell opts
    /// into tiered endpoint-aware pricing, DESIGN.md §2.9).
    pub topology: String,
    /// Scheduler shards the run actually executed with (1 = serial; the
    /// effective count after clamping, DESIGN.md §2.8).
    pub shards: u32,
    /// Time-window barriers the parallel coordinator ran (0 for serial).
    pub barrier_rounds: u64,
}

/// The whole report, serialized to `BENCH_engine.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    pub schema_version: u32,
    pub cells: Vec<CellResult>,
    pub total_events: u64,
    pub total_sim_wall_s: f64,
    /// `total_events / total_sim_wall_s` over the whole matrix.
    pub aggregate_events_per_sec: f64,
    /// Wall time over the whole matrix with a no-op recorder attached.
    pub total_sim_wall_recorder_s: f64,
    /// Aggregate recorder-plumbing cost:
    /// `100 × (1 − total_sim_wall_s / total_sim_wall_recorder_s)`.
    /// Gated at [`MAX_RECORDER_OVERHEAD_PCT`] by `perf_baseline`.
    pub recorder_overhead_pct: f64,
    /// Peak resident set of the whole process, bytes (0 where unsupported).
    pub peak_rss_bytes: u64,
}

/// Run one cell: untimed setup, one untimed warm-up simulation, then
/// `repeat` *interleaved* bare/recorder simulation pairs keeping the
/// fastest wall time of each mode (every run must produce the identical
/// digest — a mismatch panics, because a nondeterministic engine
/// invalidates every other number in the report).
///
/// The warm-up plus interleaving is load-bearing for
/// `recorder_overhead_pct`: timing all bare repeats first and all
/// recorder repeats second hands the recorder mode a fully warmed
/// process (allocator arenas grown, pages faulted in, branch predictors
/// trained), which systematically biased the overhead low — often
/// negative — instead of measuring the hooks.
pub fn run_cell(cell: &Cell, repeat: u32) -> CellResult {
    let spec = &cell.spec;
    let setup_started = Instant::now();
    // Scope the setup app so only one application image is resident while
    // the timed simulation runs.
    let (map, n_ranks, program_resident_bytes, program_unrolled_bytes) = {
        let app = spec.workload.build();
        (
            spec.clusters.resolve(&app),
            app.n_ranks(),
            app.resident_bytes(),
            app.unrolled_bytes(),
        )
    };
    let setup_s = setup_started.elapsed().as_secs_f64();

    let run_once = |with_recorder: bool| -> (f64, mps_sim::RunReport) {
        let app = spec.workload.build();
        let factory = spec.protocol.to_factory();
        // Same contract as the executor: every run carries its built
        // topology (`Flat` included — the bit-for-bit oracle of the
        // size-only models), so tiered cells price by endpoint here too.
        let mut cfg = spec.sim_config();
        cfg.topology = Some(std::sync::Arc::new(
            spec.topology
                .build(cfg.network.clone(), map.assignment().to_vec()),
        ));
        let mut req = protocols::RunRequest::new(app)
            .sim_config(cfg)
            .failure_model(spec.failure_model.build(&map))
            .clusters(map.clone())
            .shards(spec.shards);
        if with_recorder {
            req = req.recorder(Box::new(mps_sim::NoopRecorder));
        }
        let started = Instant::now();
        let report = factory.run(req);
        (started.elapsed().as_secs_f64(), report)
    };

    // Untimed warm-up; its report is the digest oracle for every timed run.
    let (_, warmup) = run_once(false);

    let mut best: Option<(f64, mps_sim::RunReport)> = None;
    let mut best_recorder: Option<f64> = None;
    for _ in 0..repeat.max(1) {
        let (wall, report) = run_once(false);
        assert_eq!(
            warmup.digests, report.digests,
            "{}: nondeterministic digest across repeats",
            cell.name
        );
        if best.as_ref().is_none_or(|(w, _)| wall < *w) {
            best = Some((wall, report));
        }
        // The recorder run of the same pair: measures what merely
        // *threading* the telemetry hooks costs. A recorder is an
        // observer, so the digests (and event counts) must not move.
        let (wall, traced) = run_once(true);
        assert_eq!(
            warmup.digests, traced.digests,
            "{}: attaching a recorder changed the digest",
            cell.name
        );
        assert_eq!(
            warmup.metrics.events, traced.metrics.events,
            "{}: attaching a recorder changed the event count",
            cell.name
        );
        best_recorder = Some(best_recorder.map_or(wall, |w: f64| w.min(wall)));
    }
    let (sim_wall_s, report) = best.expect("at least one repeat");
    let sim_wall_recorder_s = best_recorder.expect("at least one recorder repeat");

    let events = report.metrics.events;
    let events_per_sec = events as f64 / sim_wall_s.max(1e-9);
    let events_per_sec_recorder = events as f64 / sim_wall_recorder_s.max(1e-9);
    let m = &report.metrics;
    CellResult {
        name: cell.name.clone(),
        n_ranks,
        completed: report.completed(),
        trace_consistent: report.trace.is_consistent(),
        events,
        setup_s,
        program_resident_bytes,
        program_unrolled_bytes,
        sim_wall_s,
        events_per_sec,
        sim_wall_recorder_s,
        events_per_sec_recorder,
        recorder_overhead_pct: 100.0 * (1.0 - events_per_sec_recorder / events_per_sec.max(1e-9)),
        failures: m.failures,
        ranks_rolled_back: m.ranks_rolled_back,
        rollback_rank_fraction: m.rollback_rank_fraction(n_ranks),
        lost_work_s: m.lost_work.as_secs_f64(),
        recovery_s: m.recovery_time.as_secs_f64(),
        checkpoint_policy: spec.protocol.checkpoint_policy().name(),
        checkpoints: m.checkpoints,
        checkpoint_overhead_s: m.checkpoint_time.as_secs_f64(),
        waste_fraction: m.waste_fraction(n_ranks),
        makespan_ps: report.makespan.as_ps(),
        digest: scenario::fold_digests(&report.digests),
        topology: spec.topology.name(),
        shards: report.shards,
        barrier_rounds: report.barrier_rounds,
    }
}

/// Run the whole matrix and assemble the report.
pub fn run_matrix(cells: &[Cell], repeat: u32) -> PerfReport {
    let results: Vec<CellResult> = cells.iter().map(|c| run_cell(c, repeat)).collect();
    let total_events: u64 = results.iter().map(|r| r.events).sum();
    let total_sim_wall_s: f64 = results.iter().map(|r| r.sim_wall_s).sum();
    let total_sim_wall_recorder_s: f64 = results.iter().map(|r| r.sim_wall_recorder_s).sum();
    PerfReport {
        schema_version: SCHEMA_VERSION,
        cells: results,
        total_events,
        total_sim_wall_s,
        aggregate_events_per_sec: total_events as f64 / total_sim_wall_s.max(1e-9),
        total_sim_wall_recorder_s,
        recorder_overhead_pct: 100.0
            * (1.0 - total_sim_wall_s / total_sim_wall_recorder_s.max(1e-9)),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Gate the no-op recorder overhead: `Some(violation)` when the
/// aggregate cost of the disabled telemetry hooks exceeds `max_pct`
/// percent of events/sec throughput.
pub fn check_recorder_overhead(report: &PerfReport, max_pct: f64) -> Option<String> {
    if report.recorder_overhead_pct > max_pct {
        Some(format!(
            "disabled-recorder overhead {:.2}% exceeds the {max_pct:.1}% gate \
             ({:.3}s untraced vs {:.3}s with a no-op recorder attached)",
            report.recorder_overhead_pct, report.total_sim_wall_s, report.total_sim_wall_recorder_s
        ))
    } else {
        None
    }
}

/// Gate the parallel engine against its serial oracle (DESIGN.md §2.8).
///
/// The digest leg is machine-independent and always enforced: the
/// sharded [`PAR_SHARDED_CELL`] must reproduce the serial
/// [`PAR_SERIAL_CELL`] digest (and makespan) bit-for-bit, and must have
/// actually run sharded. The throughput leg — the sharded cell at least
/// `min_speedup`× the serial cell's events/sec — only means something
/// when the host can run the shards concurrently, so it is skipped when
/// `cores` is below the cell's shard count (a 1-core CI runner would
/// time four shards multiplexed onto one core and fail vacuously).
pub fn check_parallel_speedup(report: &PerfReport, min_speedup: f64, cores: usize) -> Vec<String> {
    let cell = |name: &str| report.cells.iter().find(|c| c.name == name);
    let (Some(serial), Some(par)) = (cell(PAR_SERIAL_CELL), cell(PAR_SHARDED_CELL)) else {
        return vec![format!(
            "parallel gate: matrix is missing `{PAR_SERIAL_CELL}` and/or `{PAR_SHARDED_CELL}`"
        )];
    };
    let mut violations = Vec::new();
    if par.shards < 2 {
        violations.push(format!(
            "parallel gate: `{}` ran with {} shard(s) — it fell back to the serial engine",
            par.name, par.shards
        ));
    }
    if (par.digest, par.makespan_ps) != (serial.digest, serial.makespan_ps) {
        violations.push(format!(
            "parallel gate: sharded digest/makespan {:#x}/{} != serial {:#x}/{} — the \
             parallel engine must be bit-for-bit equal to the serial oracle",
            par.digest, par.makespan_ps, serial.digest, serial.makespan_ps
        ));
    }
    if cores >= par.shards.max(1) as usize {
        let speedup = par.events_per_sec / serial.events_per_sec.max(1e-9);
        if speedup < min_speedup {
            violations.push(format!(
                "parallel gate: {:.2}x speedup at {} shards is below the {min_speedup:.1}x \
                 floor ({:.0} vs {:.0} events/s)",
                speedup, par.shards, par.events_per_sec, serial.events_per_sec
            ));
        }
    }
    violations
}

/// Gate the per-link-class lookahead (schema v7, DESIGN.md §2.9).
///
/// [`PAR_TOPOLOGY_CELL`] runs the same sharded workload as
/// [`PAR_SHARDED_CELL`] under a fat-tree topology: tiered inter-cluster
/// links have a strictly higher transit floor than the flat network, so
/// the per-pair lookahead matrix must let every shard advance further
/// between barriers. Machine-independent (barrier rounds are a pure
/// function of integer virtual time), so always enforced: the topology
/// cell must have actually run sharded and must need strictly fewer
/// barrier rounds than the flat cell's scalar lookahead.
pub fn check_topology_lookahead(report: &PerfReport) -> Vec<String> {
    let cell = |name: &str| report.cells.iter().find(|c| c.name == name);
    let (Some(flat), Some(tiered)) = (cell(PAR_SHARDED_CELL), cell(PAR_TOPOLOGY_CELL)) else {
        return vec![format!(
            "topology gate: matrix is missing `{PAR_SHARDED_CELL}` and/or `{PAR_TOPOLOGY_CELL}`"
        )];
    };
    let mut violations = Vec::new();
    if tiered.topology == "flat" {
        violations.push(format!(
            "topology gate: `{}` ran on the flat topology — the cell must opt into a tiered one",
            tiered.name
        ));
    }
    if tiered.shards < 2 {
        violations.push(format!(
            "topology gate: `{}` ran with {} shard(s) — it fell back to the serial engine",
            tiered.name, tiered.shards
        ));
    }
    if tiered.barrier_rounds >= flat.barrier_rounds {
        violations.push(format!(
            "topology gate: {} barrier rounds under `{}` is not strictly below the flat \
             cell's {} — the per-class lookahead matrix is not buying coordination slack",
            tiered.barrier_rounds, tiered.topology, flat.barrier_rounds
        ));
    }
    violations
}

/// Peak resident set size of this process in bytes (`VmHWM`), 0 where the
/// procfs interface is unavailable.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// A cell's gated numbers as extracted from a baseline JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCell {
    pub name: String,
    pub events_per_sec: f64,
    /// Deterministic containment integers (schema v3): gated for drift
    /// like the digest.
    pub failures: u64,
    pub ranks_rolled_back: u64,
    /// Deterministic checkpoint-policy columns (schema v4): gated for
    /// drift like the digest.
    pub checkpoints: u64,
    pub waste_fraction: f64,
    pub digest: u64,
}

/// A committed baseline as extracted from `BENCH_engine.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// `schema_version` of the committed file (`None` if unparseable —
    /// the gate treats that as a mismatch).
    pub schema_version: Option<u32>,
    pub cells: Vec<BaselineCell>,
}

/// Extract the gated fields from a `BENCH_engine.json`. The vendored
/// serde stub only *emits* JSON (DESIGN.md §6), so the checker scans for
/// the fields it gates on instead of parsing the full document —
/// sufficient because the file is machine-written in a fixed field order.
pub fn parse_baseline(text: &str) -> Baseline {
    fn field<'a>(chunk: &'a str, key: &str) -> Option<&'a str> {
        let start = chunk.find(&format!("\"{key}\":"))? + key.len() + 3;
        let rest = &chunk[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }
    // `schema_version` is the report's first field, ahead of any cell.
    let schema_version = field(text, "schema_version").and_then(|v| v.parse().ok());
    let mut cells = Vec::new();
    // Cells are the only objects with a "name" field.
    for chunk in text.split("\"name\":").skip(1) {
        let name = chunk
            .trim_start()
            .trim_start_matches('"')
            .split('"')
            .next()
            .unwrap_or("")
            .to_string();
        let eps = field(chunk, "events_per_sec").and_then(|v| v.parse().ok());
        let digest = field(chunk, "digest").and_then(|v| v.parse().ok());
        let failures = field(chunk, "failures").and_then(|v| v.parse().ok());
        let rolled = field(chunk, "ranks_rolled_back").and_then(|v| v.parse().ok());
        let checkpoints = field(chunk, "checkpoints").and_then(|v| v.parse().ok());
        let waste = field(chunk, "waste_fraction").and_then(|v| v.parse().ok());
        if let (
            Some(events_per_sec),
            Some(digest),
            Some(failures),
            Some(ranks_rolled_back),
            Some(checkpoints),
            Some(waste_fraction),
        ) = (eps, digest, failures, rolled, checkpoints, waste)
        {
            cells.push(BaselineCell {
                name,
                events_per_sec,
                failures,
                ranks_rolled_back,
                checkpoints,
                waste_fraction,
                digest,
            });
        }
    }
    Baseline {
        schema_version,
        cells,
    }
}

/// Compare `report` against a committed baseline. Returns the list of
/// violations (empty = pass): schema-version mismatch, throughput
/// regressions beyond `tolerance` (fractional, e.g. 0.20), and any
/// digest drift.
pub fn check_against(baseline: &Baseline, report: &PerfReport, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.schema_version != Some(report.schema_version) {
        violations.push(format!(
            "baseline schema_version {:?} != current {} — fields may have changed \
             meaning; regenerate the committed BENCH_engine.json",
            baseline.schema_version, report.schema_version
        ));
        // Cell-level comparisons against an incommensurable schema would
        // only add noise.
        return violations;
    }
    for base in &baseline.cells {
        let Some(cur) = report.cells.iter().find(|c| c.name == base.name) else {
            violations.push(format!(
                "cell `{}` present in baseline but not produced (matrix drift — \
                 regenerate the baseline deliberately)",
                base.name
            ));
            continue;
        };
        if cur.digest != base.digest {
            violations.push(format!(
                "cell `{}`: digest {:#x} != baseline {:#x} — determinism broken or \
                 timing model changed without regenerating the baseline",
                base.name, cur.digest, base.digest
            ));
        }
        if (cur.failures, cur.ranks_rolled_back) != (base.failures, base.ranks_rolled_back) {
            violations.push(format!(
                "cell `{}`: containment drift — failures/rolled {}/{} != baseline {}/{} \
                 (failure injection or rollback scope changed without regenerating the baseline)",
                base.name,
                cur.failures,
                cur.ranks_rolled_back,
                base.failures,
                base.ranks_rolled_back
            ));
        }
        // waste_fraction is a pure ratio of integer virtual times: it
        // reproduces exactly, modulo the JSON float round-trip.
        if cur.checkpoints != base.checkpoints
            || (cur.waste_fraction - base.waste_fraction).abs() > 1e-9
        {
            violations.push(format!(
                "cell `{}`: checkpoint drift — checkpoints/waste {}/{:.6} != baseline {}/{:.6} \
                 (checkpoint scheduling or cost model changed without regenerating the baseline)",
                base.name,
                cur.checkpoints,
                cur.waste_fraction,
                base.checkpoints,
                base.waste_fraction
            ));
        }
        let floor = base.events_per_sec * (1.0 - tolerance);
        if cur.events_per_sec < floor {
            violations.push(format!(
                "cell `{}`: {:.0} events/s is below the gate ({:.0} = baseline {:.0} - {:.0}%)",
                base.name,
                cur.events_per_sec,
                floor,
                base.events_per_sec,
                tolerance * 100.0
            ));
        }
    }
    // Matrix drift in the other direction: a cell the baseline has never
    // seen would otherwise ship permanently ungated.
    for cur in &report.cells {
        if !baseline.cells.iter().any(|b| b.name == cur.name) {
            violations.push(format!(
                "cell `{}` produced but absent from the baseline (matrix grew — \
                 regenerate the baseline in the same change)",
                cur.name
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::FailureSpec;
    use workloads::NasBench;

    fn report_with(name: &str, eps: f64, digest: u64) -> PerfReport {
        PerfReport {
            schema_version: SCHEMA_VERSION,
            cells: vec![CellResult {
                name: name.into(),
                n_ranks: 2,
                completed: true,
                trace_consistent: true,
                events: 1000,
                setup_s: 0.0,
                program_resident_bytes: 100,
                program_unrolled_bytes: 10_000,
                sim_wall_s: 0.001,
                events_per_sec: eps,
                sim_wall_recorder_s: 0.001,
                events_per_sec_recorder: eps,
                recorder_overhead_pct: 0.0,
                failures: 1,
                ranks_rolled_back: 2,
                rollback_rank_fraction: 1.0,
                lost_work_s: 0.0,
                recovery_s: 0.0,
                checkpoint_policy: "periodic:interval=5".into(),
                checkpoints: 4,
                checkpoint_overhead_s: 0.25,
                waste_fraction: 0.125,
                makespan_ps: 1,
                digest,
                topology: "flat".into(),
                shards: 1,
                barrier_rounds: 0,
            }],
            total_events: 1000,
            total_sim_wall_s: 0.001,
            aggregate_events_per_sec: eps,
            total_sim_wall_recorder_s: 0.001,
            recorder_overhead_pct: 0.0,
            peak_rss_bytes: 0,
        }
    }

    #[test]
    fn recorder_overhead_gate_trips_above_the_ceiling() {
        let mut report = report_with("c", 1000.0, 7);
        assert!(check_recorder_overhead(&report, MAX_RECORDER_OVERHEAD_PCT).is_none());
        // 5% slower with the no-op recorder attached.
        report.total_sim_wall_recorder_s = report.total_sim_wall_s / 0.95;
        report.recorder_overhead_pct =
            100.0 * (1.0 - report.total_sim_wall_s / report.total_sim_wall_recorder_s);
        let violation = check_recorder_overhead(&report, MAX_RECORDER_OVERHEAD_PCT)
            .expect("5% overhead must trip the 3% gate");
        assert!(violation.contains("overhead"), "{violation}");
        // Negative overhead (recorder run was faster — noise) passes.
        report.recorder_overhead_pct = -1.0;
        assert!(check_recorder_overhead(&report, MAX_RECORDER_OVERHEAD_PCT).is_none());
    }

    #[test]
    fn report_roundtrips_through_the_scanner() {
        let report = report_with("cell_a", 123456.0, 0xDEAD);
        let json = serde_json::to_string(&report).unwrap();
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.schema_version, Some(SCHEMA_VERSION));
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.cells[0].name, "cell_a");
        assert_eq!(parsed.cells[0].digest, 0xDEAD);
        assert!((parsed.cells[0].events_per_sec - 123456.0).abs() < 1e-6);
    }

    #[test]
    fn gate_fails_on_schema_version_mismatch() {
        let mut base =
            parse_baseline(&serde_json::to_string(&report_with("c", 1000.0, 7)).unwrap());
        base.schema_version = Some(SCHEMA_VERSION + 1);
        let violations = check_against(&base, &report_with("c", 1000.0, 7), 0.20);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("schema_version"));
        // An unparseable version is a mismatch too, not a silent pass.
        base.schema_version = None;
        assert!(!check_against(&base, &report_with("c", 1000.0, 7), 0.20).is_empty());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = parse_baseline(&serde_json::to_string(&report_with("c", 1000.0, 7)).unwrap());
        let current = report_with("c", 850.0, 7); // -15% < 20% gate
        assert!(check_against(&base, &current, 0.20).is_empty());
    }

    #[test]
    fn gate_fails_on_regression_and_digest_drift() {
        let base = parse_baseline(&serde_json::to_string(&report_with("c", 1000.0, 7)).unwrap());
        let slow = report_with("c", 700.0, 7); // -30%
        assert_eq!(check_against(&base, &slow, 0.20).len(), 1);
        let drifted = report_with("c", 1000.0, 8);
        let violations = check_against(&base, &drifted, 0.20);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("digest"));
    }

    #[test]
    fn gate_fails_on_matrix_drift_in_either_direction() {
        let base = parse_baseline(&serde_json::to_string(&report_with("old", 1000.0, 7)).unwrap());
        let current = report_with("new", 1000.0, 7);
        // Renamed cell: flagged both as a dropped baseline cell and as an
        // ungated fresh cell.
        let violations = check_against(&base, &current, 0.20);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("not produced")));
        assert!(violations
            .iter()
            .any(|v| v.contains("absent from the baseline")));
    }

    #[test]
    fn macro_matrix_is_nine_cells_with_the_scale_points() {
        let cells = macro_matrix();
        assert_eq!(cells.len(), 9);
        assert_eq!(cells[0].spec.workload.n_ranks(), 1024);
        assert!(cells
            .iter()
            .any(|c| c.spec.failure_model.scheduled_failures() > 0));
        assert!(cells
            .iter()
            .any(|c| matches!(c.spec.failure_model, FailureModelSpec::Poisson { .. })));
        assert!(cells.iter().any(|c| c.spec.workload.n_ranks() == 4096));
        // The parallel acceptance pair: same 4096-rank workload, one
        // serial, one sharded 4 ways.
        let par = cells
            .iter()
            .find(|c| c.name == PAR_SHARDED_CELL)
            .expect("sharded long-horizon cell");
        let serial = cells
            .iter()
            .find(|c| c.name == PAR_SERIAL_CELL)
            .expect("serial long-horizon cell");
        assert_eq!(par.spec.shards, 4);
        assert_eq!(serial.spec.shards, 1);
        assert_eq!(par.spec.workload, serial.spec.workload);
        // The v7 topology cell: the sharded spec under fat-tree pricing.
        let tiered = cells
            .iter()
            .find(|c| c.name == PAR_TOPOLOGY_CELL)
            .expect("fat-tree long-horizon cell");
        assert_eq!(
            tiered.spec.topology,
            scenario::TopologySpec::FatTree { k: 4 }
        );
        assert_eq!(tiered.spec.shards, par.spec.shards);
        assert_eq!(tiered.spec.workload, par.spec.workload);
        assert_eq!(par.spec.topology, scenario::TopologySpec::Flat);
        // The waste-frontier pair varies only the checkpoint policy.
        let frontier: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.name.starts_with("waste_frontier"))
            .collect();
        assert_eq!(frontier.len(), 2);
        let policies: std::collections::BTreeSet<String> = frontier
            .iter()
            .map(|c| c.spec.protocol.checkpoint_policy().name())
            .collect();
        assert_eq!(policies.len(), 2);
        assert!(policies.iter().any(|p| p.starts_with("young-daly")));
        for c in &frontier {
            assert_eq!(c.spec.workload.n_ranks(), 1024);
            assert!(matches!(
                c.spec.failure_model,
                FailureModelSpec::Poisson { .. }
            ));
        }
    }

    /// The suite file must reproduce the pre-suite hand-built matrix
    /// spec-for-spec: spec equality implies digest equality (the engine
    /// is deterministic per spec), so this pins `BENCH_engine.json`
    /// against drift introduced by editing `suites/perf_baseline.suite`.
    #[test]
    fn suite_cells_match_the_handwritten_matrix() {
        let stencil_1024 = WorkloadSpec::Stencil {
            n_ranks: 1024,
            iterations: 200,
            face_bytes: 4096,
            compute_us: 100,
            wildcard_recv: false,
        };
        let cg_failure = {
            let mut spec = ScenarioSpec::new(
                WorkloadSpec::Nas {
                    bench: NasBench::CG,
                    scale: 1.0 / 64.0,
                    iterations: None,
                },
                ProtocolSpec::Hydee {
                    checkpoint: CheckpointPolicySpec::periodic(100),
                    image_bytes: 1 << 20,
                    storage: StorageSpec::ParallelFs,
                    gc: true,
                },
                ClusterStrategy::Partitioned(16),
            );
            spec.failure_model = FailureModelSpec::Fixed(vec![FailureSpec::at_ms(195, vec![7])]);
            spec
        };
        let poisson_5ms = {
            let mut spec = ScenarioSpec::new(
                stencil_1024.clone(),
                ProtocolSpec::Hydee {
                    checkpoint: CheckpointPolicySpec::periodic(5),
                    image_bytes: 1 << 20,
                    storage: StorageSpec::ParallelFs,
                    gc: true,
                },
                ClusterStrategy::Partitioned(64),
            );
            spec.failure_model = FailureModelSpec::Poisson {
                mtbf_ms: 10_000,
                seed: 7,
                max_failures: 3,
            };
            spec
        };
        let oracle: Vec<(&str, ScenarioSpec)> = vec![
            (
                "stencil1024_native",
                ScenarioSpec::new(
                    stencil_1024.clone(),
                    ProtocolSpec::Native,
                    ClusterStrategy::Single,
                ),
            ),
            (
                "stencil1024_hydee64",
                ScenarioSpec::new(
                    stencil_1024,
                    ProtocolSpec::hydee(),
                    ClusterStrategy::Partitioned(64),
                ),
            ),
            ("cg256_hydee16_failure", cg_failure),
            ("stencil1024_poisson", poisson_5ms),
            (
                "waste_frontier_fixed1ms",
                waste_frontier_spec(CheckpointPolicySpec::Periodic {
                    interval_ms: 1,
                    first_ms: Some(1),
                    stagger_ms: Some(0),
                }),
            ),
            (
                "waste_frontier_young_daly",
                waste_frontier_spec(CheckpointPolicySpec::YoungDaly {
                    first_ms: Some(1),
                    stagger_ms: Some(0),
                }),
            ),
            (
                "stencil4096_long",
                ScenarioSpec::new(
                    WorkloadSpec::Stencil {
                        n_ranks: 4096,
                        iterations: 2000,
                        face_bytes: 4096,
                        compute_us: 100,
                        wildcard_recv: false,
                    },
                    ProtocolSpec::Native,
                    ClusterStrategy::Single,
                ),
            ),
            (
                "stencil4096_long_par",
                ScenarioSpec::new(
                    WorkloadSpec::Stencil {
                        n_ranks: 4096,
                        iterations: 2000,
                        face_bytes: 4096,
                        compute_us: 100,
                        wildcard_recv: false,
                    },
                    ProtocolSpec::Native,
                    ClusterStrategy::Blocks(64),
                )
                .with_shards(4),
            ),
            (
                "stencil4096_long_par_fattree",
                ScenarioSpec::new(
                    WorkloadSpec::Stencil {
                        n_ranks: 4096,
                        iterations: 2000,
                        face_bytes: 4096,
                        compute_us: 100,
                        wildcard_recv: false,
                    },
                    ProtocolSpec::Native,
                    ClusterStrategy::Blocks(64),
                )
                .with_shards(4)
                .with_topology(scenario::TopologySpec::FatTree { k: 4 }),
            ),
        ];
        let cells = macro_matrix();
        assert_eq!(cells.len(), oracle.len());
        for (cell, (name, spec)) in cells.iter().zip(&oracle) {
            assert_eq!(&cell.name, name);
            assert_eq!(&cell.spec, spec, "cell `{name}` drifted from the oracle");
        }
    }

    #[test]
    fn gate_fails_on_checkpoint_drift() {
        let base = parse_baseline(&serde_json::to_string(&report_with("c", 1000.0, 7)).unwrap());
        assert_eq!(base.cells[0].checkpoints, 4);
        assert!((base.cells[0].waste_fraction - 0.125).abs() < 1e-12);
        let mut drifted = report_with("c", 1000.0, 7);
        drifted.cells[0].waste_fraction = 0.5;
        let violations = check_against(&base, &drifted, 0.20);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("checkpoint drift"), "{violations:?}");
        let mut drifted = report_with("c", 1000.0, 7);
        drifted.cells[0].checkpoints = 5;
        assert_eq!(check_against(&base, &drifted, 0.20).len(), 1);
    }

    #[test]
    fn gate_fails_on_containment_drift() {
        let base = parse_baseline(&serde_json::to_string(&report_with("c", 1000.0, 7)).unwrap());
        assert_eq!(base.cells[0].failures, 1);
        assert_eq!(base.cells[0].ranks_rolled_back, 2);
        let mut drifted = report_with("c", 1000.0, 7);
        drifted.cells[0].ranks_rolled_back = 64;
        let violations = check_against(&base, &drifted, 0.20);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].contains("containment drift"),
            "{violations:?}"
        );
    }

    #[test]
    fn parallel_gate_checks_digest_always_and_speedup_only_with_cores() {
        let with_pair = |par_eps: f64, par_digest: u64, par_shards: u32| {
            let mut report = report_with(PAR_SERIAL_CELL, 1000.0, 7);
            let mut par = report.cells[0].clone();
            par.name = PAR_SHARDED_CELL.into();
            par.events_per_sec = par_eps;
            par.digest = par_digest;
            par.shards = par_shards;
            par.barrier_rounds = 12;
            report.cells.push(par);
            report
        };
        // Healthy pair: 3x at 4 shards, same digest.
        let healthy = with_pair(3000.0, 7, 4);
        assert!(check_parallel_speedup(&healthy, MIN_PAR_SPEEDUP, 8).is_empty());
        // Too slow: trips only when the host has >= 4 cores.
        let slow = with_pair(1100.0, 7, 4);
        assert_eq!(check_parallel_speedup(&slow, MIN_PAR_SPEEDUP, 8).len(), 1);
        assert!(check_parallel_speedup(&slow, MIN_PAR_SPEEDUP, 1).is_empty());
        // Digest drift trips regardless of core count.
        let drifted = with_pair(3000.0, 8, 4);
        assert!(!check_parallel_speedup(&drifted, MIN_PAR_SPEEDUP, 1).is_empty());
        // A silent serial fallback is a violation even when fast.
        let serial_fallback = with_pair(3000.0, 7, 1);
        assert!(!check_parallel_speedup(&serial_fallback, MIN_PAR_SPEEDUP, 1).is_empty());
        // A matrix without the pair cannot pass.
        let lone = report_with(PAR_SERIAL_CELL, 1000.0, 7);
        assert!(!check_parallel_speedup(&lone, MIN_PAR_SPEEDUP, 8).is_empty());
    }

    #[test]
    fn topology_gate_requires_sharded_tiered_barrier_reduction() {
        let with_cells = |tiered_topology: &str, tiered_shards: u32, tiered_rounds: u64| {
            let mut report = report_with(PAR_SHARDED_CELL, 1000.0, 7);
            report.cells[0].shards = 4;
            report.cells[0].barrier_rounds = 100;
            let mut tiered = report.cells[0].clone();
            tiered.name = PAR_TOPOLOGY_CELL.into();
            tiered.topology = tiered_topology.into();
            tiered.shards = tiered_shards;
            tiered.barrier_rounds = tiered_rounds;
            report.cells.push(tiered);
            report
        };
        // Healthy: tiered, sharded, strictly fewer rounds.
        assert!(check_topology_lookahead(&with_cells("fat-tree:4", 4, 60)).is_empty());
        // Equal rounds is a violation — the gate demands strict reduction.
        assert_eq!(
            check_topology_lookahead(&with_cells("fat-tree:4", 4, 100)).len(),
            1
        );
        // A flat topology or a serial fallback defeats the measurement.
        assert_eq!(
            check_topology_lookahead(&with_cells("flat", 4, 60)).len(),
            1
        );
        assert_eq!(
            check_topology_lookahead(&with_cells("fat-tree:4", 1, 60)).len(),
            1
        );
        // A matrix without the pair cannot pass.
        let lone = report_with(PAR_SHARDED_CELL, 1000.0, 7);
        assert!(!check_topology_lookahead(&lone).is_empty());
    }

    /// The tentpole's acceptance criterion: for every ≥1024-rank cell the
    /// streamed program representation is at least 10× smaller than the
    /// unrolled `Vec<Op>` form it replaced. Machine-independent — computed
    /// from the representations, no timing involved.
    #[test]
    fn streamed_programs_shrink_resident_memory_10x() {
        for cell in macro_matrix() {
            let app = cell.spec.workload.build();
            if app.n_ranks() < 1024 {
                continue;
            }
            let resident = app.resident_bytes();
            let unrolled = app.unrolled_bytes();
            assert!(
                resident * 10 <= unrolled,
                "{}: resident {resident} B vs unrolled {unrolled} B (< 10x win)",
                cell.name
            );
        }
    }
}
