//! Suite files reproduce the bench binaries' historical cells (ISSUE 7
//! tentpole acceptance). Each checked-in `suites/*.suite` compiled and
//! expanded must yield exactly the spec set the binary used to build by
//! hand — spec equality implies digest equality (per-spec bit-for-bit
//! determinism), so these tests pin every artefact's numbers without
//! running a single simulation.
//!
//! Each oracle below is a verbatim port of the binary's pre-suite spec
//! construction (size-/bench-major loops included). Suites expand
//! scenario-major instead, so the tests compare label-sorted multisets,
//! plus per-scenario order where the binary depends on it.

use scenario::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, ProtocolSpec, ScenarioSpec,
    StorageSpec, Suite, SuiteCell,
};
use workloads::{size_ladder, NasBench, WorkloadSpec};

fn load(text: &str, origin: &str) -> Vec<SuiteCell> {
    Suite::parse_str(text, origin)
        .unwrap_or_else(|e| panic!("{e}"))
        .cells()
}

/// Multiset equality via the deterministic unique-within-a-matrix label.
fn assert_same_specs(mut suite: Vec<ScenarioSpec>, mut oracle: Vec<ScenarioSpec>, what: &str) {
    suite.sort_by_key(|s| s.label());
    oracle.sort_by_key(|s| s.label());
    assert_eq!(
        suite.len(),
        oracle.len(),
        "{what}: suite has {} cells, binary built {}",
        suite.len(),
        oracle.len()
    );
    for (s, o) in suite.iter().zip(&oracle) {
        assert_eq!(s, o, "{what}: cell `{}` drifted", o.label());
    }
}

/// The cells one scenario contributes, in suite expansion order.
fn scenario_cells(cells: &[SuiteCell], name: &str) -> Vec<ScenarioSpec> {
    let picked: Vec<ScenarioSpec> = cells
        .iter()
        .filter(|c| c.scenario == name)
        .map(|c| c.spec.clone())
        .collect();
    assert!(!picked.is_empty(), "no scenario `{name}` in suite");
    picked
}

#[test]
fn fig5_suite_matches_the_handwritten_ladder() {
    // Verbatim from the pre-suite fig5_netpipe: size-major over
    // size_ladder(8 MiB), three protocol variants per size.
    const ROUNDS: usize = 20;
    let variants = [
        ("native", ProtocolSpec::Native, ClusterStrategy::Single),
        ("nolog", ProtocolSpec::hydee(), ClusterStrategy::Single),
        ("log", ProtocolSpec::hydee(), ClusterStrategy::PerRank),
    ];
    let sizes = size_ladder(8 << 20);
    let oracle: Vec<ScenarioSpec> = sizes
        .iter()
        .flat_map(|&bytes| {
            variants.map(|(_, protocol, clusters)| {
                ScenarioSpec::new(
                    WorkloadSpec::NetPipe {
                        rounds: ROUNDS,
                        bytes,
                    },
                    protocol,
                    clusters,
                )
            })
        })
        .collect();

    let cells = load(
        include_str!("../../../suites/fig5.suite"),
        "suites/fig5.suite",
    );
    assert_same_specs(
        cells.iter().map(|c| c.spec.clone()).collect(),
        oracle,
        "fig5",
    );
    // The binary indexes scenarios by ladder position: each scenario
    // must hold the whole ladder in ascending size order.
    for (name, protocol, clusters) in variants {
        let got = scenario_cells(&cells, name);
        assert_eq!(got.len(), sizes.len(), "fig5 scenario `{name}`");
        for (spec, &bytes) in got.iter().zip(&sizes) {
            assert_eq!(
                spec.workload,
                WorkloadSpec::NetPipe {
                    rounds: ROUNDS,
                    bytes
                },
                "fig5 `{name}`: ladder order"
            );
            assert_eq!(spec.protocol, protocol);
            assert_eq!(spec.clusters, clusters);
        }
    }
}

#[test]
fn fig6_suite_matches_the_handwritten_matrix() {
    // Verbatim from the pre-suite fig6_nas: bench-major, three variants
    // per bench (native / full logging / Table-I clustering).
    const SCALE: f64 = 1.0 / 64.0;
    let oracle: Vec<ScenarioSpec> = NasBench::all()
        .into_iter()
        .flat_map(|bench| {
            let workload = WorkloadSpec::Nas {
                bench,
                scale: SCALE,
                iterations: None,
            };
            [
                (ProtocolSpec::Native, ClusterStrategy::Single),
                (ProtocolSpec::hydee(), ClusterStrategy::PerRank),
                (
                    ProtocolSpec::hydee(),
                    ClusterStrategy::Partitioned(bench.paper_clusters()),
                ),
            ]
            .map(|(protocol, clusters)| ScenarioSpec::new(workload.clone(), protocol, clusters))
        })
        .collect();

    let cells = load(
        include_str!("../../../suites/fig6.suite"),
        "suites/fig6.suite",
    );
    assert_same_specs(
        cells.iter().map(|c| c.spec.clone()).collect(),
        oracle,
        "fig6",
    );
    // The binary walks `native`/`full_logging` in NasBench::all() order
    // and looks the clustered cell up per bench.
    for name in ["native", "full_logging"] {
        let got = scenario_cells(&cells, name);
        for (spec, bench) in got.iter().zip(NasBench::all()) {
            assert_eq!(
                spec.workload,
                WorkloadSpec::Nas {
                    bench,
                    scale: SCALE,
                    iterations: None
                },
                "fig6 `{name}`: kernel order"
            );
        }
    }
    for bench in NasBench::all() {
        let got = scenario_cells(
            &cells,
            &format!("clustered_{}", bench.name().to_lowercase()),
        );
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0].clusters,
            ClusterStrategy::Partitioned(bench.paper_clusters())
        );
    }
}

#[test]
fn table1_suite_matches_the_handwritten_matrix() {
    // Verbatim from the pre-suite table1: one static-analysis spec per
    // bench at full class-D volume.
    let oracle: Vec<ScenarioSpec> = NasBench::all()
        .into_iter()
        .map(|nas_bench| {
            let mut spec = ScenarioSpec::new(
                WorkloadSpec::Nas {
                    bench: nas_bench,
                    scale: 1.0,
                    iterations: None,
                },
                ProtocolSpec::hydee(),
                ClusterStrategy::Partitioned(nas_bench.paper_clusters()),
            );
            spec.simulate = false;
            spec
        })
        .collect();

    let cells = load(
        include_str!("../../../suites/table1.suite"),
        "suites/table1.suite",
    );
    assert_same_specs(
        cells.iter().map(|c| c.spec.clone()).collect(),
        oracle.clone(),
        "table1",
    );
    // One scenario per bench, named after it.
    for (bench, spec) in NasBench::all().into_iter().zip(&oracle) {
        let got = scenario_cells(&cells, &bench.name().to_lowercase());
        assert_eq!(got, vec![spec.clone()], "table1 `{}`", bench.name());
    }
}

#[test]
fn ablation_suite_matches_the_handwritten_matrix() {
    // Verbatim from the pre-suite ablation_event_logging: bench-major,
    // four variants per bench.
    const SCALE: f64 = 1.0 / 64.0;
    let oracle: Vec<ScenarioSpec> = NasBench::all()
        .into_iter()
        .flat_map(|bench| {
            let workload = WorkloadSpec::Nas {
                bench,
                scale: SCALE,
                iterations: None,
            };
            let table1 = ClusterStrategy::Partitioned(bench.paper_clusters());
            [
                (ProtocolSpec::Native, ClusterStrategy::Single),
                (ProtocolSpec::hydee(), table1),
                (ProtocolSpec::event_logged(), table1),
                (ProtocolSpec::event_logged(), ClusterStrategy::PerRank),
            ]
            .map(|(protocol, clusters)| ScenarioSpec::new(workload.clone(), protocol, clusters))
        })
        .collect();

    let cells = load(
        include_str!("../../../suites/ablation.suite"),
        "suites/ablation.suite",
    );
    assert_same_specs(
        cells.iter().map(|c| c.spec.clone()).collect(),
        oracle,
        "ablation",
    );
    for bench in NasBench::all() {
        let key = bench.name().to_lowercase();
        assert_eq!(scenario_cells(&cells, &format!("hydee_{key}")).len(), 1);
        assert_eq!(scenario_cells(&cells, &format!("det_{key}")).len(), 1);
    }
}

#[test]
fn waste_frontier_suite_matches_the_handwritten_ladder() {
    // Verbatim from the pre-suite waste_frontier: fixed-interval ladder
    // plus the adaptive policies, all over the same Poisson regime.
    let fixed_ms = [1u64, 2, 5, 20, 50];
    let mut policies: Vec<CheckpointPolicySpec> = fixed_ms
        .iter()
        .map(|&ms| CheckpointPolicySpec::Periodic {
            interval_ms: ms,
            first_ms: Some(1),
            stagger_ms: Some(0),
        })
        .collect();
    policies.push(CheckpointPolicySpec::YoungDaly {
        first_ms: Some(1),
        stagger_ms: Some(0),
    });
    policies.push(CheckpointPolicySpec::LogPressure {
        budget_bytes: 8 << 20,
    });
    let oracle: Vec<ScenarioSpec> = policies
        .iter()
        .map(|&policy| {
            let mut spec = ScenarioSpec::new(
                WorkloadSpec::Stencil {
                    n_ranks: 1024,
                    iterations: 200,
                    face_bytes: 4096,
                    compute_us: 100,
                    wildcard_recv: false,
                },
                ProtocolSpec::Hydee {
                    checkpoint: policy,
                    image_bytes: 1 << 20,
                    storage: StorageSpec::ParallelFs,
                    gc: true,
                },
                ClusterStrategy::Partitioned(64),
            );
            spec.failure_model = FailureModelSpec::Poisson {
                mtbf_ms: 10_000,
                seed: 7,
                max_failures: 3,
            };
            spec
        })
        .collect();

    let cells = load(
        include_str!("../../../suites/waste_frontier.suite"),
        "suites/waste_frontier.suite",
    );
    // The binary zips the policy axis against the records, so order
    // matters here, not just the multiset.
    assert_eq!(
        scenario_cells(&cells, "frontier"),
        oracle,
        "waste_frontier ladder"
    );
}

#[test]
fn log_memory_suite_matches_the_handwritten_ladder() {
    // Verbatim from the pre-suite log_memory: (interval × GC) ladder
    // minus the no-checkpoint+GC point, interval-major.
    let workload = WorkloadSpec::Stencil {
        n_ranks: 64,
        iterations: 400,
        face_bytes: 256 << 10,
        compute_us: 500,
        wildcard_recv: false,
    };
    let mut oracle: Vec<ScenarioSpec> = Vec::new();
    for interval_ms in [None, Some(40u64), Some(100), Some(250)] {
        for gc in [true, false] {
            if interval_ms.is_none() && gc {
                continue;
            }
            oracle.push(ScenarioSpec::new(
                workload.clone(),
                ProtocolSpec::Hydee {
                    checkpoint: match interval_ms {
                        Some(ms) => CheckpointPolicySpec::periodic(ms),
                        None => CheckpointPolicySpec::None,
                    },
                    image_bytes: 1 << 20,
                    storage: StorageSpec::Default,
                    gc,
                },
                ClusterStrategy::Blocks(4),
            ));
        }
    }

    let cells = load(
        include_str!("../../../suites/log_memory.suite"),
        "suites/log_memory.suite",
    );
    // Order matters: the binary zips the (interval, gc) points against
    // the records.
    assert_eq!(
        scenario_cells(&cells, "gc_ladder"),
        oracle,
        "log_memory ladder"
    );
}

#[test]
fn perf_baseline_suite_is_covered_by_the_perf_oracle() {
    // The perf-gate cells have their own byte-level oracle in
    // `bench::perf` (`suite_cells_match_the_handwritten_matrix`); here
    // just pin the suite's shape: nine single-cell scenarios.
    let cells = load(
        include_str!("../../../suites/perf_baseline.suite"),
        "suites/perf_baseline.suite",
    );
    let names: Vec<&str> = cells.iter().map(|c| c.scenario.as_str()).collect();
    assert_eq!(
        names,
        [
            "stencil1024_native",
            "stencil1024_hydee64",
            "cg256_hydee16_failure",
            "stencil1024_poisson",
            "waste_frontier_fixed1ms",
            "waste_frontier_young_daly",
            "stencil4096_long",
            "stencil4096_long_par",
            "stencil4096_long_par_fattree",
        ]
    );
}
