//! Serial-vs-sharded equivalence at the engine level (DESIGN.md §2.8):
//! the serial `mps_sim` engine is the oracle, and the merged parallel
//! report must match it bit-for-bit on everything deterministic —
//! digests, every metrics counter, makespan, status. The full
//! cross-protocol matrix lives in `crates/protocols/tests`; this smoke
//! keeps the contract testable from inside the engine pair alone.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{
    Application, CheckpointPolicyConfig, ClusterMap, NullProtocol, RunReport, Sim, SimConfig,
};
use net_model::StorageLedger;
use par_sim::run_sharded;
use std::sync::{Arc, Mutex};
use workloads::WorkloadSpec;

fn stencil(n_ranks: usize, iterations: usize) -> Application {
    WorkloadSpec::Stencil {
        n_ranks,
        iterations,
        face_bytes: 4096,
        compute_us: 50,
        wildcard_recv: false,
    }
    .build()
}

fn assert_equivalent(serial: &RunReport, sharded: &RunReport) {
    assert_eq!(serial.status, sharded.status);
    assert_eq!(serial.digests, sharded.digests);
    assert_eq!(serial.inbox_leftover, sharded.inbox_leftover);
    assert_eq!(serial.makespan, sharded.makespan);
    let a = serde_json::to_string(&serial.metrics).unwrap();
    let b = serde_json::to_string(&sharded.metrics).unwrap();
    assert_eq!(a, b, "metrics diverge");
    assert_eq!(
        serial.trace.matrix.total_bytes(),
        sharded.trace.matrix.total_bytes()
    );
    assert_eq!(
        serial.trace.distinct_messages(),
        sharded.trace.distinct_messages()
    );
    assert!(sharded.trace.is_consistent());
}

#[test]
fn null_protocol_stencil_matches_serial_at_every_shard_count() {
    let clusters = ClusterMap::blocks(16, 4);
    let serial = Sim::new(stencil(16, 8), SimConfig::default(), NullProtocol).run();
    assert!(serial.completed());
    for shards in [1, 2, 3, 4] {
        let par = run_sharded(
            stencil(16, 8),
            SimConfig::default(),
            &clusters,
            shards,
            |_slice| NullProtocol,
            None,
        );
        assert_eq!(par.shards, shards as u32);
        assert_equivalent(&serial, &par);
        if shards > 1 {
            assert!(par.barrier_rounds > 0, "windows must actually run");
        }
    }
}

#[test]
fn hydee_with_periodic_checkpoints_matches_serial() {
    let clusters = ClusterMap::blocks(12, 3);
    let mk_cfg = || {
        HydeeConfig::new(ClusterMap::blocks(12, 3))
            .with_image_bytes(1 << 16)
            .with_policy(CheckpointPolicyConfig::Periodic {
                interval: SimDuration::from_us(300),
                stagger: Some(SimDuration::from_us(40)),
                first: Some(SimTime::from_us(200)),
            })
    };
    let serial = Sim::new(stencil(12, 10), SimConfig::default(), Hydee::new(mk_cfg())).run();
    assert!(serial.completed());
    assert!(serial.metrics.checkpoints > 0, "checkpoints must fire");
    assert!(serial.metrics.logged_bytes_peak > 0, "logs must grow");
    for shards in [2, 3] {
        let ledger = Arc::new(Mutex::new(StorageLedger::new(mk_cfg().storage)));
        let par = run_sharded(
            stencil(12, 10),
            SimConfig::default(),
            &clusters,
            shards,
            |slice| Hydee::sharded(mk_cfg(), ledger.clone(), slice.clusters.clone()),
            None,
        );
        assert_equivalent(&serial, &par);
    }
}

#[test]
fn deadlocked_run_merges_the_stuck_diagnostics() {
    // Rank 1 waits for a message no one sends: the sharded run must
    // report the same deadlock diagnosis as the serial one.
    use mps_sim::{Rank, Tag};
    let build = || {
        let mut app = Application::new(4);
        app.rank_mut(Rank(1)).recv(Rank(0), Tag(9));
        app
    };
    let clusters = ClusterMap::blocks(4, 2);
    let serial = Sim::new(build(), SimConfig::default(), NullProtocol).run();
    let par = run_sharded(
        build(),
        SimConfig::default(),
        &clusters,
        2,
        |_| NullProtocol,
        None,
    );
    assert_eq!(serial.status, par.status);
    assert!(!par.completed());
}
