//! # par-sim — conservative cluster-sharded parallel simulation
//!
//! A parallel front-end for the serial `mps-sim` engine (DESIGN.md §2.8):
//! the rank space is partitioned into **shards of whole clusters**, each
//! shard runs its own engine instance (event queue + scheduler) on its own
//! worker thread, and a coordinator advances all shards through
//! conservative **time windows** derived from the minimum cross-shard
//! transit (the *lookahead*): `NetworkModel::min_transit` for size-only
//! pricing, or — with a topology configured — the minimum over the link
//! classes actually crossing each shard boundary, which is strictly
//! larger on non-flat machines and buys fewer barrier rounds
//! (DESIGN.md §2.9; the per-pair values are reported in
//! `RunReport::pair_lookahead`).
//!
//! The synchronization scheme is null-message-free:
//!
//! 1. find the global minimum `(time, key)` over every shard's next event
//!    (`gmin`);
//! 2. let every shard process its events in `[gmin, gmin + lookahead)` in
//!    parallel — no event in that window can make anything arrive on
//!    another shard before the horizon, because a message executed at
//!    `u ≥ gmin` arrives no earlier than `u + lookahead`;
//! 3. exchange the cross-shard sends produced (their arrival times were
//!    FIFO-adjusted on the sending shard) and repeat.
//!
//! **Timers are never run inside a window.** They are the one event class
//! that touches state shared between shards (the storage-contention
//! ledger, via checkpoint policies), so the coordinator executes them
//! one at a time in global `(time, key)` order — exactly the serial
//! engine's order. Window events commute across shards: they only touch
//! shard-local state.
//!
//! The contract is **bit-for-bit equivalence** with the serial engine:
//! same digests, same metrics, same containment integers (the serial
//! engine stays the oracle, like `UnrolledProgram` before it). It holds
//! because the scheduler orders events by content-derived keys — see
//! `mps_sim::engine::key` — so the pop order of same-instant events does
//! not depend on which engine instance scheduled them. Two deliberate
//! exceptions, both documented in DESIGN.md §2.8: the `max_events`
//! budget is enforced per window round (a sharded run may overshoot the
//! serial cut-off point before noticing), and the byte order of telemetry
//! *trace files* depends on wall-clock interleaving (recorders observe,
//! they never influence).
//!
//! Sharded runs must be failure-free; the caller (`protocols::factory`)
//! routes any run whose failure model expects failures to the serial
//! engine.

use det_sim::{SimDuration, SimTime};
use mps_sim::engine::key;
use mps_sim::{
    Application, ClusterMap, Gauges, LogDelta, Metrics, Protocol, Recorder, RecoveryPhase,
    RemoteEnvelope, RunReport, RunStatus, ShardOutcome, Sim, SimConfig, StorageDir, Trace,
};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

/// Clamp a requested shard count to what the cluster map supports: at
/// least 1, at most one shard per cluster (a cluster is the atomic
/// sharding unit — splitting one would put intra-cluster channels, which
/// have no lookahead guarantee, across a boundary). Returns the effective
/// count and a warning to surface when the request was clamped.
pub fn effective_shards(requested: usize, n_clusters: usize) -> (usize, Option<String>) {
    let req = requested.max(1);
    let cap = n_clusters.max(1);
    if req > cap {
        (
            cap,
            Some(format!(
                "--shards {req} exceeds the {cap} cluster(s); clamping to {cap}"
            )),
        )
    } else {
        (req, None)
    }
}

/// One shard's slice of the machine: a contiguous range of cluster ids.
#[derive(Debug, Clone)]
pub struct ShardSlice {
    pub shard: u32,
    /// Cluster ids this shard owns (ascending, contiguous).
    pub clusters: Vec<u32>,
    /// Ranks owned (sum of member counts).
    pub ranks: usize,
}

/// Partition clusters into `n_shards` contiguous id ranges balanced by
/// rank count (greedy: each shard takes clusters until it reaches the
/// average of what remains, always leaving at least one cluster per
/// remaining shard). Deterministic in the cluster map alone.
///
/// Returns the slices plus the rank → shard table the engines route on.
pub fn assign_shards(clusters: &ClusterMap, n_shards: usize) -> (Vec<ShardSlice>, Arc<Vec<u32>>) {
    let n_clusters = clusters.n_clusters();
    assert!(
        (1..=n_clusters).contains(&n_shards),
        "n_shards {n_shards} out of range 1..={n_clusters} (clamp with effective_shards)"
    );
    let total_ranks = clusters.n_ranks();
    let mut slices = Vec::with_capacity(n_shards);
    let mut shard_of_rank = vec![0u32; total_ranks];
    let mut next_cluster = 0usize;
    let mut assigned_ranks = 0usize;
    for s in 0..n_shards {
        let shards_left = n_shards - s;
        // ceil: the average rank count over the remaining shards.
        let target = (total_ranks - assigned_ranks).div_ceil(shards_left);
        let mut owned = Vec::new();
        let mut ranks = 0usize;
        while next_cluster < n_clusters {
            // Every shard after this one still needs a cluster.
            let clusters_left = n_clusters - next_cluster;
            if !owned.is_empty() && clusters_left < shards_left {
                break;
            }
            if !owned.is_empty() && shards_left > 1 && ranks >= target {
                break;
            }
            let c = next_cluster as u32;
            for &r in clusters.members(c) {
                shard_of_rank[r.idx()] = s as u32;
            }
            ranks += clusters.members(c).len();
            owned.push(c);
            next_cluster += 1;
        }
        assigned_ranks += ranks;
        slices.push(ShardSlice {
            shard: s as u32,
            clusters: owned,
            ranks,
        });
    }
    debug_assert_eq!(next_cluster, n_clusters);
    debug_assert_eq!(assigned_ranks, total_ranks);
    (slices, Arc::new(shard_of_rank))
}

// ---------------------------------------------------------------------------
// Shared recorder
// ---------------------------------------------------------------------------

/// Fan-in wrapper giving every shard the same underlying [`Recorder`].
/// Calls are serialized by the mutex; their interleaving *across shards
/// inside one window* follows wall-clock scheduling, which is why sharded
/// trace files are not byte-stable (DESIGN.md §2.8). Virtual timestamps
/// in the events are exact either way.
#[derive(Clone)]
pub struct SharedRecorder(Arc<Mutex<Box<dyn Recorder>>>);

impl SharedRecorder {
    pub fn new(inner: Box<dyn Recorder>) -> Self {
        SharedRecorder(Arc::new(Mutex::new(inner)))
    }
}

impl Recorder for SharedRecorder {
    fn on_tick(&mut self, now: SimTime, gauges: &Gauges) {
        self.0.lock().unwrap().on_tick(now, gauges);
    }
    fn on_send(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64, replayed: bool) {
        self.0
            .lock()
            .unwrap()
            .on_send(now, src, dst, bytes, replayed);
    }
    fn on_deliver(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) {
        self.0.lock().unwrap().on_deliver(now, src, dst, bytes);
    }
    fn on_failure(&mut self, now: SimTime, ranks: &[u32]) {
        self.0.lock().unwrap().on_failure(now, ranks);
    }
    fn on_checkpoint(&mut self, cluster: u32, begin: SimTime, end: SimTime, bytes: u64) {
        self.0
            .lock()
            .unwrap()
            .on_checkpoint(cluster, begin, end, bytes);
    }
    fn on_recovery_phase(
        &mut self,
        cluster: u32,
        phase: RecoveryPhase,
        begin: SimTime,
        end: SimTime,
    ) {
        self.0
            .lock()
            .unwrap()
            .on_recovery_phase(cluster, phase, begin, end);
    }
    fn on_storage(
        &mut self,
        dir: StorageDir,
        begin: SimTime,
        queued: SimDuration,
        service: SimDuration,
        bytes: u64,
    ) {
        self.0
            .lock()
            .unwrap()
            .on_storage(dir, begin, queued, service, bytes);
    }
    fn on_run_end(&mut self, makespan: SimTime, gauges: &Gauges) {
        self.0.lock().unwrap().on_run_end(makespan, gauges);
    }
}

// ---------------------------------------------------------------------------
// Worker protocol
// ---------------------------------------------------------------------------

enum Cmd<C> {
    /// Inject routed envelopes (possibly none) and report state.
    Exchange(Vec<RemoteEnvelope<C>>),
    /// Process every event strictly before the horizon (stops early at a
    /// timer head).
    RunWindow(SimTime),
    /// Pop and process exactly one event (the coordinator's sequential
    /// phase: timers, degenerate zero-lookahead).
    Step,
    /// Pop and drop the head timer uncounted (global completion reached).
    DiscardTimer,
    /// Tear down and return the shard's outcome.
    Finish,
}

/// Snapshot of a shard's scheduler piggybacked on every reply.
#[derive(Clone, Copy)]
struct ShardState {
    peek: Option<(SimTime, u64)>,
    pending_hot: u64,
    done: bool,
    events: u64,
}

enum Reply<C> {
    State {
        outbox: Vec<RemoteEnvelope<C>>,
        state: ShardState,
    },
    Outcome(Box<ShardOutcome>),
}

fn state_of<P: Protocol>(sim: &mut Sim<P>) -> ShardState {
    ShardState {
        peek: sim.shard_peek(),
        pending_hot: sim.shard_pending_hot(),
        done: sim.shard_done(),
        events: sim.shard_events(),
    }
}

fn worker<P: Protocol>(
    mut sim: Sim<P>,
    rx: mpsc::Receiver<Cmd<P::Ctl>>,
    tx: mpsc::Sender<Reply<P::Ctl>>,
) {
    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            Cmd::Exchange(envs) => {
                sim.shard_inject(envs);
                Reply::State {
                    outbox: Vec::new(),
                    state: state_of(&mut sim),
                }
            }
            Cmd::RunWindow(horizon) => {
                sim.shard_run_window(horizon);
                Reply::State {
                    outbox: sim.shard_take_outbox(),
                    state: state_of(&mut sim),
                }
            }
            Cmd::Step => {
                sim.shard_step();
                Reply::State {
                    outbox: sim.shard_take_outbox(),
                    state: state_of(&mut sim),
                }
            }
            Cmd::DiscardTimer => {
                sim.shard_discard_timer();
                Reply::State {
                    outbox: Vec::new(),
                    state: state_of(&mut sim),
                }
            }
            Cmd::Finish => {
                let _ = tx.send(Reply::Outcome(Box::new(sim.shard_finish())));
                return;
            }
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Run `app` under `protocol` instances sharded over `n_shards` worker
/// threads, merging into one [`RunReport`] bit-for-bit equal (digests,
/// metrics, containment integers) to the serial engine's.
///
/// `make_protocol` is called once per shard, ascending, with the shard's
/// slice; protocols that hold cross-cluster shared state take it shared
/// here (e.g. `Hydee::sharded` with one storage ledger behind a mutex).
/// The run must be failure-free — inject no failures and expect none from
/// a model; the caller enforces this before choosing the parallel path.
pub fn run_sharded<P, F>(
    app: Application,
    config: SimConfig,
    clusters: &ClusterMap,
    n_shards: usize,
    mut make_protocol: F,
    recorder: Option<Box<dyn Recorder>>,
) -> RunReport
where
    P: Protocol + Send,
    P::Ctl: Send,
    F: FnMut(&ShardSlice) -> P,
{
    assert_eq!(clusters.n_ranks(), app.n_ranks());
    let (slices, shard_of_rank) = assign_shards(clusters, n_shards);
    let shared_rec = recorder.map(SharedRecorder::new);

    // Build every shard on this thread, then run `init` in ascending
    // shard order: shared-state mutations during init replay the serial
    // engine's cluster order.
    let mut sims: Vec<Sim<P>> = slices
        .iter()
        .map(|slice| {
            let mut sim = Sim::new_sharded(
                app.clone(),
                config.clone(),
                make_protocol(slice),
                shard_of_rank.clone(),
                slice.shard,
            );
            if let Some(rec) = &shared_rec {
                sim.set_recorder(Box::new(rec.clone()));
            }
            sim
        })
        .collect();
    for sim in &mut sims {
        sim.shard_init();
    }

    // Conservative lookahead. Shards are unions of whole clusters, so
    // every cross-shard message crosses a cluster boundary; with a
    // non-flat topology its transit is bounded below by the link class
    // of the (sender cluster, receiver cluster) pair, not by the global
    // scalar minimum. The horizon therefore widens to the minimum over
    // the link classes *actually crossing shard boundaries* — strictly
    // larger than the legacy scalar whenever the topology distinguishes
    // inter-cluster links, hence tighter windows and fewer barrier
    // rounds (DESIGN.md §2.9). Flat topologies (one class) and the
    // no-topology path keep the v6 scalar and report no pairs.
    let (lookahead, pair_lookahead) = match config.topology.as_deref() {
        Some(topo) if topo.n_classes() > 1 => {
            let mut pairs: Vec<(u32, u32, SimDuration)> = Vec::new();
            for i in 0..slices.len() {
                for j in (i + 1)..slices.len() {
                    let pmin = slices[i]
                        .clusters
                        .iter()
                        .flat_map(|&a| {
                            slices[j]
                                .clusters
                                .iter()
                                .map(move |&b| topo.cluster_min_transit(a, b))
                        })
                        .min();
                    if let Some(t) = pmin {
                        pairs.push((slices[i].shard, slices[j].shard, t));
                    }
                }
            }
            let lookahead = pairs
                .iter()
                .map(|&(_, _, t)| t)
                .min()
                .unwrap_or_else(|| config.network.min_transit());
            (lookahead, pairs)
        }
        _ => (config.network.min_transit(), Vec::new()),
    };
    let max_events = config.max_events;
    let n = sims.len();

    let (outcomes, barrier_rounds, limit_hit) = std::thread::scope(|scope| {
        let mut cmd_tx = Vec::with_capacity(n);
        let mut reply_rx = Vec::with_capacity(n);
        for sim in sims {
            let (ctx, crx) = mpsc::channel::<Cmd<P::Ctl>>();
            let (rtx, rrx) = mpsc::channel::<Reply<P::Ctl>>();
            cmd_tx.push(ctx);
            reply_rx.push(rrx);
            scope.spawn(move || worker(sim, crx, rtx));
        }

        // Routed-but-undelivered cross-shard envelopes, per target shard.
        let mut pending: Vec<Vec<RemoteEnvelope<P::Ctl>>> = (0..n).map(|_| Vec::new()).collect();
        let mut states: Vec<ShardState> = Vec::with_capacity(n);
        let mut barrier_rounds = 0u64;
        let mut limit_hit = false;

        // Prime the state table.
        for tx in cmd_tx.iter().take(n) {
            tx.send(Cmd::Exchange(Vec::new())).unwrap();
        }
        for rx in reply_rx.iter().take(n) {
            states.push(recv_state(rx, &mut pending, &shard_of_rank));
        }

        loop {
            // Deliver what the last phase produced before reading gmin:
            // peeks must include every routed arrival.
            for s in 0..n {
                if !pending[s].is_empty() {
                    cmd_tx[s]
                        .send(Cmd::Exchange(std::mem::take(&mut pending[s])))
                        .unwrap();
                    states[s] = recv_state(&reply_rx[s], &mut pending, &shard_of_rank);
                }
            }

            // Global `max_events` budget, enforced per round (DESIGN.md
            // §2.8: approximate — a window may overshoot the serial
            // cut-off before the coordinator notices).
            if states.iter().map(|st| st.events).sum::<u64>() > max_events {
                limit_hit = true;
                break;
            }

            let all_done = states.iter().all(|st| st.done);
            let hot: u64 = states.iter().map(|st| st.pending_hot).sum();
            if hot == 0 && all_done {
                break; // drain-complete (leftover timers are moot)
            }

            // Global minimum (time, key). Cross-shard (time, key) pairs
            // are distinct by construction (content-derived keys), but a
            // strict `<` keeps the choice deterministic regardless.
            let gmin = states
                .iter()
                .enumerate()
                .filter_map(|(s, st)| st.peek.map(|tk| (tk, s)))
                .min();
            let Some(((tmin, kmin), smin)) = gmin else {
                break; // every queue empty with unfinished ranks: deadlock
            };

            if key::class(kmin) == key::CLASS_TIMER {
                // Timers mutate shared state: execute them one at a time
                // in global (time, key) order — the serial order. After
                // global completion they are discarded uncounted, exactly
                // like the serial drain loop.
                let cmd = if all_done {
                    Cmd::DiscardTimer
                } else {
                    Cmd::Step
                };
                cmd_tx[smin].send(cmd).unwrap();
                states[smin] = recv_state(&reply_rx[smin], &mut pending, &shard_of_rank);
                continue;
            }

            let horizon = tmin + lookahead;
            if horizon <= tmin {
                // Degenerate zero-lookahead model: fall back to stepping
                // the globally next event sequentially.
                cmd_tx[smin].send(Cmd::Step).unwrap();
                states[smin] = recv_state(&reply_rx[smin], &mut pending, &shard_of_rank);
                continue;
            }

            // The parallel phase: every shard advances to the horizon.
            for tx in &cmd_tx {
                tx.send(Cmd::RunWindow(horizon)).unwrap();
            }
            for s in 0..n {
                states[s] = recv_state(&reply_rx[s], &mut pending, &shard_of_rank);
            }
            barrier_rounds += 1;
        }

        let mut outcomes = Vec::with_capacity(n);
        for s in 0..n {
            cmd_tx[s].send(Cmd::Finish).unwrap();
            match reply_rx[s].recv().unwrap() {
                Reply::Outcome(o) => outcomes.push(*o),
                Reply::State { .. } => unreachable!("Finish replies with Outcome"),
            }
        }
        (outcomes, barrier_rounds, limit_hit)
    });

    merge(
        outcomes,
        &shard_of_rank,
        n as u32,
        barrier_rounds,
        pair_lookahead,
        limit_hit,
        shared_rec,
    )
}

/// Receive one [`Reply::State`], routing its outbox into `pending`.
fn recv_state<C>(
    rx: &mpsc::Receiver<Reply<C>>,
    pending: &mut [Vec<RemoteEnvelope<C>>],
    shard_of_rank: &[u32],
) -> ShardState {
    match rx.recv().unwrap() {
        Reply::State { outbox, state } => {
            for env in outbox {
                let mps_sim::Endpoint::Rank(r) = env.dst() else {
                    unreachable!("aux endpoints never cross shards");
                };
                pending[shard_of_rank[r.idx()] as usize].push(env);
            }
            state
        }
        Reply::Outcome(_) => unreachable!("Outcome only replies to Finish"),
    }
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

/// Fan shard outcomes into one [`RunReport`] equal to the serial one.
/// Per-rank vectors pick the owner shard's entry; counters sum;
/// `logged_bytes_peak` is replayed from the merged mutation journal
/// (a running-max over *global* order that per-shard counters cannot
/// recover); the trace is a disjoint union.
fn merge(
    outcomes: Vec<ShardOutcome>,
    shard_of_rank: &[u32],
    shards: u32,
    barrier_rounds: u64,
    pair_lookahead: Vec<(u32, u32, SimDuration)>,
    limit_hit: bool,
    shared_rec: Option<SharedRecorder>,
) -> RunReport {
    let n_ranks = shard_of_rank.len();
    let pick = |f: &dyn Fn(&ShardOutcome, usize) -> u64| -> Vec<u64> {
        (0..n_ranks)
            .map(|i| f(&outcomes[shard_of_rank[i] as usize], i))
            .collect()
    };
    let digests = pick(&|o, i| o.digests[i]);
    let inbox_leftover: Vec<usize> = (0..n_ranks)
        .map(|i| outcomes[shard_of_rank[i] as usize].inbox_leftover[i])
        .collect();
    let makespan = (0..n_ranks)
        .map(|i| outcomes[shard_of_rank[i] as usize].clocks[i])
        .max()
        .unwrap_or(SimTime::ZERO);

    let mut metrics = Metrics::default();
    for o in &outcomes {
        let m = &o.metrics;
        metrics.app_messages += m.app_messages;
        metrics.app_bytes += m.app_bytes;
        metrics.wire_bytes += m.wire_bytes;
        metrics.ctl_messages += m.ctl_messages;
        metrics.ctl_bytes += m.ctl_bytes;
        metrics.deliveries += m.deliveries;
        metrics.events += m.events;
        metrics.logged_messages += m.logged_messages;
        metrics.logged_bytes += m.logged_bytes;
        metrics.logged_bytes_cumulative += m.logged_bytes_cumulative;
        metrics.gc_reclaimed_messages += m.gc_reclaimed_messages;
        metrics.gc_reclaimed_bytes += m.gc_reclaimed_bytes;
        metrics.checkpoints += m.checkpoints;
        metrics.checkpoint_bytes += m.checkpoint_bytes;
        metrics.checkpoint_time += m.checkpoint_time;
        metrics.failures += m.failures;
        metrics.failed_ranks += m.failed_ranks;
        metrics.ranks_rolled_back += m.ranks_rolled_back;
        metrics.lost_work += m.lost_work;
        metrics.suppressed_sends += m.suppressed_sends;
        metrics.replayed_messages += m.replayed_messages;
        metrics.replayed_bytes += m.replayed_bytes;
        metrics.recovery_time += m.recovery_time;
    }
    metrics.makespan = makespan;
    metrics.logged_bytes_peak = replay_log_peak(&outcomes);

    let mut trace: Option<Trace> = None;
    for o in outcomes.iter() {
        match &mut trace {
            None => trace = Some(o.trace.clone()),
            Some(t) => t.absorb(o.trace.clone()),
        }
    }
    let trace = trace.expect("at least one shard");

    let status = if limit_hit {
        RunStatus::EventLimit
    } else if outcomes.iter().all(|o| o.done) {
        RunStatus::Completed
    } else {
        let mut stuck: Vec<(u32, String)> = outcomes.iter().flat_map(|o| o.stuck.clone()).collect();
        stuck.sort_by_key(|&(r, _)| r);
        RunStatus::Deadlock(stuck.into_iter().map(|(_, d)| d).collect())
    };

    // One global `on_run_end`, with gauges synthesized from the merged
    // metrics (the live queue/inflight gauges are per-shard notions that
    // are all zero-or-moot once the run has drained).
    if let Some(mut rec) = shared_rec {
        let gauges = Gauges {
            events: metrics.events,
            queue_depth: 0,
            inflight_msgs: 0,
            logged_bytes: metrics.logged_bytes,
            deliveries: metrics.deliveries,
            checkpoint_time_ps: metrics.checkpoint_time.as_ps(),
            lost_work_ps: metrics.lost_work.as_ps(),
        };
        rec.on_run_end(makespan, &gauges);
    }

    RunReport {
        status,
        metrics,
        trace,
        digests,
        inbox_leftover,
        makespan,
        shards,
        barrier_rounds,
        pair_lookahead,
    }
}

/// Replay every shard's sender-log mutation journal in merged global
/// `(time, event key, intra-event index)` order, tracking the running
/// total's maximum — the serial `logged_bytes_peak`.
fn replay_log_peak(outcomes: &[ShardOutcome]) -> u64 {
    let mut deltas: Vec<LogDelta> = outcomes
        .iter()
        .flat_map(|o| o.log_timeline.iter().copied())
        .collect();
    // Stamps are globally unique: cross-shard (time, key) pairs are
    // distinct by construction and `sub` orders within one event.
    deltas.sort_unstable_by_key(|d| (d.at, d.key, d.sub));
    let mut level = 0i64;
    let mut peak = 0i64;
    for d in deltas {
        level += d.delta;
        peak = peak.max(level);
    }
    debug_assert!(level >= 0);
    peak.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sim::ClusterMap;

    #[test]
    fn effective_shards_clamps_with_warning() {
        assert_eq!(effective_shards(4, 8), (4, None));
        assert_eq!(effective_shards(8, 8), (8, None));
        let (n, warn) = effective_shards(16, 8);
        assert_eq!(n, 8);
        let warn = warn.expect("clamping warns");
        assert!(warn.contains("16") && warn.contains("8"), "{warn}");
        // Degenerate requests still produce a runnable plan.
        assert_eq!(effective_shards(0, 8), (1, None));
        let (n, warn) = effective_shards(3, 1);
        assert_eq!(n, 1);
        assert!(warn.is_some());
    }

    #[test]
    fn assign_shards_is_contiguous_and_balanced() {
        let map = ClusterMap::blocks(64, 16); // 16 clusters of 4
        let (slices, sor) = assign_shards(&map, 4);
        assert_eq!(slices.len(), 4);
        // Contiguous cluster ranges covering everything exactly once.
        let all: Vec<u32> = slices.iter().flat_map(|s| s.clusters.clone()).collect();
        assert_eq!(all, (0..16).collect::<Vec<u32>>());
        // Uniform clusters balance exactly.
        for s in &slices {
            assert_eq!(s.ranks, 16);
        }
        // The rank table matches the slices.
        for slice in &slices {
            for &c in &slice.clusters {
                for &r in map.members(c) {
                    assert_eq!(sor[r.idx()], slice.shard);
                }
            }
        }
    }

    #[test]
    fn assign_shards_balances_uneven_clusters() {
        // 3 clusters of 5,1,1 ranks over 2 shards: the greedy split puts
        // the big cluster alone (5 >= ceil(7/2)) and the rest together.
        let map = ClusterMap::new(vec![0, 0, 0, 0, 0, 1, 2]);
        let (slices, _) = assign_shards(&map, 2);
        assert_eq!(slices[0].clusters, vec![0]);
        assert_eq!(slices[1].clusters, vec![1, 2]);
        // Every shard owns at least one cluster even when early shards
        // would gladly swallow everything.
        let map = ClusterMap::new(vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3]);
        let (slices, _) = assign_shards(&map, 4);
        assert!(slices.iter().all(|s| !s.clusters.is_empty()));
    }
}
