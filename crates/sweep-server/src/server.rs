//! The resident server: job intake (TCP and spool-directory), the
//! worker loop, and result publication.
//!
//! Two intake modes share one [`JobQueue`] + [`RunStore`]:
//!
//! * **TCP** — `std::net::TcpListener`, line-delimited JSON requests
//!   (`submit`/`status`/`cancel`/`result`/`stats`/`shutdown`), one JSON
//!   response line per request. The protocol is plain enough for
//!   `nc`, but [`crate::client::Client`] is the supported consumer.
//! * **Spool** — a watched directory: drop `<name>.suite` files in, the
//!   server moves each to `accepted/` and queues it (an optional
//!   `<name>.p<k>.suite` suffix sets priority `k`); a `stop` sentinel
//!   file shuts the server down.
//!
//! One worker thread drains the queue (priorities order *jobs*; each
//! job's *cells* already fan out across every core via rayon inside
//! [`crate::job::run_job`], so a second worker would only add
//! oversubscription). Finished jobs publish their records atomically —
//! written to a temp file, then renamed — as
//! `<results>/job-<id>-<name>_records.jsonl`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use scenario::JsonlProgress;
use serde::write_json_str;

use crate::job::{run_job, JobQueue, JobSpec, JobState};
use crate::json::Value;
use crate::store::RunStore;

/// Poll interval for the nonblocking accept loop / spool scan.
const POLL: Duration = Duration::from_millis(25);

/// A resident sweep service: shared store + job queue + worker.
pub struct Server {
    store: Arc<RunStore>,
    queue: Arc<JobQueue>,
    /// Where finished jobs' record files land (`None`: memory only).
    results_dir: Option<PathBuf>,
}

impl Server {
    pub fn new(store: Arc<RunStore>, results_dir: Option<PathBuf>) -> Arc<Server> {
        Arc::new(Server {
            store,
            queue: Arc::new(JobQueue::new()),
            results_dir,
        })
    }

    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    pub fn store(&self) -> &Arc<RunStore> {
        &self.store
    }

    /// Start the worker thread; it exits after [`JobQueue::shutdown`].
    pub fn spawn_worker(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let server = Arc::clone(self);
        std::thread::spawn(move || {
            while let Some(job) = server.queue.next_job() {
                // Stream per-cell progress next to the results file so a
                // dashboard can tail `job-<id>_progress.jsonl` live.
                let progress = server.results_dir.as_deref().and_then(|dir| {
                    JsonlProgress::create(&dir.join(format!("job-{:06}_progress.jsonl", job.id)))
                        .ok()
                });
                let outcome = run_job(
                    &job,
                    &server.store,
                    progress.as_ref().map(|p| p as &dyn scenario::ProgressSink),
                );
                if outcome.state == JobState::Done {
                    server.publish(job.id, &job.spec.name, &outcome.records);
                }
                server.queue.finish(job.id, outcome);
            }
        })
    }

    /// Atomically publish a finished job's records: write whole file to
    /// a temp name, then rename — a reader can never observe half a
    /// record file (the write-then-rename half of the torn-write fix;
    /// store segments use per-line commit markers instead because they
    /// are append-only).
    fn publish(&self, id: u64, name: &str, records: &[String]) {
        let Some(dir) = self.results_dir.as_deref() else {
            return;
        };
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let final_path = dir.join(format!("job-{id:06}-{safe}_records.jsonl"));
        let tmp_path = dir.join(format!(".job-{id:06}.tmp"));
        let mut body = String::new();
        for raw in records {
            body.push_str(raw);
            body.push('\n');
        }
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            std::fs::write(&tmp_path, body.as_bytes())?;
            std::fs::rename(&tmp_path, &final_path)
        };
        if let Err(err) = write() {
            eprintln!("sweep-server: cannot publish job {id} records: {err}");
        }
    }

    /// Serve the TCP line protocol until a `shutdown` request. Binds are
    /// the caller's job so tests can pick port 0 and read the real addr.
    pub fn run_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        let worker = self.spawn_worker();
        listener.set_nonblocking(true)?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.queue.is_shut_down() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let server = Arc::clone(self);
                    conns.push(std::thread::spawn(move || server.handle_conn(stream)));
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(err) => return Err(err),
            }
            conns.retain(|h| !h.is_finished());
        }
        for conn in conns {
            let _ = conn.join();
        }
        let _ = worker.join();
        Ok(())
    }

    fn handle_conn(self: Arc<Self>, stream: TcpStream) {
        let Ok(writer) = stream.try_clone() else {
            return;
        };
        let mut writer = writer;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_request(&line);
            if writer.write_all(response.as_bytes()).is_err() {
                break;
            }
            if self.queue.is_shut_down() {
                break;
            }
        }
    }

    /// One request line in, one response line (with trailing `\n`) out.
    pub fn handle_request(&self, line: &str) -> String {
        match self.dispatch(line) {
            Ok(body) => format!("{{\"ok\":true{body}}}\n"),
            Err(why) => {
                let mut out = String::from("{\"ok\":false,\"error\":");
                write_json_str(&why, &mut out);
                out.push_str("}\n");
                out
            }
        }
    }

    fn dispatch(&self, line: &str) -> Result<String, String> {
        let req = Value::parse(line).map_err(|e| format!("bad request: {e}"))?;
        let cmd = req
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or("missing `cmd`")?;
        match cmd {
            "submit" => {
                let suite_text = req
                    .get("suite")
                    .and_then(Value::as_str)
                    .ok_or("submit needs `suite` (the suite file text)")?
                    .to_owned();
                let name = req
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("job")
                    .to_owned();
                let priority = req
                    .get("priority")
                    .map(|v| {
                        v.as_f64()
                            .map(|f| f as i64)
                            .ok_or("bad `priority`".to_string())
                    })
                    .transpose()?
                    .unwrap_or(0);
                let max_cells = req
                    .get("max_cells")
                    .map(|v| v.as_usize().ok_or("bad `max_cells`".to_string()))
                    .transpose()?;
                let id = self.queue.submit(JobSpec {
                    name,
                    suite_text,
                    origin: "<tcp>".into(),
                    priority,
                    max_cells,
                });
                Ok(format!(",\"job\":{id}"))
            }
            "status" => {
                let statuses = match req.get("job").map(|v| v.as_u64()) {
                    Some(Some(id)) => {
                        vec![self.queue.status(id).ok_or(format!("no such job {id}"))?]
                    }
                    Some(None) => return Err("bad `job`".into()),
                    None => self.queue.status_all(),
                };
                let rows: Vec<String> = statuses
                    .iter()
                    .map(|s| serde_json::to_string(s).expect("status serializes"))
                    .collect();
                Ok(format!(",\"jobs\":[{}]", rows.join(",")))
            }
            "cancel" => {
                let id = self.req_job_id(&req)?;
                Ok(format!(",\"cancelled\":{}", self.queue.cancel(id)))
            }
            "result" => {
                let id = self.req_job_id(&req)?;
                let status = self.queue.status(id).ok_or(format!("no such job {id}"))?;
                let (status, records) = self
                    .queue
                    .result(id)
                    .ok_or(format!("job {id} is {} (not terminal yet)", status.state))?;
                Ok(format!(
                    ",\"status\":{},\"records\":[{}]",
                    serde_json::to_string(&status).expect("status serializes"),
                    records.join(",")
                ))
            }
            "stats" => {
                let (hits, misses) = self.store.counters();
                let load = self.store.load_report();
                Ok(format!(
                    ",\"entries\":{},\"hits\":{hits},\"misses\":{misses},\"loaded\":{},\"skipped\":{},\"segments\":{}",
                    self.store.len(),
                    load.loaded,
                    load.skipped,
                    load.segments
                ))
            }
            "shutdown" => {
                self.queue.shutdown();
                Ok(String::new())
            }
            other => Err(format!("unknown command `{other}`")),
        }
    }

    fn req_job_id(&self, req: &Value) -> Result<u64, String> {
        req.get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| "missing or bad `job`".into())
    }

    /// Serve a spool directory until a `stop` sentinel file appears.
    /// Suite files dropped into `dir` are moved to `dir/accepted/` and
    /// queued; results land in the server's results dir.
    pub fn run_spool(self: &Arc<Self>, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let accepted = dir.join("accepted");
        std::fs::create_dir_all(&accepted)?;
        let worker = self.spawn_worker();
        let stop = dir.join("stop");
        loop {
            if stop.exists() {
                let _ = std::fs::remove_file(&stop);
                self.queue.shutdown();
                break;
            }
            let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "suite") && p.is_file())
                .collect();
            files.sort();
            for path in files {
                match std::fs::read_to_string(&path) {
                    Ok(suite_text) => {
                        let stem = path
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .unwrap_or("job")
                            .to_owned();
                        let (name, priority) = split_spool_priority(&stem);
                        let id = self.queue.submit(JobSpec {
                            name: name.clone(),
                            suite_text,
                            origin: path.display().to_string(),
                            priority,
                            max_cells: None,
                        });
                        let parked = accepted.join(format!("job-{id:06}-{stem}.suite"));
                        if let Err(err) = std::fs::rename(&path, &parked) {
                            eprintln!(
                                "sweep-server: cannot move spooled {}: {err}",
                                path.display()
                            );
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                    Err(err) => {
                        eprintln!("sweep-server: cannot read {}: {err}", path.display());
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
            std::thread::sleep(POLL);
        }
        let _ = worker.join();
        Ok(())
    }
}

/// `<name>.p<k>` spool stems carry a priority suffix; everything else is
/// priority 0.
fn split_spool_priority(stem: &str) -> (String, i64) {
    if let Some((name, suffix)) = stem.rsplit_once(".p") {
        if !name.is_empty() && !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(priority) = suffix.parse() {
                return (name.to_owned(), priority);
            }
        }
    }
    (stem.to_owned(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spool_priority_suffix_parses() {
        assert_eq!(split_spool_priority("example"), ("example".into(), 0));
        assert_eq!(split_spool_priority("example.p7"), ("example".into(), 7));
        assert_eq!(split_spool_priority("a.b.p12"), ("a.b".into(), 12));
        assert_eq!(split_spool_priority(".p5"), (".p5".into(), 0));
        assert_eq!(split_spool_priority("x.pq"), ("x.pq".into(), 0));
    }

    #[test]
    fn handle_request_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join(format!("sweep-srv-req-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(RunStore::open(&dir).unwrap());
        let server = Server::new(store, None);
        for bad in ["", "{", "{}", "{\"cmd\":\"nope\"}", "{\"cmd\":\"result\"}"] {
            let resp = server.handle_request(bad);
            assert!(resp.starts_with("{\"ok\":false"), "`{bad}` → {resp}");
            assert!(resp.ends_with('\n'));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_status_cancel_round_trip_through_the_protocol() {
        let dir = std::env::temp_dir().join(format!("sweep-srv-proto-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(RunStore::open(&dir).unwrap());
        let server = Server::new(store, None);
        // No worker running: the job stays queued, so cancel is immediate.
        let resp = server.handle_request(
            "{\"cmd\":\"submit\",\"name\":\"t\",\"suite\":\"suite \\\"t\\\"\",\"priority\":3}",
        );
        let v = Value::parse(resp.trim()).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{resp}");
        let id = v.get("job").and_then(Value::as_u64).unwrap();
        let resp = server.handle_request(&format!("{{\"cmd\":\"status\",\"job\":{id}}}"));
        let v = Value::parse(resp.trim()).unwrap();
        let jobs = v.get("jobs").and_then(Value::as_array).unwrap();
        assert_eq!(jobs[0].get("state").and_then(Value::as_str), Some("queued"));
        assert_eq!(jobs[0].get("priority").and_then(Value::as_f64), Some(3.0));
        let resp = server.handle_request(&format!("{{\"cmd\":\"cancel\",\"job\":{id}}}"));
        assert!(resp.contains("\"cancelled\":true"));
        let resp = server.handle_request(&format!("{{\"cmd\":\"result\",\"job\":{id}}}"));
        let v = Value::parse(resp.trim()).unwrap();
        assert_eq!(
            v.get("status")
                .and_then(|s| s.get("state"))
                .and_then(Value::as_str),
            Some("cancelled")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
