//! `RunRecord` ⇄ JSON codec with a byte-stability guarantee.
//!
//! The workspace's vendored `serde` only *emits* JSON, so the store
//! persists each record as the exact string `serde_json::to_string`
//! produced and this module supplies the missing inverse: decode the raw
//! line back into a [`RunRecord`] through the integer-exact
//! [`json`](crate::json) parser, then prove the round trip by
//! re-encoding and comparing bytes ([`decode_verified`]). A record that
//! fails the proof is rejected — the store would rather re-simulate a
//! cell (determinism makes that safe) than ever serve a record that is
//! not bit-identical to what the simulation wrote.

use crate::json::Value;
use det_sim::{SimDuration, SimTime};
use mps_sim::Metrics;
use scenario::RunRecord;

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn s(v: &Value, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn u(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not a u64"))
}

fn us(v: &Value, key: &str) -> Result<usize, String> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| format!("field `{key}` is not a usize"))
}

fn f(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

fn b(v: &Value, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a bool"))
}

fn decode_metrics(v: &Value) -> Result<Metrics, String> {
    // Exhaustive literal on purpose: a field added to `Metrics` fails to
    // compile here instead of silently defaulting in decoded records.
    Ok(Metrics {
        app_messages: u(v, "app_messages")?,
        app_bytes: u(v, "app_bytes")?,
        wire_bytes: u(v, "wire_bytes")?,
        ctl_messages: u(v, "ctl_messages")?,
        ctl_bytes: u(v, "ctl_bytes")?,
        deliveries: u(v, "deliveries")?,
        events: u(v, "events")?,
        logged_messages: u(v, "logged_messages")?,
        logged_bytes: u(v, "logged_bytes")?,
        logged_bytes_peak: u(v, "logged_bytes_peak")?,
        logged_bytes_cumulative: u(v, "logged_bytes_cumulative")?,
        gc_reclaimed_messages: u(v, "gc_reclaimed_messages")?,
        gc_reclaimed_bytes: u(v, "gc_reclaimed_bytes")?,
        checkpoints: u(v, "checkpoints")?,
        checkpoint_bytes: u(v, "checkpoint_bytes")?,
        checkpoint_time: SimDuration(u(v, "checkpoint_time")?),
        failures: u(v, "failures")?,
        failed_ranks: u(v, "failed_ranks")?,
        ranks_rolled_back: u(v, "ranks_rolled_back")?,
        lost_work: SimDuration(u(v, "lost_work")?),
        suppressed_sends: u(v, "suppressed_sends")?,
        replayed_messages: u(v, "replayed_messages")?,
        replayed_bytes: u(v, "replayed_bytes")?,
        recovery_time: SimDuration(u(v, "recovery_time")?),
        makespan: SimTime(u(v, "makespan")?),
    })
}

/// Decode a parsed record object. Field-for-field inverse of the
/// `Serialize` derive on [`RunRecord`]; [`decode_verified`] proves the
/// pairing per line, so the two cannot drift apart silently.
pub fn decode_record(v: &Value) -> Result<RunRecord, String> {
    Ok(RunRecord {
        scenario: s(v, "scenario")?,
        workload: s(v, "workload")?,
        protocol: s(v, "protocol")?,
        clusters: s(v, "clusters")?,
        network: s(v, "network")?,
        topology: s(v, "topology")?,
        n_ranks: us(v, "n_ranks")?,
        n_clusters: us(v, "n_clusters")?,
        n_failures: us(v, "n_failures")?,
        failure_model: s(v, "failure_model")?,
        checkpoint_policy: s(v, "checkpoint_policy")?,
        avg_rollback_pct: f(v, "avg_rollback_pct")?,
        static_logged_bytes: u(v, "static_logged_bytes")?,
        static_total_bytes: u(v, "static_total_bytes")?,
        static_logged_pct: f(v, "static_logged_pct")?,
        program_resident_bytes: u(v, "program_resident_bytes")?,
        program_unrolled_bytes: u(v, "program_unrolled_bytes")?,
        completed: b(v, "completed")?,
        status: s(v, "status")?,
        makespan_ps: u(v, "makespan_ps")?,
        makespan_s: f(v, "makespan_s")?,
        digest: u(v, "digest")?,
        trace_consistent: b(v, "trace_consistent")?,
        trace_violations: us(v, "trace_violations")?,
        rollback_rank_fraction: f(v, "rollback_rank_fraction")?,
        lost_work_s: f(v, "lost_work_s")?,
        recovery_s: f(v, "recovery_s")?,
        checkpoint_overhead_s: f(v, "checkpoint_overhead_s")?,
        waste_fraction: f(v, "waste_fraction")?,
        metrics: decode_metrics(field(v, "metrics")?)?,
        shards: u(v, "shards")? as u32,
        barrier_rounds: u(v, "barrier_rounds")?,
        pair_lookahead: s(v, "pair_lookahead")?,
    })
}

/// Canonical serialized form of a record — the exact bytes the store
/// persists and the bit-identical-hit contract compares.
pub fn encode_record(record: &RunRecord) -> String {
    serde_json::to_string(record).expect("RunRecord serializes")
}

/// Decode `raw` and prove the round trip: the decoded record must
/// re-encode to exactly `raw`. Catches schema drift (a field added to
/// `RunRecord` but not to [`decode_record`]), precision loss, and any
/// future emitter change — all as a recoverable error, never as a
/// silently different record.
pub fn decode_verified(raw: &str) -> Result<RunRecord, String> {
    let v = Value::parse(raw)?;
    let record = decode_record(&v)?;
    let reencoded = encode_record(&record);
    if reencoded != raw {
        return Err(format!(
            "record round-trip not byte-identical ({} vs {} bytes)",
            reencoded.len(),
            raw.len()
        ));
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::{ClusterStrategy, Executor, ProtocolSpec, ScenarioSpec};
    use workloads::WorkloadSpec;

    fn simulated_record() -> RunRecord {
        Executor::run_one(&ScenarioSpec::new(
            WorkloadSpec::NetPipe {
                rounds: 3,
                bytes: 256,
            },
            ProtocolSpec::hydee(),
            ClusterStrategy::PerRank,
        ))
    }

    #[test]
    fn real_record_round_trips_byte_identically() {
        let record = simulated_record();
        let raw = encode_record(&record);
        let decoded = decode_verified(&raw).expect("round trip");
        assert_eq!(encode_record(&decoded), raw);
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut record = simulated_record();
        record.digest = u64::MAX; // would be rounded by an f64 parser
        record.makespan_ps = u64::MAX - 1;
        record.makespan_s = 1e-12;
        record.waste_fraction = f64::NAN; // emits as null
        record.status = "deadlock: \"rank 0\"\nrecv(src=1)\t«π»".into();
        let raw = encode_record(&record);
        let decoded = decode_verified(&raw).expect("round trip");
        assert_eq!(decoded.digest, u64::MAX);
        assert_eq!(decoded.makespan_ps, u64::MAX - 1);
        assert_eq!(decoded.status, record.status);
        assert!(decoded.waste_fraction.is_nan());
        assert_eq!(encode_record(&decoded), raw);
    }

    #[test]
    fn tampered_payload_fails_verification() {
        let raw = encode_record(&simulated_record());
        // Whitespace changes decode fine but are not byte-identical.
        let spaced = raw.replace(":", ": ");
        assert!(decode_verified(&spaced).is_err());
        // Truncation fails the parse outright.
        assert!(decode_verified(&raw[..raw.len() - 2]).is_err());
        // A missing field is a decode error.
        let dropped = raw.replacen("\"digest\":", "\"digest_x\":", 1);
        assert!(decode_verified(&dropped).is_err());
    }
}
