//! Resident job orchestration: a priority queue of suite-file jobs.
//!
//! A *job* is one PR-7 suite file (the same text `sweep --suite` reads)
//! plus a priority and an optional cell cap. Jobs move through
//! `Queued → Running → {Done, Cancelled, Failed}` (DESIGN.md §2.7):
//! `Failed` means the suite did not parse or every queued state was
//! torn down by shutdown; `Cancelled` keeps the records of cells that
//! finished before the flag was seen. The worker drains the queue
//! highest-priority-first (FIFO within a priority) and runs each job's
//! cells across cores through the shared [`RunStore`] — so two jobs
//! racing on overlapping matrices never simulate a cell twice, and a
//! re-submitted suite is pure cache hits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use rayon::prelude::*;
use scenario::{Executor, ProgressSink, ProgressSnapshot, RunCache, Suite};
use serde::Serialize;

use crate::codec;
use crate::store::RunStore;

/// What a client submits: a suite, a priority, an optional cell cap.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human label (defaults to the suite's `name` on the client path).
    pub name: String,
    /// Full suite file text (PR 7 format).
    pub suite_text: String,
    /// Origin string for suite diagnostics (file name or `<tcp>`).
    pub origin: String,
    /// Higher runs first; FIFO within equal priorities.
    pub priority: i64,
    /// Truncate the expanded cell list (smoke runs). Cells are cached
    /// individually, so truncation can never poison the store.
    pub max_cells: Option<usize>,
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl JobState {
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// A terminal job never changes state again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Point-in-time view of one job, serializable for the wire protocol.
#[derive(Debug, Clone, Serialize)]
pub struct JobStatus {
    pub id: u64,
    pub name: String,
    pub state: String,
    pub priority: i64,
    /// Expanded cell count (0 until the suite is parsed).
    pub total: usize,
    pub completed: usize,
    pub hits: usize,
    pub misses: usize,
    /// Wall seconds Running so far, or total once terminal.
    pub wall_s: f64,
    /// Parse/abort diagnostic for `failed` jobs.
    pub error: Option<String>,
}

/// Live per-job counters shared between the worker and status readers.
#[derive(Default)]
struct JobCounters {
    total: AtomicUsize,
    completed: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    counters: Arc<JobCounters>,
    started: Option<Instant>,
    wall_s: f64,
    error: Option<String>,
    /// Raw serialized records of finished cells, in cell order.
    records: Option<Vec<String>>,
}

struct QueueInner {
    next_id: u64,
    /// Pending job ids, submission order.
    pending: Vec<u64>,
    jobs: HashMap<u64, JobEntry>,
    shutdown: bool,
}

/// The server's job table + scheduling queue. Share via `Arc`; the
/// worker blocks on [`JobQueue::next_job`].
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    work_ready: Condvar,
}

/// Everything the worker needs to run one claimed job.
pub struct ClaimedJob {
    pub id: u64,
    pub spec: JobSpec,
    pub cancel: Arc<AtomicBool>,
    counters: Arc<JobCounters>,
}

/// Terminal outcome the worker reports back.
pub struct JobOutcome {
    pub state: JobState,
    pub error: Option<String>,
    pub records: Vec<String>,
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl JobQueue {
    pub fn new() -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                next_id: 1,
                pending: Vec::new(),
                jobs: HashMap::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        }
    }

    /// Enqueue a job; returns its id.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                counters: Arc::new(JobCounters::default()),
                started: None,
                wall_s: 0.0,
                error: None,
                records: None,
            },
        );
        inner.pending.push(id);
        drop(inner);
        self.work_ready.notify_all();
        id
    }

    /// Cancel a job. Queued jobs terminate immediately; a running job's
    /// flag is raised and the worker stops dispatching new cells (cells
    /// already simulating run to completion — they are cached work, not
    /// waste). Returns false for unknown or already-terminal jobs.
    pub fn cancel(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        let Some(entry) = inner.jobs.get_mut(&id) else {
            return false;
        };
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.records = Some(Vec::new());
                inner.pending.retain(|&p| p != id);
                true
            }
            JobState::Running => {
                entry.cancel.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Status of one job.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let inner = self.inner.lock().expect("job queue poisoned");
        inner.jobs.get(&id).map(|e| Self::view(id, e))
    }

    /// Status of every job, id order.
    pub fn status_all(&self) -> Vec<JobStatus> {
        let inner = self.inner.lock().expect("job queue poisoned");
        let mut ids: Vec<u64> = inner.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .map(|&id| Self::view(id, &inner.jobs[&id]))
            .collect()
    }

    fn view(id: u64, e: &JobEntry) -> JobStatus {
        JobStatus {
            id,
            name: e.spec.name.clone(),
            state: e.state.name().into(),
            priority: e.spec.priority,
            total: e.counters.total.load(Ordering::Relaxed),
            completed: e.counters.completed.load(Ordering::Relaxed),
            hits: e.counters.hits.load(Ordering::Relaxed),
            misses: e.counters.misses.load(Ordering::Relaxed),
            wall_s: match (e.state, e.started) {
                (JobState::Running, Some(t)) => t.elapsed().as_secs_f64(),
                _ => e.wall_s,
            },
            error: e.error.clone(),
        }
    }

    /// Terminal state + raw records of a finished job (None while the
    /// job is still queued/running or unknown).
    pub fn result(&self, id: u64) -> Option<(JobStatus, Vec<String>)> {
        let inner = self.inner.lock().expect("job queue poisoned");
        let e = inner.jobs.get(&id)?;
        let records = e.records.clone()?;
        Some((Self::view(id, e), records))
    }

    /// Wake every worker to exit; pending jobs stay queued (a resident
    /// server owns its jobs only for the process lifetime — the *store*
    /// is the durable artefact).
    pub fn shutdown(&self) {
        self.inner.lock().expect("job queue poisoned").shutdown = true;
        self.work_ready.notify_all();
    }

    pub fn is_shut_down(&self) -> bool {
        self.inner.lock().expect("job queue poisoned").shutdown
    }

    /// Block until a job is available (highest priority first, FIFO
    /// within a priority) or shutdown. The claimed job is Running.
    pub fn next_job(&self) -> Option<ClaimedJob> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        loop {
            if inner.shutdown {
                return None;
            }
            // Highest priority wins; `pending` is submission-ordered, so
            // the first max is also the FIFO winner within its priority.
            let best = inner
                .pending
                .iter()
                .copied()
                .max_by_key(|id| (inner.jobs[id].spec.priority, std::cmp::Reverse(*id)));
            if let Some(id) = best {
                inner.pending.retain(|&p| p != id);
                let entry = inner.jobs.get_mut(&id).expect("pending id in table");
                entry.state = JobState::Running;
                entry.started = Some(Instant::now());
                return Some(ClaimedJob {
                    id,
                    spec: entry.spec.clone(),
                    cancel: Arc::clone(&entry.cancel),
                    counters: Arc::clone(&entry.counters),
                });
            }
            inner = self.work_ready.wait(inner).expect("job queue poisoned");
        }
    }

    /// Record a claimed job's terminal outcome.
    pub fn finish(&self, id: u64, outcome: JobOutcome) {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        if let Some(e) = inner.jobs.get_mut(&id) {
            e.state = outcome.state;
            e.error = outcome.error;
            e.records = Some(outcome.records);
            e.wall_s = e.started.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
        }
    }
}

/// Run one claimed job's cells against the shared store. Pure function
/// of (job, store) apart from the cancellation flag; the caller feeds
/// the outcome back through [`JobQueue::finish`].
pub fn run_job(
    job: &ClaimedJob,
    store: &RunStore,
    progress: Option<&dyn ProgressSink>,
) -> JobOutcome {
    let suite = match Suite::parse_str(&job.spec.suite_text, &job.spec.origin) {
        Ok(suite) => suite,
        Err(err) => {
            return JobOutcome {
                state: JobState::Failed,
                error: Some(err.to_string()),
                records: Vec::new(),
            }
        }
    };
    let mut cells = suite.cells();
    if let Some(cap) = job.spec.max_cells {
        cells.truncate(cap);
    }
    job.counters.total.store(cells.len(), Ordering::Relaxed);
    let started = Instant::now();
    let results: Vec<Option<String>> = cells
        .par_iter()
        .map(|cell: &scenario::SuiteCell| {
            // The flag gates *dispatch*: cells already simulating finish
            // (and land in the store); cells not yet started are skipped.
            if job.cancel.load(Ordering::SeqCst) {
                return None;
            }
            let run = store.get_or_run(&cell.spec, &|| Executor::run_one(&cell.spec));
            let raw = codec::encode_record(&run.record);
            if run.hit {
                job.counters.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                job.counters.misses.fetch_add(1, Ordering::Relaxed);
            }
            let completed = job.counters.completed.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(sink) = progress {
                sink.update(&ProgressSnapshot {
                    phase: "done".into(),
                    cell: run.record.scenario.clone(),
                    total: cells.len(),
                    completed,
                    running: 0,
                    events: run.record.metrics.events,
                    wall_s: started.elapsed().as_secs_f64(),
                    events_per_sec: 0.0,
                    eta_s: 0.0,
                });
            }
            Some(raw)
        })
        .collect();
    let cancelled = job.cancel.load(Ordering::SeqCst);
    let records: Vec<String> = results.into_iter().flatten().collect();
    JobOutcome {
        state: if cancelled {
            JobState::Cancelled
        } else {
            JobState::Done
        },
        error: None,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, priority: i64) -> JobSpec {
        JobSpec {
            name: name.into(),
            suite_text: String::new(),
            origin: "<test>".into(),
            priority,
            max_cells: None,
        }
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let q = JobQueue::new();
        let low = q.submit(spec("low", 0));
        let hi_a = q.submit(spec("hi-a", 5));
        let hi_b = q.submit(spec("hi-b", 5));
        assert_eq!(
            q.next_job().unwrap().id,
            hi_a,
            "priority first, FIFO within"
        );
        assert_eq!(q.next_job().unwrap().id, hi_b);
        assert_eq!(q.next_job().unwrap().id, low);
        q.shutdown();
        assert!(q.next_job().is_none());
    }

    #[test]
    fn queued_cancellation_is_immediate_and_terminal() {
        let q = JobQueue::new();
        let a = q.submit(spec("a", 0));
        let b = q.submit(spec("b", 0));
        assert!(q.cancel(a));
        assert_eq!(q.status(a).unwrap().state, "cancelled");
        assert!(!q.cancel(a), "already terminal");
        // The cancelled job never reaches a worker.
        assert_eq!(q.next_job().unwrap().id, b);
        let (status, records) = q.result(a).expect("terminal job has a result");
        assert_eq!(status.state, "cancelled");
        assert!(records.is_empty());
    }

    #[test]
    fn running_job_lifecycle_reaches_done() {
        let q = JobQueue::new();
        let id = q.submit(spec("job", 0));
        assert!(q.result(id).is_none(), "no result while queued");
        let claimed = q.next_job().unwrap();
        assert_eq!(q.status(id).unwrap().state, "running");
        q.finish(
            claimed.id,
            JobOutcome {
                state: JobState::Done,
                error: None,
                records: vec!["{}".into()],
            },
        );
        let status = q.status(id).unwrap();
        assert_eq!(status.state, "done");
        let (_, records) = q.result(id).unwrap();
        assert_eq!(records, vec!["{}".to_string()]);
    }
}
