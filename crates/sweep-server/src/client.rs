//! Client for the TCP line protocol: one connection per request, one
//! JSON line each way. Used by the `sweep submit/status/cancel/result`
//! subcommands and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::write_json_str;

use crate::json::Value;

/// Thin handle on a server address; connections are per-request, so a
/// `Client` is cheap to clone around and never holds a socket open.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

/// A decoded `{"ok":true,...}` response body.
pub type Response = Value;

impl Client {
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Send one request line, read one response line, unwrap `ok`.
    pub fn request(&self, line: &str) -> Result<Response, String> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if response.is_empty() {
            return Err("server closed the connection without responding".into());
        }
        let v =
            Value::parse(response.trim_end()).map_err(|e| format!("malformed response: {e}"))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            _ => Err(v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("server reported an unspecified error")
                .to_owned()),
        }
    }

    /// Submit a suite (the file *text*, not a path — the server may run
    /// on another machine). Returns the job id.
    pub fn submit(
        &self,
        name: &str,
        suite_text: &str,
        priority: i64,
        max_cells: Option<usize>,
    ) -> Result<u64, String> {
        let mut line = String::from("{\"cmd\":\"submit\",\"name\":");
        write_json_str(name, &mut line);
        line.push_str(",\"suite\":");
        write_json_str(suite_text, &mut line);
        line.push_str(&format!(",\"priority\":{priority}"));
        if let Some(n) = max_cells {
            line.push_str(&format!(",\"max_cells\":{n}"));
        }
        line.push('}');
        self.request(&line)?
            .get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| "submit response missing `job`".into())
    }

    /// Status of one job (`Some(id)`) or all jobs (`None`), as the raw
    /// `jobs` array from the response.
    pub fn status(&self, job: Option<u64>) -> Result<Vec<Value>, String> {
        let line = match job {
            Some(id) => format!("{{\"cmd\":\"status\",\"job\":{id}}}"),
            None => "{\"cmd\":\"status\"}".to_owned(),
        };
        let resp = self.request(&line)?;
        resp.get("jobs")
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .ok_or_else(|| "status response missing `jobs`".into())
    }

    /// Request cancellation; `Ok(true)` if the job was still cancellable.
    pub fn cancel(&self, job: u64) -> Result<bool, String> {
        self.request(&format!("{{\"cmd\":\"cancel\",\"job\":{job}}}"))?
            .get("cancelled")
            .and_then(Value::as_bool)
            .ok_or_else(|| "cancel response missing `cancelled`".into())
    }

    /// Fetch a terminal job's status + records. The records come back as
    /// the exact serialized `RunRecord` lines the store persisted.
    pub fn result(&self, job: u64) -> Result<(Value, Vec<String>), String> {
        let resp = self.request(&format!("{{\"cmd\":\"result\",\"job\":{job}}}"))?;
        let status = resp
            .get("status")
            .cloned()
            .ok_or("result response missing `status`")?;
        let records = resp
            .get("records")
            .and_then(Value::as_array)
            .ok_or("result response missing `records`")?
            .iter()
            .map(Value::to_json)
            .collect();
        Ok((status, records))
    }

    /// Store statistics: `(entries, hits, misses)`.
    pub fn stats(&self) -> Result<(u64, u64, u64), String> {
        let resp = self.request("{\"cmd\":\"stats\"}")?;
        let take = |key: &str| {
            resp.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("stats response missing `{key}`"))
        };
        Ok((take("entries")?, take("hits")?, take("misses")?))
    }

    /// Ask the server to stop accepting work and exit its loops.
    pub fn shutdown(&self) -> Result<(), String> {
        self.request("{\"cmd\":\"shutdown\"}").map(|_| ())
    }

    /// Poll `status` until the job reaches a terminal state, then fetch
    /// its result. `timeout` bounds the wait.
    pub fn wait(&self, job: u64, timeout: Duration) -> Result<(Value, Vec<String>), String> {
        let deadline = Instant::now() + timeout;
        loop {
            let rows = self.status(Some(job))?;
            let state = rows
                .first()
                .and_then(|r| r.get("state"))
                .and_then(Value::as_str)
                .ok_or("status row missing `state`")?;
            if matches!(state, "done" | "cancelled" | "failed") {
                return self.result(job);
            }
            if Instant::now() >= deadline {
                return Err(format!("timed out waiting for job {job} (state {state})"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
