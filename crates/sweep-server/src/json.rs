//! Strict JSON parser that keeps numbers as their raw source text.
//!
//! `telemetry::json` already parses JSON, but it narrows every number to
//! `f64` — fine for dashboards, fatal for the run store, where `digest`
//! and `makespan_ps` are full-range `u64` golden values (f64 loses
//! precision above 2^53). This parser keeps the number's exact source
//! text in [`Value::Number`]; callers narrow with [`Value::as_u64`]
//! (exact text parse) or [`Value::as_f64`].
//!
//! Because the workspace's vendored `serde` emits numbers via `Display`
//! (`u64::to_string`, finite `f64::to_string`), and Rust's shortest
//! round-trip float formatting parses back to the identical bit pattern,
//! a value decoded through this parser re-encodes byte-identically —
//! the property the store's bit-identical-cache-hit contract rests on
//! (`codec::tests` pins it).

/// Parsed JSON value. Object member order is preserved (the store's
/// codec checks field order as part of byte-stability).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Raw number text exactly as it appeared in the source.
    Number(String),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parse `text` as a single JSON document (trailing whitespace only).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member by key (first match; valid JSON has unique keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Exact unsigned integer: the raw text must be a plain decimal
    /// `u64` (no sign, fraction or exponent). Never goes through `f64`,
    /// so 2^64-1 survives.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(raw) if raw.bytes().all(|b| b.is_ascii_digit()) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Float from the raw text; `null` maps to NaN (the emitter writes
    /// non-finite floats as `null`, so this is its inverse).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(raw) => raw.parse().ok(),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Re-emit as compact JSON. Numbers keep their exact source text and
    /// member order is preserved, so emitter output round-trips
    /// byte-identically through `parse` + `to_json` (strings re-escape
    /// through the same `serde::write_json_str` the emitter used).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(raw) => out.push_str(raw),
            Value::String(s) => serde::write_json_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(other) => Err(format!("unexpected `{}` at byte {}", *other as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], v: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("bad number at byte {start}"));
    }
    // Leading zeros are invalid JSON ("01"), but "0" and "0.5" are fine.
    if bytes[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    // The grammar above admits only ASCII, so the slice is valid UTF-8.
    Ok(Value::Number(
        String::from_utf8_lossy(&bytes[start..*pos]).into_owned(),
    ))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let start = *pos;
        // Fast path: run of plain bytes.
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            if bytes[*pos] < 0x20 {
                return Err(format!("raw control byte in string at {}", *pos));
            }
            *pos += 1;
        }
        out.push_str(
            std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8".to_string())?,
        );
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        let c = if (0xd800..0xe000).contains(&cp) {
                            // Surrogate pair: need a following \uXXXX.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("lone surrogate in \\u escape".into());
                            }
                            let lo_hex = bytes
                                .get(*pos + 3..*pos + 7)
                                .ok_or_else(|| "truncated surrogate pair".to_string())?;
                            let lo_hex = std::str::from_utf8(lo_hex).map_err(|_| "bad escape")?;
                            let lo = u32::from_str_radix(lo_hex, 16).map_err(|_| "bad escape")?;
                            if !(0xdc00..0xe000).contains(&lo) || cp >= 0xdc00 {
                                return Err("invalid surrogate pair".into());
                            }
                            *pos += 6;
                            char::from_u32(0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00))
                                .ok_or_else(|| "invalid surrogate pair".to_string())?
                        } else {
                            char::from_u32(cp).ok_or_else(|| "bad \\u escape".to_string())?
                        };
                        out.push(c);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => return Err("unterminated string".into()),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_u64_survives() {
        let v = Value::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // The f64 path would have rounded this; the raw text must not.
        assert_eq!(v, Value::Number("18446744073709551615".into()));
    }

    #[test]
    fn objects_preserve_member_order() {
        let v = Value::parse(r#"{"b":1,"a":2}"#).unwrap();
        match &v {
            Value::Object(m) => {
                assert_eq!(m[0].0, "b");
                assert_eq!(m[1].0, "a");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn floats_and_null_nan() {
        assert_eq!(Value::parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(Value::parse("-2e3").unwrap().as_f64(), Some(-2000.0));
        assert!(Value::parse("null").unwrap().as_f64().unwrap().is_nan());
        // Floats are not exact integers.
        assert_eq!(Value::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Value::parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(
            Value::parse(r#""a\"b\\c\nd\u0041""#).unwrap().as_str(),
            Some("a\"b\\c\ndA")
        );
        assert_eq!(
            Value::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"open",
            "\x01",
            "[1] x",
            "{\"a\":1,}",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(Value::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn round_trips_emitter_output() {
        // What the vendored serde emits for a nested struct shape.
        let text = r#"{"s":"x","n":42,"f":0.25,"inner":{"b":true,"v":[1,2]}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(0.25));
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("b"))
                .and_then(Value::as_bool),
            Some(true)
        );
    }
}
