//! Simulation-as-a-service for HydEE parameter sweeps: a resident job
//! server fronted by a **content-addressed run cache**.
//!
//! The simulator is deterministic — one [`scenario::ScenarioSpec`]
//! always produces the bit-identical [`scenario::RunRecord`] — which
//! makes every sweep cell a pure function of its spec. This crate
//! exploits that:
//!
//! * [`store`] — the [`RunStore`]: an append-only, commit-marked JSONL
//!   segment store keyed by [`scenario::CacheKey`] (FNV-1a-128 of the
//!   versioned cell descriptor). Re-submitting a cell is a cache hit
//!   that returns the *exact bytes* the first run persisted; editing any
//!   spec axis changes the key, so only the delta re-runs.
//! * [`job`] — a priority [`JobQueue`] with cancellation, plus
//!   [`run_job`], which fans a suite's cells across rayon through the
//!   store.
//! * [`server`] — the resident [`Server`]: TCP line protocol and/or a
//!   spool directory, one worker thread, atomic result publication.
//! * [`client`] — [`Client`] for `sweep submit/status/cancel/result`.
//! * [`json`] / [`codec`] — an integer-exact JSON parser and a verified
//!   `RunRecord` decoder; together they close the loop the vendored
//!   emit-only serde leaves open, with a byte-identity proof per record.
//!
//! See `DESIGN.md` §2.7 for the store format, the cache-key contract,
//! and the job lifecycle.

pub mod client;
pub mod codec;
pub mod job;
pub mod json;
pub mod server;
pub mod store;

pub use client::Client;
pub use job::{run_job, JobQueue, JobSpec, JobState, JobStatus};
pub use server::Server;
pub use store::{LoadReport, RunStore, StoredRun};
