//! The content-addressed run store (DESIGN.md §2.7).
//!
//! On disk a store is a directory of append-only JSONL *segments*
//! (`segment-NNNNNN.jsonl`). Each line is one committed cell:
//!
//! ```text
//! {"v":1,"key":"<32 hex>","descriptor":"<spec descriptor>",
//!  "record":<RunRecord JSON>,"commit":"<16 hex>"}
//! ```
//!
//! `key` is [`ScenarioSpec::cache_key`] over `descriptor`; `commit` is
//! an FNV-1a-64 checksum over `key\n descriptor\n record-json`, computed
//! before the line is written. A reader accepts a line only if it parses
//! *and* the checksum matches *and* the record body survives
//! [`codec::decode_verified`] — so a torn tail (power cut mid-`write`),
//! a truncated copy, or a hand-edited record all degrade to "skipped
//! with a warning", never to a wrong record or a panic. Writers never
//! append to a pre-existing segment: every store handle opens a fresh
//! segment on its first write, so a torn tail from a crashed process is
//! quarantined in its own file and cannot corrupt later appends. Each
//! line is committed with a single `write_all` of the fully-built line.
//!
//! In memory the store is a key → slot index. A slot is either `Ready`
//! (the decoded record plus its exact serialized bytes) or `InFlight`
//! (some thread is simulating that cell right now). [`RunStore`]
//! implements [`RunCache`] by *claiming* the key before computing:
//! concurrent requests for the same cell — within a job or across jobs
//! — block on the claim and then all receive the one stored record,
//! so a cell is simulated at most once per store lifetime.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use scenario::{CacheKey, CachedRun, RunCache, RunRecord, ScenarioSpec};
use serde::write_json_str;

use crate::codec;
use crate::json::Value;

/// On-disk line format version.
const STORE_VERSION: u64 = 1;

/// FNV-1a 64-bit, the per-line commit checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

/// One committed cell: the decoded record plus the exact bytes that
/// were (or will be) persisted — what a cache hit hands back.
#[derive(Debug)]
pub struct StoredRun {
    pub key: CacheKey,
    pub descriptor: String,
    /// The record's serialized form, byte-identical to what the original
    /// simulation emitted.
    pub raw: String,
    pub record: RunRecord,
}

enum Slot {
    Ready(Arc<StoredRun>),
    InFlight,
}

/// What `open` found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Committed cells indexed.
    pub loaded: usize,
    /// Lines skipped as torn/corrupt/undecodable (warned, not fatal).
    pub skipped: usize,
    /// Segment files scanned.
    pub segments: usize,
}

/// The content-addressed run store. Cheap to share: wrap in `Arc` and
/// hand clones to every job.
pub struct RunStore {
    dir: PathBuf,
    index: Mutex<HashMap<u128, Slot>>,
    claim_released: Condvar,
    /// Lazily-created fresh segment for this handle's appends.
    writer: Mutex<Option<File>>,
    load: LoadReport,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl RunStore {
    /// Open (creating if needed) the store at `dir`, scanning every
    /// existing segment into the in-memory index. Corrupt lines are
    /// counted and warned about on stderr, never fatal.
    pub fn open(dir: &Path) -> std::io::Result<RunStore> {
        std::fs::create_dir_all(dir)?;
        let mut index = HashMap::new();
        let mut load = LoadReport::default();
        for path in Self::segment_paths(dir)? {
            load.segments += 1;
            let text = std::fs::read_to_string(&path)?;
            for (lineno, line) in text.lines().enumerate() {
                if line.is_empty() {
                    continue;
                }
                match Self::parse_line(line) {
                    Ok(stored) => {
                        // Determinism makes duplicate keys across
                        // segments identical; first wins.
                        index
                            .entry(stored.key.0)
                            .or_insert_with(|| Slot::Ready(Arc::new(stored)));
                        load.loaded += 1;
                    }
                    Err(why) => {
                        load.skipped += 1;
                        eprintln!(
                            "sweep-server: skipping corrupt store line {}:{}: {why}",
                            path.display(),
                            lineno + 1
                        );
                    }
                }
            }
        }
        Ok(RunStore {
            dir: dir.to_path_buf(),
            index: Mutex::new(index),
            claim_released: Condvar::new(),
            writer: Mutex::new(None),
            load,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        })
    }

    fn segment_paths(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("segment-") && n.ends_with(".jsonl"))
            })
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Parse + fully verify one segment line.
    fn parse_line(line: &str) -> Result<StoredRun, String> {
        let v = Value::parse(line)?;
        let version = v
            .get("v")
            .and_then(Value::as_u64)
            .ok_or("missing version")?;
        if version != STORE_VERSION {
            return Err(format!("unsupported store version {version}"));
        }
        let key_hex = v.get("key").and_then(Value::as_str).ok_or("missing key")?;
        let key = CacheKey::from_hex(key_hex).ok_or("malformed key")?;
        let descriptor = v
            .get("descriptor")
            .and_then(Value::as_str)
            .ok_or("missing descriptor")?
            .to_owned();
        if CacheKey::of_descriptor(&descriptor) != key {
            return Err("key does not match descriptor".into());
        }
        let commit = v
            .get("commit")
            .and_then(Value::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or("missing commit marker")?;
        // Re-serialize the record member to recover the exact raw bytes;
        // `decode_verified` below proves this is the canonical form.
        let raw = v.get("record").ok_or("missing record")?.to_json();
        if commit != Self::commit_checksum(key, &descriptor, &raw) {
            return Err("commit checksum mismatch (torn or tampered line)".into());
        }
        let record = codec::decode_verified(&raw)?;
        Ok(StoredRun {
            key,
            descriptor,
            raw,
            record,
        })
    }

    fn commit_checksum(key: CacheKey, descriptor: &str, raw: &str) -> u64 {
        let mut buf = key.hex();
        buf.push('\n');
        buf.push_str(descriptor);
        buf.push('\n');
        buf.push_str(raw);
        fnv1a64(buf.as_bytes())
    }

    /// Build the full segment line (with trailing newline) for a cell.
    fn format_line(key: CacheKey, descriptor: &str, raw: &str) -> String {
        let commit = Self::commit_checksum(key, descriptor, raw);
        let mut line = format!(
            "{{\"v\":{STORE_VERSION},\"key\":\"{}\",\"descriptor\":",
            key.hex()
        );
        write_json_str(descriptor, &mut line);
        line.push_str(",\"record\":");
        line.push_str(raw);
        line.push_str(&format!(",\"commit\":\"{commit:016x}\"}}\n"));
        line
    }

    /// Append a committed cell to this handle's segment (created fresh
    /// on first use so appends never follow another process's torn
    /// tail). Single `write_all` per line. Best-effort: I/O failure
    /// warns and leaves the cell memory-only.
    fn persist(&self, key: CacheKey, descriptor: &str, raw: &str) {
        let line = Self::format_line(key, descriptor, raw);
        let mut writer = self.writer.lock().expect("store writer poisoned");
        if writer.is_none() {
            match self.create_segment() {
                Ok(file) => *writer = Some(file),
                Err(err) => {
                    eprintln!("sweep-server: cannot create store segment: {err}");
                    return;
                }
            }
        }
        if let Some(file) = writer.as_mut() {
            if let Err(err) = file.write_all(line.as_bytes()) {
                eprintln!("sweep-server: store append failed: {err}");
            }
        }
    }

    fn create_segment(&self) -> std::io::Result<File> {
        let taken = Self::segment_paths(&self.dir)?;
        let mut next = taken.len() as u64;
        loop {
            let path = self.dir.join(format!("segment-{next:06}.jsonl"));
            match OpenOptions::new().create_new(true).append(true).open(&path) {
                Ok(file) => return Ok(file),
                Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => next += 1,
                Err(err) => return Err(err),
            }
        }
    }

    /// Committed cell for `key`, if present (does not wait on claims).
    pub fn get(&self, key: CacheKey) -> Option<Arc<StoredRun>> {
        match self.index.lock().expect("store index poisoned").get(&key.0) {
            Some(Slot::Ready(stored)) => Some(Arc::clone(stored)),
            _ => None,
        }
    }

    /// Number of committed cells in the index.
    pub fn len(&self) -> usize {
        self.index
            .lock()
            .expect("store index poisoned")
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// What `open` found on disk (loaded/skipped/segments).
    pub fn load_report(&self) -> LoadReport {
        self.load
    }

    /// Lifetime hit/miss counters across every `get_or_run` on this
    /// handle (all jobs), for the server's `stats` endpoint.
    pub fn counters(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Claim `key` or return the ready/awaited cell. `None` means the
    /// caller now owns the claim and must fulfil or release it.
    fn claim(&self, key: CacheKey) -> Option<Arc<StoredRun>> {
        let mut index = self.index.lock().expect("store index poisoned");
        loop {
            match index.get(&key.0) {
                Some(Slot::Ready(stored)) => return Some(Arc::clone(stored)),
                Some(Slot::InFlight) => {
                    index = self
                        .claim_released
                        .wait(index)
                        .expect("store index poisoned");
                }
                None => {
                    index.insert(key.0, Slot::InFlight);
                    return None;
                }
            }
        }
    }

    fn fulfil(&self, key: CacheKey, stored: Arc<StoredRun>) {
        let mut index = self.index.lock().expect("store index poisoned");
        index.insert(key.0, Slot::Ready(stored));
        drop(index);
        self.claim_released.notify_all();
    }

    fn release(&self, key: CacheKey) {
        let mut index = self.index.lock().expect("store index poisoned");
        if matches!(index.get(&key.0), Some(Slot::InFlight)) {
            index.remove(&key.0);
        }
        drop(index);
        self.claim_released.notify_all();
    }
}

/// Releases an unfulfilled claim if the compute panics, so waiters wake
/// up and one of them re-claims instead of deadlocking forever.
struct ClaimGuard<'a> {
    store: &'a RunStore,
    key: CacheKey,
    fulfilled: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.store.release(self.key);
        }
    }
}

impl RunCache for RunStore {
    fn get_or_run(
        &self,
        spec: &ScenarioSpec,
        compute: &(dyn Fn() -> RunRecord + Sync),
    ) -> CachedRun {
        let descriptor = spec.descriptor();
        let key = CacheKey::of_descriptor(&descriptor);
        if let Some(stored) = self.claim(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return CachedRun {
                record: stored.record.clone(),
                hit: true,
            };
        }
        let mut guard = ClaimGuard {
            store: self,
            key,
            fulfilled: false,
        };
        let record = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let raw = codec::encode_record(&record);
        // Only records that provably round-trip are persisted; a codec
        // gap degrades to "this cell re-simulates next time", warned.
        match codec::decode_verified(&raw) {
            Ok(_) => self.persist(key, &descriptor, &raw),
            Err(why) => eprintln!("sweep-server: not persisting `{}`: {why}", spec.label()),
        }
        self.fulfil(
            key,
            Arc::new(StoredRun {
                key,
                descriptor,
                raw,
                record: record.clone(),
            }),
        );
        guard.fulfilled = true;
        CachedRun { record, hit: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::{ClusterStrategy, Executor, ProtocolSpec};
    use workloads::WorkloadSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sweep-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(rounds: usize) -> ScenarioSpec {
        ScenarioSpec::new(
            WorkloadSpec::NetPipe { rounds, bytes: 128 },
            ProtocolSpec::hydee(),
            ClusterStrategy::PerRank,
        )
    }

    #[test]
    fn miss_then_hit_round_trips_bytes_across_reopen() {
        let dir = tmpdir("reopen");
        let spec = spec(2);
        let first_raw;
        {
            let store = RunStore::open(&dir).unwrap();
            let first = store.get_or_run(&spec, &|| Executor::run_one(&spec));
            assert!(!first.hit);
            first_raw = codec::encode_record(&first.record);
            let again = store.get_or_run(&spec, &|| panic!("must not recompute"));
            assert!(again.hit);
            assert_eq!(codec::encode_record(&again.record), first_raw);
        }
        // A fresh handle reads the persisted cell back bit-identically.
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.load_report().loaded, 1);
        assert_eq!(store.load_report().skipped, 0);
        let hit = store.get_or_run(&spec, &|| panic!("must not recompute"));
        assert!(hit.hit);
        assert_eq!(codec::encode_record(&hit.record), first_raw);
        let stored = store.get(spec.cache_key()).unwrap();
        assert_eq!(stored.raw, first_raw);
        assert_eq!(stored.descriptor, spec.descriptor());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_with_warning_not_panic() {
        let dir = tmpdir("torn");
        {
            let store = RunStore::open(&dir).unwrap();
            let s1 = spec(2);
            let s2 = spec(3);
            store.get_or_run(&s1, &|| Executor::run_one(&s1));
            store.get_or_run(&s2, &|| Executor::run_one(&s2));
        }
        // Tear the last line mid-record, as a power cut would.
        let seg = RunStore::segment_paths(&dir).unwrap().pop().unwrap();
        let text = std::fs::read_to_string(&seg).unwrap();
        let torn: String = text[..text.len() - 40].into();
        std::fs::write(&seg, torn).unwrap();
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.load_report().loaded, 1);
        assert_eq!(store.load_report().skipped, 1);
        // The torn cell re-simulates; the intact one hits.
        let s1 = spec(2);
        let r = store.get_or_run(&s1, &|| panic!("intact cell must hit"));
        assert!(r.hit);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_record_fails_commit_and_reruns() {
        let dir = tmpdir("tamper");
        let spec = spec(4);
        {
            let store = RunStore::open(&dir).unwrap();
            store.get_or_run(&spec, &|| Executor::run_one(&spec));
        }
        let seg = RunStore::segment_paths(&dir).unwrap().pop().unwrap();
        let text = std::fs::read_to_string(&seg).unwrap();
        // Flip a digit inside the record body; the commit marker now
        // disagrees, so the line must be rejected wholesale.
        let tampered = text.replacen("\"events\":", "\"events\":1", 1);
        assert_ne!(tampered, text);
        std::fs::write(&seg, tampered).unwrap();
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.load_report().loaded, 0);
        assert_eq!(store.load_report().skipped, 1);
        let r = store.get_or_run(&spec, &|| Executor::run_one(&spec));
        assert!(!r.hit, "tampered cell must re-simulate");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_requests_for_one_cell_compute_once() {
        let dir = tmpdir("dedup");
        let store = Arc::new(RunStore::open(&dir).unwrap());
        let spec = spec(5);
        let computes = Arc::new(AtomicUsize::new(0));
        let mut raws: Vec<String> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let store = Arc::clone(&store);
                    let spec = spec.clone();
                    let computes = Arc::clone(&computes);
                    scope.spawn(move || {
                        let run = store.get_or_run(&spec, &|| {
                            computes.fetch_add(1, Ordering::SeqCst);
                            Executor::run_one(&spec)
                        });
                        codec::encode_record(&run.record)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "cell ran exactly once");
        raws.dedup();
        assert_eq!(raws.len(), 1, "every caller saw identical bytes");
        let (hits, misses) = store.counters();
        assert_eq!((hits, misses), (7, 1));
        // And exactly one line was persisted.
        drop(store);
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.load_report().loaded, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_compute_releases_the_claim() {
        let dir = tmpdir("panic");
        let store = Arc::new(RunStore::open(&dir).unwrap());
        let spec = spec(6);
        let boom = std::thread::scope(|scope| {
            let store = Arc::clone(&store);
            let spec = spec.clone();
            scope
                .spawn(move || store.get_or_run(&spec, &|| panic!("boom")))
                .join()
        });
        assert!(boom.is_err(), "compute panic propagates");
        // The claim is gone: a second request computes normally instead
        // of deadlocking on a stale InFlight slot.
        let r = store.get_or_run(&spec, &|| Executor::run_one(&spec));
        assert!(!r.hit);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
