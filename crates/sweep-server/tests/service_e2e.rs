//! End-to-end tests for the simulation service (ISSUE 8 acceptance):
//!
//! * re-submitting an unchanged suite is 100% cache hits and the
//!   serialized records are byte-identical to the first run's;
//! * editing one axis re-runs exactly the delta cells;
//! * `max_cells` truncation caches the cells it *did* run without
//!   poisoning later full runs;
//! * the whole loop works over the real TCP protocol and the spool
//!   directory, not just in-process calls.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use sweep_server::{run_job, Client, JobQueue, JobSpec, JobState, RunStore, Server};

/// 2 protocols × 2 failure models = 4 cells.
const SUITE: &str = r#"
[suite]
name = "e2e"

[defaults]
workloads = ["stencil:4x4:face=64:compute_us=5"]
clusters = ["per-rank"]
networks = ["mx"]

[scenario.main]
protocols = ["native", "hydee"]
failure_models = ["none", "fail@2000us:r1"]
"#;

/// Same suite with a third failure model: 6 cells, 4 shared with SUITE.
const SUITE_EDITED: &str = r#"
[suite]
name = "e2e"

[defaults]
workloads = ["stencil:4x4:face=64:compute_us=5"]
clusters = ["per-rank"]
networks = ["mx"]

[scenario.main]
protocols = ["native", "hydee"]
failure_models = ["none", "fail@2000us:r1", "fail@3000us:r2"]
"#;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job(suite_text: &str, max_cells: Option<usize>) -> JobSpec {
    JobSpec {
        name: "e2e".into(),
        suite_text: suite_text.into(),
        origin: "<test>".into(),
        priority: 0,
        max_cells,
    }
}

/// Submit a job on a fresh queue and run it inline; returns the outcome
/// plus the (hits, misses) counters the worker accumulated.
fn run_inline(store: &RunStore, spec: JobSpec) -> (JobState, Vec<String>, usize, usize) {
    let queue = JobQueue::new();
    let id = queue.submit(spec);
    let claimed = queue.next_job().expect("job claimable");
    let outcome = run_job(&claimed, store, None);
    let state = outcome.state;
    let records = outcome.records.clone();
    queue.finish(id, outcome);
    let status = queue.status(id).expect("finished job has status");
    (state, records, status.hits, status.misses)
}

#[test]
fn resubmitted_suite_is_all_hits_with_byte_identical_records() {
    let dir = tmpdir("resubmit");
    let store = RunStore::open(&dir).unwrap();
    let (state, first, hits, misses) = run_inline(&store, job(SUITE, None));
    assert_eq!(state, JobState::Done);
    assert_eq!((hits, misses), (0, 4), "fresh store must miss every cell");
    assert_eq!(first.len(), 4);
    let (state, second, hits, misses) = run_inline(&store, job(SUITE, None));
    assert_eq!(state, JobState::Done);
    assert_eq!((hits, misses), (4, 0), "resubmission must be 100% hits");
    assert_eq!(first, second, "cached records must be byte-identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn editing_one_axis_reruns_exactly_the_delta() {
    let dir = tmpdir("delta");
    let store = RunStore::open(&dir).unwrap();
    let (_, first, _, misses) = run_inline(&store, job(SUITE, None));
    assert_eq!(misses, 4);
    let (state, edited, hits, misses) = run_inline(&store, job(SUITE_EDITED, None));
    assert_eq!(state, JobState::Done);
    assert_eq!(
        (hits, misses),
        (4, 2),
        "only the two new failure-model cells may re-run"
    );
    assert_eq!(edited.len(), 6);
    // The shared cells' bytes are served from cache, verbatim.
    for raw in &first {
        assert!(edited.contains(raw), "shared cell missing from edited run");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn max_cells_truncation_does_not_poison_the_cache() {
    let dir = tmpdir("truncate");
    let store = RunStore::open(&dir).unwrap();
    // Smoke run: only the first 2 of 4 cells.
    let (state, smoke, hits, misses) = run_inline(&store, job(SUITE, Some(2)));
    assert_eq!(state, JobState::Done);
    assert_eq!((hits, misses), (0, 2));
    assert_eq!(smoke.len(), 2);
    // Full run afterwards: the 2 smoke cells hit, the rest simulate —
    // and the result equals a from-scratch reference run.
    let (_, full, hits, misses) = run_inline(&store, job(SUITE, None));
    assert_eq!((hits, misses), (2, 2));
    let ref_dir = tmpdir("truncate-ref");
    let ref_store = RunStore::open(&ref_dir).unwrap();
    let (_, reference, _, _) = run_inline(&ref_store, job(SUITE, None));
    assert_eq!(full, reference, "truncated smoke run poisoned the cache");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&ref_dir).unwrap();
}

#[test]
fn tcp_protocol_round_trips_submit_wait_result() {
    let store_dir = tmpdir("tcp-store");
    let results_dir = tmpdir("tcp-results");
    let store = Arc::new(RunStore::open(&store_dir).unwrap());
    let server = Server::new(Arc::clone(&store), Some(results_dir.clone()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run_tcp(listener).unwrap())
    };
    let client = Client::new(&addr);

    let id1 = client.submit("e2e", SUITE, 0, None).unwrap();
    let (status, first) = client.wait(id1, Duration::from_secs(120)).unwrap();
    assert_eq!(
        status
            .get("state")
            .and_then(sweep_server::json::Value::as_str),
        Some("done")
    );
    assert_eq!(first.len(), 4);

    let id2 = client.submit("e2e", SUITE, 5, None).unwrap();
    let (status, second) = client.wait(id2, Duration::from_secs(120)).unwrap();
    let hits = status
        .get("hits")
        .and_then(sweep_server::json::Value::as_u64)
        .unwrap();
    assert_eq!(hits, 4, "resubmission over TCP must be 100% hits");
    assert_eq!(first, second, "TCP-served records must be byte-identical");

    // Store counters travel over the wire too.
    let (entries, hits, misses) = client.stats().unwrap();
    assert_eq!(entries, 4);
    assert_eq!((hits, misses), (4, 4));

    // Finished jobs were published atomically to the results dir.
    let published: Vec<String> = std::fs::read_dir(&results_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with("_records.jsonl"))
        .collect();
    assert_eq!(published.len(), 2, "{published:?}");

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&results_dir).unwrap();
}

#[test]
fn spool_directory_accepts_suites_and_stop_sentinel() {
    let store_dir = tmpdir("spool-store");
    let results_dir = tmpdir("spool-results");
    let spool_dir = tmpdir("spool-in");
    std::fs::create_dir_all(&spool_dir).unwrap();
    let store = Arc::new(RunStore::open(&store_dir).unwrap());
    let server = Server::new(store, Some(results_dir.clone()));
    let handle = {
        let server = Arc::clone(&server);
        let spool = spool_dir.clone();
        std::thread::spawn(move || server.run_spool(&spool).unwrap())
    };
    // Priority suffix: `<name>.p7.suite`.
    std::fs::write(spool_dir.join("e2e.p7.suite"), SUITE).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let published = loop {
        let found: Vec<PathBuf> = std::fs::read_dir(&results_dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .is_some_and(|n| n.to_string_lossy().ends_with("_records.jsonl"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        if !found.is_empty() {
            break found;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "spooled job never published records"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let body = std::fs::read_to_string(&published[0]).unwrap();
    assert_eq!(body.lines().count(), 4);
    // The suite file was moved aside, not left for re-queueing.
    assert!(!spool_dir.join("e2e.p7.suite").exists());
    assert_eq!(
        std::fs::read_dir(spool_dir.join("accepted"))
            .unwrap()
            .count(),
        1
    );
    // Priority suffix reached the queue.
    let status = server.queue().status_all();
    assert_eq!(status.len(), 1);
    assert_eq!(status[0].priority, 7);
    assert_eq!(status[0].name, "e2e");

    std::fs::write(spool_dir.join("stop"), b"").unwrap();
    handle.join().unwrap();
    for dir in [&store_dir, &results_dir, &spool_dir] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}
