//! Typed result rows.
//!
//! One [`RunRecord`] per executed [`ScenarioSpec`](crate::ScenarioSpec):
//! identity columns naming the point in the experiment matrix, static
//! clustering analysis, and (for simulated specs) the engine's
//! [`Metrics`] plus exact integer makespan/digest so records can be
//! compared bit-for-bit across executions.

use mps_sim::{Metrics, RunReport, RunStatus};
use serde::Serialize;

/// The result of one scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// `ScenarioSpec::label()` of the producing spec.
    pub scenario: String,
    pub workload: String,
    pub protocol: String,
    pub clusters: String,
    pub network: String,
    /// Canonical name of the spec's interconnect topology
    /// (`TopologySpec::name`; `flat` for untiered runs).
    pub topology: String,
    pub n_ranks: usize,
    pub n_clusters: usize,
    /// Failure events *scheduled* by a fixed schedule (stochastic models
    /// report 0 here; actual injections are `metrics.failures`).
    pub n_failures: usize,
    /// Canonical name of the spec's failure model
    /// (`FailureModelSpec::name`).
    pub failure_model: String,
    /// Canonical name of the protocol's checkpoint policy
    /// (`CheckpointPolicySpec::name`; `none` for non-checkpointing
    /// protocols).
    pub checkpoint_policy: String,

    // ---- static clustering analysis (always present) ----
    /// Expected % of processes rolled back by one uniform failure.
    pub avg_rollback_pct: f64,
    /// Inter-cluster (logged) application bytes, statically counted.
    pub static_logged_bytes: u64,
    /// Total application bytes, statically counted.
    pub static_total_bytes: u64,
    /// `static_logged_bytes / static_total_bytes` in percent.
    pub static_logged_pct: f64,
    /// Heap bytes resident in the streamed program representation
    /// (`Application::resident_bytes`, DESIGN.md §2.2).
    pub program_resident_bytes: u64,
    /// Closed-form bytes of the equivalent materialised `Vec<Op>` form.
    pub program_unrolled_bytes: u64,

    // ---- simulation outcome (None when `simulate: false`) ----
    /// Run completed (all ranks finished). `false` covers deadlock or
    /// event-limit; `status` has the diagnostic.
    pub completed: bool,
    pub status: String,
    /// Exact makespan in integer picoseconds (determinism golden value).
    pub makespan_ps: u64,
    pub makespan_s: f64,
    /// Order-sensitive fold of the per-rank final state digests
    /// (determinism golden value).
    pub digest: u64,
    /// The built-in determinism/replay oracle found no violations.
    pub trace_consistent: bool,
    /// Number of oracle violations (0 when consistent).
    pub trace_violations: usize,

    // ---- containment metrics (meaningful when failures were injected) ----
    /// Mean fraction of the machine rolled back per failure event:
    /// `ranks_rolled_back / (failures * n_ranks)`, 0 for clean runs. The
    /// paper's containment claim in one number: ~1/n_clusters for HydEE,
    /// 1.0 for global coordinated checkpointing.
    pub rollback_rank_fraction: f64,
    /// Simulated compute discarded by rollbacks, seconds
    /// (`metrics.lost_work`).
    pub lost_work_s: f64,
    /// Simulated time spent orchestrating recoveries, seconds
    /// (`metrics.recovery_time`).
    pub recovery_s: f64,
    /// Rank-seconds spent taking checkpoints
    /// (`metrics.checkpoint_time`).
    pub checkpoint_overhead_s: f64,
    /// Fraction of the machine's gross compute spent on fault-tolerance
    /// waste (`metrics.waste_fraction`): checkpoint overhead + lost
    /// work over `n_ranks × makespan` — the §VI frontier number.
    pub waste_fraction: f64,

    /// Engine + protocol counters; zeroed for static-only records.
    pub metrics: Metrics,

    // ---- parallel engine (DESIGN.md §2.8) ----
    /// Shards the producing engine ran with (1 = serial engine,
    /// including sharded requests that fell back to serial).
    pub shards: u32,
    /// Time-window barriers executed (0 for serial runs).
    pub barrier_rounds: u64,
    /// Per shard-pair conservative lookahead, encoded `"<i>-<j>:<ps>"`
    /// joined by `;` (empty for serial runs and single-class
    /// topologies, which use the scalar network floor).
    pub pair_lookahead: String,
}

/// RFC-4180 escaping for free-text CSV columns: the field is always
/// quoted and inner quotes are doubled, so commas, quotes and embedded
/// newlines in descriptor strings (scenario labels, failure-model names,
/// deadlock diagnostics) survive a round-trip through [`parse_csv`].
pub fn csv_escape(field: &str) -> String {
    format!("\"{}\"", field.replace('"', "\"\""))
}

/// Minimal RFC-4180 reader: splits `text` into records of fields,
/// honouring quoted fields that contain commas, doubled quotes and
/// embedded newlines. Exists so tests (and post-processing scripts) can
/// verify [`RunRecord::csv_row`] output without a CSV dependency.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    // A comma or any field character commits the current record, so a
    // blank line between records is skipped rather than read as [""].
    let mut record_started = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err("quote inside unquoted field".into());
                }
                in_quotes = true;
                record_started = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                record_started = true;
            }
            '\r' | '\n' => {
                if c == '\r' && chars.peek() == Some(&'\n') {
                    chars.next();
                }
                if record_started || !field.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    record_started = false;
                }
            }
            _ => {
                field.push(c);
                record_started = true;
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    if record_started || !field.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Fold per-rank digests into one order-sensitive value.
pub fn fold_digests(digests: &[u64]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for &d in digests {
        acc ^= d;
        acc = acc.wrapping_mul(0x1000_0000_01b3);
    }
    acc
}

impl RunRecord {
    /// Attach a finished simulation's outcome.
    pub fn with_report(mut self, report: &RunReport) -> Self {
        self.completed = report.completed();
        self.status = match &report.status {
            RunStatus::Completed => "completed".into(),
            RunStatus::Deadlock(diag) => format!("deadlock: {}", diag.join("; ")),
            RunStatus::EventLimit => "event-limit".into(),
        };
        self.makespan_ps = report.makespan.as_ps();
        self.makespan_s = report.makespan.as_secs_f64();
        self.digest = fold_digests(&report.digests);
        self.trace_consistent = report.trace.is_consistent();
        self.trace_violations = report.trace.violations.len();
        let m = &report.metrics;
        self.rollback_rank_fraction = m.rollback_rank_fraction(self.n_ranks);
        self.lost_work_s = m.lost_work.as_secs_f64();
        self.recovery_s = m.recovery_time.as_secs_f64();
        self.checkpoint_overhead_s = m.checkpoint_time.as_secs_f64();
        self.waste_fraction = m.waste_fraction(self.n_ranks);
        self.metrics = report.metrics.clone();
        self.shards = report.shards;
        self.barrier_rounds = report.barrier_rounds;
        self.pair_lookahead = report
            .pair_lookahead
            .iter()
            .map(|(i, j, t)| format!("{i}-{j}:{}", t.as_ps()))
            .collect::<Vec<_>>()
            .join(";");
        self
    }

    /// Column order shared by `csv_header` and `csv_row`.
    pub fn csv_header() -> String {
        [
            "scenario",
            "workload",
            "protocol",
            "clusters",
            "network",
            "topology",
            "n_ranks",
            "n_clusters",
            "n_failures",
            "failure_model",
            "checkpoint_policy",
            "avg_rollback_pct",
            "static_logged_bytes",
            "static_total_bytes",
            "static_logged_pct",
            "program_resident_bytes",
            "program_unrolled_bytes",
            "completed",
            "status",
            "makespan_ps",
            "makespan_s",
            "digest",
            "trace_consistent",
            "app_messages",
            "app_bytes",
            "wire_bytes",
            "ctl_messages",
            "logged_bytes_peak",
            "logged_bytes_cumulative",
            "gc_reclaimed_bytes",
            "checkpoints",
            "failures",
            "failed_ranks",
            "ranks_rolled_back",
            "rollback_rank_fraction",
            "lost_work_s",
            "recovery_s",
            "checkpoint_overhead_s",
            "waste_fraction",
            "suppressed_sends",
            "replayed_messages",
            "replayed_bytes",
            "events",
            "shards",
            "barrier_rounds",
            "pair_lookahead",
        ]
        .join(",")
    }

    pub fn csv_row(&self) -> String {
        // Quote free-text columns via [`csv_escape`]; everything else is
        // numeric and safe bare.
        let quote = csv_escape;
        [
            quote(&self.scenario),
            quote(&self.workload),
            quote(&self.protocol),
            quote(&self.clusters),
            quote(&self.network),
            quote(&self.topology),
            self.n_ranks.to_string(),
            self.n_clusters.to_string(),
            self.n_failures.to_string(),
            quote(&self.failure_model),
            quote(&self.checkpoint_policy),
            format!("{:.4}", self.avg_rollback_pct),
            self.static_logged_bytes.to_string(),
            self.static_total_bytes.to_string(),
            format!("{:.4}", self.static_logged_pct),
            self.program_resident_bytes.to_string(),
            self.program_unrolled_bytes.to_string(),
            self.completed.to_string(),
            quote(&self.status),
            self.makespan_ps.to_string(),
            format!("{:.6}", self.makespan_s),
            self.digest.to_string(),
            self.trace_consistent.to_string(),
            self.metrics.app_messages.to_string(),
            self.metrics.app_bytes.to_string(),
            self.metrics.wire_bytes.to_string(),
            self.metrics.ctl_messages.to_string(),
            self.metrics.logged_bytes_peak.to_string(),
            self.metrics.logged_bytes_cumulative.to_string(),
            self.metrics.gc_reclaimed_bytes.to_string(),
            self.metrics.checkpoints.to_string(),
            self.metrics.failures.to_string(),
            self.metrics.failed_ranks.to_string(),
            self.metrics.ranks_rolled_back.to_string(),
            format!("{:.6}", self.rollback_rank_fraction),
            format!("{:.6}", self.lost_work_s),
            format!("{:.6}", self.recovery_s),
            format!("{:.6}", self.checkpoint_overhead_s),
            format!("{:.6}", self.waste_fraction),
            self.metrics.suppressed_sends.to_string(),
            self.metrics.replayed_messages.to_string(),
            self.metrics.replayed_bytes.to_string(),
            self.metrics.events.to_string(),
            self.shards.to_string(),
            self.barrier_rounds.to_string(),
            quote(&self.pair_lookahead),
        ]
        .join(",")
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    #[test]
    fn fold_is_order_sensitive() {
        assert_ne!(fold_digests(&[1, 2]), fold_digests(&[2, 1]));
        assert_eq!(fold_digests(&[1, 2]), fold_digests(&[1, 2]));
        assert_ne!(fold_digests(&[]), fold_digests(&[0]));
    }

    /// A filled-in record other test modules can reuse.
    pub(crate) fn sample_record() -> RunRecord {
        RunRecord {
            scenario: "s".into(),
            workload: "w".into(),
            protocol: "p".into(),
            clusters: "c".into(),
            network: "mx".into(),
            topology: "flat".into(),
            n_ranks: 2,
            n_clusters: 1,
            n_failures: 0,
            failure_model: "none".into(),
            checkpoint_policy: "none".into(),
            avg_rollback_pct: 100.0,
            static_logged_bytes: 0,
            static_total_bytes: 10,
            static_logged_pct: 0.0,
            program_resident_bytes: 64,
            program_unrolled_bytes: 640,
            completed: true,
            status: "completed".into(),
            makespan_ps: 1,
            makespan_s: 1e-12,
            digest: 42,
            trace_consistent: true,
            trace_violations: 0,
            rollback_rank_fraction: 0.0,
            lost_work_s: 0.0,
            recovery_s: 0.0,
            checkpoint_overhead_s: 0.0,
            waste_fraction: 0.0,
            metrics: Metrics::default(),
            shards: 1,
            barrier_rounds: 0,
            pair_lookahead: String::new(),
        }
    }

    #[test]
    fn csv_header_and_row_have_same_arity() {
        let rec = sample_record();
        let parsed = parse_csv(&format!("{}\n{}\n", RunRecord::csv_header(), rec.csv_row()))
            .expect("header+row parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].len(), parsed[1].len());
    }

    #[test]
    fn descriptors_with_commas_quotes_and_newlines_round_trip() {
        let mut rec = sample_record();
        rec.scenario = "cg,scale=0.5 \"quoted\"".into();
        rec.failure_model = "fail@195ms:r7,fail@400ms:r1+r2".into();
        rec.status = "deadlock: rank 0 waiting on recv(src=1, tag=3);\nrank 1 exited".into();
        let text = format!("{}\n{}\n", RunRecord::csv_header(), rec.csv_row());
        let parsed = parse_csv(&text).expect("row with nasty descriptors parses");
        assert_eq!(
            parsed.len(),
            2,
            "embedded newline must stay inside one record"
        );
        let header = &parsed[0];
        let row = &parsed[1];
        assert_eq!(header.len(), row.len());
        let col = |name: &str| {
            let i = header.iter().position(|h| h == name).unwrap();
            row[i].clone()
        };
        assert_eq!(col("scenario"), rec.scenario);
        assert_eq!(col("failure_model"), rec.failure_model);
        assert_eq!(col("status"), rec.status);
    }

    #[test]
    fn parse_csv_handles_quoting_rules() {
        assert_eq!(
            parse_csv("a,\"b,c\"\nd,e").unwrap(),
            vec![vec!["a", "b,c"], vec!["d", "e"]]
        );
        assert_eq!(parse_csv("\"x\ny\",2").unwrap(), vec![vec!["x\ny", "2"]]);
        assert_eq!(
            parse_csv("\"he said \"\"hi\"\"\"").unwrap(),
            vec![vec!["he said \"hi\""]]
        );
        assert_eq!(
            parse_csv("a,\r\nb,").unwrap(),
            vec![vec!["a", ""], vec!["b", ""]]
        );
        assert_eq!(parse_csv("").unwrap(), Vec::<Vec<String>>::new());
        assert!(parse_csv("\"open").is_err());
        assert!(parse_csv("ab\"c\"").is_err());
    }
}
