//! Typed result rows.
//!
//! One [`RunRecord`] per executed [`ScenarioSpec`](crate::ScenarioSpec):
//! identity columns naming the point in the experiment matrix, static
//! clustering analysis, and (for simulated specs) the engine's
//! [`Metrics`] plus exact integer makespan/digest so records can be
//! compared bit-for-bit across executions.

use mps_sim::{Metrics, RunReport, RunStatus};
use serde::Serialize;

/// The result of one scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// `ScenarioSpec::label()` of the producing spec.
    pub scenario: String,
    pub workload: String,
    pub protocol: String,
    pub clusters: String,
    pub network: String,
    pub n_ranks: usize,
    pub n_clusters: usize,
    /// Failure events *scheduled* by a fixed schedule (stochastic models
    /// report 0 here; actual injections are `metrics.failures`).
    pub n_failures: usize,
    /// Canonical name of the spec's failure model
    /// (`FailureModelSpec::name`).
    pub failure_model: String,
    /// Canonical name of the protocol's checkpoint policy
    /// (`CheckpointPolicySpec::name`; `none` for non-checkpointing
    /// protocols).
    pub checkpoint_policy: String,

    // ---- static clustering analysis (always present) ----
    /// Expected % of processes rolled back by one uniform failure.
    pub avg_rollback_pct: f64,
    /// Inter-cluster (logged) application bytes, statically counted.
    pub static_logged_bytes: u64,
    /// Total application bytes, statically counted.
    pub static_total_bytes: u64,
    /// `static_logged_bytes / static_total_bytes` in percent.
    pub static_logged_pct: f64,
    /// Heap bytes resident in the streamed program representation
    /// (`Application::resident_bytes`, DESIGN.md §2.2).
    pub program_resident_bytes: u64,
    /// Closed-form bytes of the equivalent materialised `Vec<Op>` form.
    pub program_unrolled_bytes: u64,

    // ---- simulation outcome (None when `simulate: false`) ----
    /// Run completed (all ranks finished). `false` covers deadlock or
    /// event-limit; `status` has the diagnostic.
    pub completed: bool,
    pub status: String,
    /// Exact makespan in integer picoseconds (determinism golden value).
    pub makespan_ps: u64,
    pub makespan_s: f64,
    /// Order-sensitive fold of the per-rank final state digests
    /// (determinism golden value).
    pub digest: u64,
    /// The built-in determinism/replay oracle found no violations.
    pub trace_consistent: bool,
    /// Number of oracle violations (0 when consistent).
    pub trace_violations: usize,

    // ---- containment metrics (meaningful when failures were injected) ----
    /// Mean fraction of the machine rolled back per failure event:
    /// `ranks_rolled_back / (failures * n_ranks)`, 0 for clean runs. The
    /// paper's containment claim in one number: ~1/n_clusters for HydEE,
    /// 1.0 for global coordinated checkpointing.
    pub rollback_rank_fraction: f64,
    /// Simulated compute discarded by rollbacks, seconds
    /// (`metrics.lost_work`).
    pub lost_work_s: f64,
    /// Simulated time spent orchestrating recoveries, seconds
    /// (`metrics.recovery_time`).
    pub recovery_s: f64,
    /// Rank-seconds spent taking checkpoints
    /// (`metrics.checkpoint_time`).
    pub checkpoint_overhead_s: f64,
    /// Fraction of the machine's gross compute spent on fault-tolerance
    /// waste (`metrics.waste_fraction`): checkpoint overhead + lost
    /// work over `n_ranks × makespan` — the §VI frontier number.
    pub waste_fraction: f64,

    /// Engine + protocol counters; zeroed for static-only records.
    pub metrics: Metrics,
}

/// Fold per-rank digests into one order-sensitive value.
pub fn fold_digests(digests: &[u64]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for &d in digests {
        acc ^= d;
        acc = acc.wrapping_mul(0x1000_0000_01b3);
    }
    acc
}

impl RunRecord {
    /// Attach a finished simulation's outcome.
    pub fn with_report(mut self, report: &RunReport) -> Self {
        self.completed = report.completed();
        self.status = match &report.status {
            RunStatus::Completed => "completed".into(),
            RunStatus::Deadlock(diag) => format!("deadlock: {}", diag.join("; ")),
            RunStatus::EventLimit => "event-limit".into(),
        };
        self.makespan_ps = report.makespan.as_ps();
        self.makespan_s = report.makespan.as_secs_f64();
        self.digest = fold_digests(&report.digests);
        self.trace_consistent = report.trace.is_consistent();
        self.trace_violations = report.trace.violations.len();
        let m = &report.metrics;
        self.rollback_rank_fraction = m.rollback_rank_fraction(self.n_ranks);
        self.lost_work_s = m.lost_work.as_secs_f64();
        self.recovery_s = m.recovery_time.as_secs_f64();
        self.checkpoint_overhead_s = m.checkpoint_time.as_secs_f64();
        self.waste_fraction = m.waste_fraction(self.n_ranks);
        self.metrics = report.metrics.clone();
        self
    }

    /// Column order shared by `csv_header` and `csv_row`.
    pub fn csv_header() -> String {
        [
            "scenario",
            "workload",
            "protocol",
            "clusters",
            "network",
            "n_ranks",
            "n_clusters",
            "n_failures",
            "failure_model",
            "checkpoint_policy",
            "avg_rollback_pct",
            "static_logged_bytes",
            "static_total_bytes",
            "static_logged_pct",
            "program_resident_bytes",
            "program_unrolled_bytes",
            "completed",
            "status",
            "makespan_ps",
            "makespan_s",
            "digest",
            "trace_consistent",
            "app_messages",
            "app_bytes",
            "wire_bytes",
            "ctl_messages",
            "logged_bytes_peak",
            "logged_bytes_cumulative",
            "gc_reclaimed_bytes",
            "checkpoints",
            "failures",
            "failed_ranks",
            "ranks_rolled_back",
            "rollback_rank_fraction",
            "lost_work_s",
            "recovery_s",
            "checkpoint_overhead_s",
            "waste_fraction",
            "suppressed_sends",
            "replayed_messages",
            "replayed_bytes",
            "events",
        ]
        .join(",")
    }

    pub fn csv_row(&self) -> String {
        // Quote free-text columns; everything else is numeric.
        let quote = |s: &str| format!("\"{}\"", s.replace('"', "\"\""));
        [
            quote(&self.scenario),
            quote(&self.workload),
            quote(&self.protocol),
            quote(&self.clusters),
            quote(&self.network),
            self.n_ranks.to_string(),
            self.n_clusters.to_string(),
            self.n_failures.to_string(),
            quote(&self.failure_model),
            quote(&self.checkpoint_policy),
            format!("{:.4}", self.avg_rollback_pct),
            self.static_logged_bytes.to_string(),
            self.static_total_bytes.to_string(),
            format!("{:.4}", self.static_logged_pct),
            self.program_resident_bytes.to_string(),
            self.program_unrolled_bytes.to_string(),
            self.completed.to_string(),
            quote(&self.status),
            self.makespan_ps.to_string(),
            format!("{:.6}", self.makespan_s),
            self.digest.to_string(),
            self.trace_consistent.to_string(),
            self.metrics.app_messages.to_string(),
            self.metrics.app_bytes.to_string(),
            self.metrics.wire_bytes.to_string(),
            self.metrics.ctl_messages.to_string(),
            self.metrics.logged_bytes_peak.to_string(),
            self.metrics.logged_bytes_cumulative.to_string(),
            self.metrics.gc_reclaimed_bytes.to_string(),
            self.metrics.checkpoints.to_string(),
            self.metrics.failures.to_string(),
            self.metrics.failed_ranks.to_string(),
            self.metrics.ranks_rolled_back.to_string(),
            format!("{:.6}", self.rollback_rank_fraction),
            format!("{:.6}", self.lost_work_s),
            format!("{:.6}", self.recovery_s),
            format!("{:.6}", self.checkpoint_overhead_s),
            format!("{:.6}", self.waste_fraction),
            self.metrics.suppressed_sends.to_string(),
            self.metrics.replayed_messages.to_string(),
            self.metrics.replayed_bytes.to_string(),
            self.metrics.events.to_string(),
        ]
        .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_order_sensitive() {
        assert_ne!(fold_digests(&[1, 2]), fold_digests(&[2, 1]));
        assert_eq!(fold_digests(&[1, 2]), fold_digests(&[1, 2]));
        assert_ne!(fold_digests(&[]), fold_digests(&[0]));
    }

    #[test]
    fn csv_header_and_row_have_same_arity() {
        let rec = RunRecord {
            scenario: "s".into(),
            workload: "w".into(),
            protocol: "p".into(),
            clusters: "c".into(),
            network: "mx".into(),
            n_ranks: 2,
            n_clusters: 1,
            n_failures: 0,
            failure_model: "none".into(),
            checkpoint_policy: "none".into(),
            avg_rollback_pct: 100.0,
            static_logged_bytes: 0,
            static_total_bytes: 10,
            static_logged_pct: 0.0,
            program_resident_bytes: 64,
            program_unrolled_bytes: 640,
            completed: true,
            status: "completed".into(),
            makespan_ps: 1,
            makespan_s: 1e-12,
            digest: 42,
            trace_consistent: true,
            trace_violations: 0,
            rollback_rank_fraction: 0.0,
            lost_work_s: 0.0,
            recovery_s: 0.0,
            checkpoint_overhead_s: 0.0,
            waste_fraction: 0.0,
            metrics: Metrics::default(),
        };
        assert_eq!(
            RunRecord::csv_header().split(',').count(),
            rec.csv_row().split(',').count()
        );
    }
}
